"""Verify a survey summary against a wide (90+ column) data set.

Mirrors the paper's Stack Overflow survey scenario, including a data
dictionary that maps column names to descriptions (paper Section 4.2) and
an interactive correction pass for claims the automated stage could not
resolve (Figure 3 workflow).

Run:  python examples/survey_verification.py
"""

from __future__ import annotations

from repro.core import AggChecker, VerdictStatus
from repro.corpus import CorpusConfig, generate_corpus
from repro.fragments import extract_fragments


def main() -> None:
    corpus = generate_corpus(CorpusConfig(n_articles=12, seed=8))
    case = next(
        c for c in corpus.cases if c.theme_name == "developer_survey"
    )
    table = case.database.single_table()
    catalog = extract_fragments(case.database)
    print(f"Data set: {table.name} with {len(table.columns)} columns, "
          f"{len(table)} rows")
    print(f"Candidate query space: "
          f"{catalog.candidate_space_size(max_predicates=3):.2e} queries "
          "(paper Figure 8 scale)\n")

    dictionary = {
        "Salary": "annual gross compensation in dollars",
        "YearsExperience": "years of professional coding experience",
        "Education": "highest level of formal or informal training",
    }
    checker = AggChecker(case.database, data_dictionary=dictionary)
    report = checker.check_document(case.document)

    for verdict, truth in zip(report.verdicts, case.ground_truth):
        status = verdict.status.value.upper()
        print(f"[{status:10s}] \"{verdict.claim.sentence.text[:70]}\"")
        print(f"             top query: {verdict.hover_text}")

    # Interactive pass: resolve every claim like a user would.
    session = checker.interactive(report)
    print("\nInteractive correction:")
    for claim in list(session.pending()):
        suggestions = session.suggestions(claim, k=5)
        resolution = session.accept_top(claim)
        print(f"  claim '{claim.mention.text}': accepted top suggestion "
              f"({resolution.feature.value}, "
              f"{'correct' if resolution.claim_is_correct else 'WRONG'}); "
              f"{len(suggestions)} candidates shown")

    flagged = [
        v for v in report.verdicts if v.status is not VerdictStatus.VERIFIED
    ]
    print(f"\n{len(flagged)} of {len(report.verdicts)} claims flagged "
          f"for review in {report.total_seconds:.2f}s")


if __name__ == "__main__":
    main()
