"""Quickstart: verify the paper's running example end to end.

Loads the NFL-suspensions data set, checks the FiveThirtyEight passage
from the paper's Example 1, and prints spell-checker-style markup plus
the most likely query per claim.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import AggChecker, render_markup
from repro.corpus import nfl_suspensions_case


def main() -> None:
    case = nfl_suspensions_case()
    print(f"Database: {case.database.name!r}, "
          f"{case.database.single_table().name} "
          f"({len(case.database.single_table())} rows)")

    checker = AggChecker(case.database)
    report = checker.check_html(case.html)

    print(f"\nDetected {len(report.claims)} claims "
          f"in {report.total_seconds:.2f}s "
          f"({report.engine_stats.queries_requested} candidate queries, "
          f"{report.engine_stats.physical_queries} physical queries)\n")

    print(render_markup(report.verdicts))
    print()
    for verdict in report.verdicts:
        print(f"  '{verdict.claim.mention.text}' -> {verdict.hover_text}")
        print(f"      P(claim correct) = {verdict.probability_correct:.3f}")

    # The same article against a database updated after publication: the
    # first claim becomes stale (a real error the paper confirmed with
    # the article's authors).
    stale = nfl_suspensions_case(stale=True)
    stale_report = AggChecker(stale.database).check_html(stale.html)
    print("\nAfter the Sept. 22 data update (paper Table 9):")
    print(render_markup(stale_report.verdicts))


if __name__ == "__main__":
    main()
