"""Newsroom batch mode: fact-check a pile of drafts before publication.

Runs fully automated verification over a generated corpus of articles
(the paper's 53-article evaluation in miniature), prints per-article
verdicts, aggregate precision/recall against ground truth, and the
processing statistics that make massive candidate evaluation practical
(paper Section 6).

Run:  python examples/newsroom_batch.py
"""

from __future__ import annotations

from repro.corpus import CorpusConfig, generate_corpus
from repro.harness import run_corpus
from repro.harness.reporting import format_table


def main() -> None:
    corpus = generate_corpus(CorpusConfig(n_articles=10, seed=21))
    print(f"Corpus: {len(corpus)} articles, {corpus.total_claims} claims, "
          f"{corpus.erroneous_claims} erroneous "
          f"({corpus.error_rate:.0%})\n")

    run = run_corpus(corpus)

    rows = []
    for result in run.results:
        flagged = sum(1 for e in result.evaluations if e.flagged)
        hits = sum(
            1 for e in result.evaluations if e.flagged and e.truly_erroneous
        )
        rows.append(
            [
                result.case.case_id,
                len(result.evaluations),
                result.case.erroneous_count,
                flagged,
                hits,
                f"{result.report.total_seconds:.1f}s",
            ]
        )
    print(
        format_table(
            "Batch verification",
            ["Article", "Claims", "Errors", "Flagged", "Caught", "Time"],
            rows,
        )
    )

    metrics = run.metrics
    print(f"\nRecall    {metrics.recall:.1%}   (erroneous claims caught)")
    print(f"Precision {metrics.precision:.1%}   (flags that were real errors)")
    print(f"F1        {metrics.f1:.1%}")
    print(f"Top-1 / Top-5 coverage: {metrics.top_k_coverage(1):.1f}% / "
          f"{metrics.top_k_coverage(5):.1f}%")
    stats = run.engine_stats
    print(f"\nEngine: {stats.queries_requested} candidate queries answered by "
          f"{stats.physical_queries} physical cube queries "
          f"({stats.query_seconds:.2f}s query time)")


if __name__ == "__main__":
    main()
