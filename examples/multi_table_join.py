"""Verify claims that span multiple tables via foreign-key joins.

The paper's query model joins tables "connected via primary key-foreign
key constraints" (Definition 2). This example builds a two-table sports
database (players -> teams) and verifies claims whose predicates live in a
different table than the aggregated column.

Run:  python examples/multi_table_join.py
"""

from __future__ import annotations

from repro.core import AggChecker, render_markup
from repro.db import Column, ColumnType, Database, ForeignKey, Table


def build_database() -> Database:
    teams = Table(
        "teams",
        [Column("team_id"), Column("city"), Column("league")],
        [
            ("t1", "boston", "east"),
            ("t2", "dallas", "west"),
            ("t3", "miami", "east"),
            ("t4", "denver", "west"),
        ],
        primary_key="team_id",
    )
    players = Table(
        "players",
        [
            Column("name"),
            Column("team"),
            Column("position"),
            Column("salary", ColumnType.NUMERIC),
            Column("goals", ColumnType.NUMERIC),
        ],
        [
            ("ann", "t1", "guard", 120, 10),
            ("bob", "t1", "center", 80, 4),
            ("cy", "t2", "guard", 95, 7),
            ("dee", "t2", "forward", 60, 2),
            ("eli", "t3", "guard", 150, 12),
            ("fay", "t3", "forward", 70, 3),
            ("gus", "t4", "center", 88, 5),
            ("hal", "t4", "guard", 105, 9),
        ],
        primary_key="name",
    )
    return Database(
        "sports",
        [players, teams],
        [ForeignKey("players", "team", "teams", "team_id")],
    )


ARTICLE = """
<title>Eastern Conference Payrolls Keep Climbing</title>
<h1>Spending in the east</h1>
<p>The four east-league players pulled in a combined salary of 420.
The typical salary for east players stood at 105.</p>
<h1>Scoring</h1>
<p>Guards were the engine of the league: the data lists 4 guards.
The highest goals total for a guard was 12.</p>
"""


def main() -> None:
    database = build_database()
    checker = AggChecker(database)
    report = checker.check_html(ARTICLE)

    print(render_markup(report.verdicts))
    print()
    for verdict in report.verdicts:
        tables = sorted(verdict.top_query.referenced_tables()) if verdict.top_query else []
        join = " JOIN ".join(tables) if len(tables) > 1 else (tables[0] if tables else "?")
        print(f"  '{verdict.claim.mention.text}' -> {verdict.hover_text}")
        print(f"      evaluated over: {join}")


if __name__ == "__main__":
    main()
