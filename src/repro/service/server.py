"""The resident verification service (``python -m repro serve``).

A stdlib-only HTTP front end over a warm :class:`CheckerPool`: one
long-running process keeps fragment extraction, compiled fragment
indexes, the in-memory result cache, and (when configured) the disk cube
cache hot across requests — the interactive deployment shape of the
paper's tool, where only the *first* request against a database pays
startup cost.

Endpoints:

- ``POST /check`` — verify a document against referenced CSV data;
  streams NDJSON events as verdicts become available (see
  :mod:`repro.service.protocol`).
- ``GET /health`` — liveness plus coarse service counters.
- ``GET /stats`` — merged engine statistics across all pooled checkers
  (cache tiers, gathered candidates, disk hits) and incremental-tier
  counters.

Concurrency model: ``ThreadingHTTPServer`` gives one thread per request;
the pool's per-database entry lock serializes requests that share a
database (an ``AggChecker`` is not thread-safe) while requests on
different databases verify fully in parallel. Shutdown is graceful —
:meth:`VerificationServer.shutdown_gracefully` stops accepting and then
joins in-flight request threads, so accepted documents always get their
complete result stream.

Hardening: bodies are capped before buffering (``MAX_BODY_BYTES``),
concurrent ``/check`` requests are capped at ``max_inflight`` (excess is
shed with ``429`` + ``Retry-After`` and ``/health`` flips to
``degraded``), an optional ``request_timeout`` routes each request
through the checker's degradation ladder instead of holding a slot
forever, a claim that fails verification becomes a per-claim ``error``
event rather than aborting its document, and clients hanging up
mid-stream are counted (``dropped_streams`` in ``GET /stats``), never
raised.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator

from repro.core.checker import AggChecker, claim_fingerprint
from repro.core.config import AggCheckerConfig
from repro.db.diskcache import fingerprint_of
from repro.deadline import Deadline
from repro.db.engine import EngineStats
from repro.errors import CsvFormatError, ReproError
from repro.harness.runner import CheckerPool, PoolEntry
from repro.service.incremental import IncrementalCache, scope_fingerprint
from repro.service.protocol import (
    CheckRequest,
    ProtocolError,
    claim_event,
    data_spec,
    encode_event,
    enforce_claim_limit,
    error_event,
    verdict_payload,
)
from repro.text.claims import Claim, detect_claims
from repro.text.document import Document

#: Hard cap on POST bodies, enforced before any bytes are buffered.
#: Inline ``tables`` CSV text is a supported field, so bodies can be
#: legitimately large — but a body must never be allowed to exhaust
#: server memory before validation even runs.
MAX_BODY_BYTES = 64 * 1024 * 1024


class _PreparedCheck:
    """Everything resolved before the response stream starts.

    Holds no Database reference: the pool entry's ``keepalive`` already
    pins the data for as long as the checker lives.
    """

    def __init__(
        self,
        request: CheckRequest,
        document: Document,
        entry: PoolEntry,
        claims: list[Claim],
        database_fp: str,
        scope_fp: str,
    ) -> None:
        self.request = request
        self.document = document
        self.entry = entry
        self.claims = claims
        self.database_fp = database_fp
        self.scope_fp = scope_fp


class VerificationService:
    """Warm, thread-safe verification state shared across requests.

    Separable from the HTTP layer: tests and benchmarks can drive
    :meth:`prepare`/:meth:`stream` directly, and the handler stays a thin
    framing shim.
    """

    def __init__(
        self,
        config: AggCheckerConfig | None = None,
        incremental: bool = True,
        incremental_capacity: int = 16384,
        max_databases: int = 64,
        max_inflight: int = 8,
        request_timeout: float | None = None,
    ) -> None:
        if max_databases < 1:
            raise ValueError(f"max_databases must be >= 1, got {max_databases}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.config = config or AggCheckerConfig()
        #: Admission cap on concurrent /check requests. Each in-flight
        #: check pins a thread and (often) a checker lock; past the cap
        #: the handler sheds load with 429 + Retry-After instead of
        #: queueing unboundedly. GET endpoints are never slot-limited:
        #: health checks must answer precisely when the service is busy.
        self.max_inflight = max_inflight
        #: Optional per-request wall-clock budget (seconds). Becomes a
        #: :class:`~repro.deadline.Deadline` handed to the checker, which
        #: degrades (scope cut -> no execution -> unverifiable) rather
        #: than letting one pathological document hold a slot forever.
        self.request_timeout = request_timeout
        self.pool = CheckerPool(self.config)
        self.incremental_enabled = incremental
        self.cache = IncrementalCache(incremental_capacity)
        self.max_databases = max_databases
        self.started = time.monotonic()
        self._counter_lock = threading.Lock()
        # The reference registry behind {"database": <fingerprint>}
        # requests. Two token spaces: scope fingerprints (checker
        # fingerprints — exact: data + dictionary + config) in LRU order,
        # and database content fingerprints mapping to every scope they
        # were registered under (ambiguous when the same content was
        # submitted with different dictionaries). Bounded: checkers pin a
        # compiled index, result cache, and the full data, so the least
        # recently used database is evicted past ``max_databases``.
        self._registry_lock = threading.Lock()
        self._by_scope: "OrderedDict[str, tuple[str, PoolEntry]]" = (
            OrderedDict()
        )
        self._by_content: dict[str, dict[str, PoolEntry]] = {}
        # scope fingerprint -> the JSON-serializable data spec (csv paths /
        # inline tables / dictionary) it was registered from. The queue
        # tier journals this with each job so a restarted server can
        # rebuild the checker for fingerprint-referenced requests.
        self._sources: dict[str, dict] = {}
        self.requests = 0
        self.claims_served = 0
        self.claims_from_cache = 0
        self.request_errors = 0
        self.rejected_requests = 0
        self.dropped_streams = 0
        self.claim_errors = 0
        self._inflight = 0

    def prepare(self, request: CheckRequest) -> _PreparedCheck:
        """Load data, warm (or reuse) the checker, detect claims.

        Raises :class:`ProtocolError`/:class:`ReproError`/``OSError``
        *before* any response bytes are committed, so transport errors
        map cleanly to HTTP status codes.
        """
        prepared = self.resolve(request)
        with self._counter_lock:
            self.requests += 1
        return prepared

    def resolve(self, request: CheckRequest) -> _PreparedCheck:
        """Like :meth:`prepare` but without counting a request.

        The queue worker pool re-resolves journaled jobs through here:
        a retried job must warm the same pooled checker as a live request
        without inflating the request counter.
        """
        document = request.load_document()
        if request.database is not None:
            database_fp, scope_fp, entry = self._resolve_reference(
                request.database
            )
        else:
            database = request.load_database()
            dictionary = request.load_dictionary()
            database_fp = fingerprint_of(database)
            scope_fp = scope_fingerprint(database_fp, self.config, dictionary)
            entry = self.pool.entry_for(
                ("content", scope_fp),
                lambda: AggChecker(database, self.config, dictionary),
                keepalive=database,
            )
            self._register(database_fp, scope_fp, entry, source=data_spec(request))
        claims = detect_claims(document, self.config.claim_detection)
        enforce_claim_limit(len(claims))
        return _PreparedCheck(
            request, document, entry, claims, database_fp, scope_fp
        )

    def _resolve_reference(
        self, token: str
    ) -> tuple[str, str, PoolEntry]:
        """Map a fingerprint reference to its registered checker.

        Accepts either a checker fingerprint (exact) or a database
        content fingerprint. The latter is rejected as ambiguous when the
        same content was registered under more than one data dictionary —
        a reference must never silently bind to a different dictionary
        than the client registered with.
        """
        with self._registry_lock:
            by_scope = self._by_scope.get(token)
            if by_scope is not None:
                self._by_scope.move_to_end(token)
                database_fp, entry = by_scope
                return database_fp, token, entry
            scopes = self._by_content.get(token)
            if scopes is not None:
                if len(scopes) > 1:
                    raise ReproError(
                        f"database fingerprint {token[:16]}... is "
                        f"registered under {len(scopes)} different data "
                        "dictionaries; reference the exact "
                        "'checker_fingerprint' from a start/summary event"
                    )
                scope_fp, entry = next(iter(scopes.items()))
                self._by_scope.move_to_end(scope_fp)
                return token, scope_fp, entry
        raise ReproError(
            f"unknown database fingerprint {token[:16]}...: register the "
            "data first by submitting its 'csv' paths or inline 'tables'"
        )

    def _register(
        self,
        database_fp: str,
        scope_fp: str,
        entry: PoolEntry,
        source: dict | None = None,
    ) -> None:
        with self._registry_lock:
            self._by_scope[scope_fp] = (database_fp, entry)
            self._by_scope.move_to_end(scope_fp)
            self._by_content.setdefault(database_fp, {})[scope_fp] = entry
            if source is not None:
                self._sources[scope_fp] = source
            while len(self._by_scope) > self.max_databases:
                old_scope, (old_db, _) = self._by_scope.popitem(last=False)
                self._sources.pop(old_scope, None)
                content_scopes = self._by_content.get(old_db)
                if content_scopes is not None:
                    content_scopes.pop(old_scope, None)
                    if not content_scopes:
                        del self._by_content[old_db]
                # In-flight requests holding the entry finish unaffected;
                # the checker is garbage once they drain. Re-submitting
                # the data rebuilds it (incremental-tier entries survive:
                # they are keyed by the stable scope fingerprint).
                self.pool.discard(("content", old_scope))

    def source_for(self, scope_fp: str) -> dict | None:
        """The registered data spec behind one checker fingerprint."""
        with self._registry_lock:
            return self._sources.get(scope_fp)

    def stream(self, prepared: _PreparedCheck) -> Iterator[dict]:
        """Yield the NDJSON event sequence for one prepared request.

        Cached verdicts are emitted immediately; the remaining claims are
        then verified as one batch against the warm checker (holding its
        database's lock) and emitted as they are read off the report.
        """
        started = time.perf_counter()
        use_cache = self.incremental_enabled and prepared.request.incremental
        claims = prepared.claims
        yield {
            "event": "start",
            "document": prepared.document.title,
            "claims": len(claims),
            "database_fingerprint": prepared.database_fp,
            "checker_fingerprint": prepared.scope_fp,
            "incremental": use_cache,
        }

        fresh: list[tuple[int, Claim, tuple[str, str] | None]] = []
        statuses: list[str | None] = [None] * len(claims)
        cached_count = 0
        for index, claim in enumerate(claims):
            if not use_cache:  # don't hash contexts for an unused key
                fresh.append((index, claim, None))
                continue
            key = (prepared.scope_fp, claim_fingerprint(claim))
            payload = self.cache.get(key)
            if payload is not None:
                statuses[index] = payload["status"]
                cached_count += 1
                yield claim_event(index, payload, cached=True)
            else:
                fresh.append((index, claim, key))

        deadline = (
            Deadline(self.request_timeout)
            if self.request_timeout is not None
            else None
        )
        stats_delta = EngineStats()
        if fresh:
            checker = prepared.entry.checker
            assert checker is not None
            try:
                with prepared.entry.lock:
                    report = checker.check_claims(
                        prepared.document,
                        [claim for _, claim, _ in fresh],
                        deadline=deadline,
                    )
            except Exception:
                # The joint batch died (a poison claim, an injected
                # fault). Fall back to one check per claim so every
                # healthy claim still gets its verdict and only the bad
                # one becomes an error event. Events are collected under
                # the lock and yielded after release: a slow client must
                # not extend the time this database is locked.
                events = self._stream_per_claim(prepared, fresh, statuses,
                                                deadline, stats_delta)
            else:
                events = []
                for (index, _, key), verdict in zip(fresh, report.verdicts):
                    payload = verdict_payload(verdict)
                    statuses[index] = payload["status"]
                    if key is not None:
                        self.cache.put(key, payload)
                    events.append(claim_event(index, payload, cached=False))
                stats_delta += report.engine_stats
            yield from events

        seconds = time.perf_counter() - started
        with self._counter_lock:
            self.claims_served += len(claims)
            self.claims_from_cache += cached_count
        errors = sum(1 for status in statuses if status == "error")
        flagged = sum(
            1 for status in statuses if status not in ("verified", "error")
        )
        yield {
            "event": "summary",
            "claims": len(claims),
            "flagged": flagged,
            "errors": errors,
            "cached_claims": cached_count,
            "evaluated_claims": len(fresh),
            "seconds": round(seconds, 4),
            "database_fingerprint": prepared.database_fp,
            "checker_fingerprint": prepared.scope_fp,
            "engine": asdict(stats_delta),
        }

    def _stream_per_claim(
        self,
        prepared: _PreparedCheck,
        fresh: "list[tuple[int, Claim, tuple[str, str] | None]]",
        statuses: list,
        deadline: "Deadline | None",
        stats_delta: EngineStats,
    ) -> list[dict]:
        """Degraded path: verify each claim alone, isolating failures.

        Returns the claim/error events in claim order; ``statuses`` and
        ``stats_delta`` are updated in place. A claim that fails even
        alone yields ``{"event": "error", "index": ..., "error": ...}``
        instead of aborting the document.
        """
        checker = prepared.entry.checker
        assert checker is not None
        events: list[dict] = []
        with prepared.entry.lock:
            for index, claim, key in fresh:
                try:
                    report = checker.check_claims(
                        prepared.document, [claim], deadline=deadline
                    )
                except Exception as error:  # a poison claim, kept in-band
                    statuses[index] = "error"
                    self.note_claim_error()
                    events.append({
                        "event": "error",
                        "index": index,
                        "error": str(error),
                    })
                    continue
                payload = verdict_payload(report.verdicts[0])
                statuses[index] = payload["status"]
                if key is not None:
                    self.cache.put(key, payload)
                stats_delta += report.engine_stats
                events.append(claim_event(index, payload, cached=False))
        return events

    def check(self, request: CheckRequest) -> list[dict]:
        """Convenience: the full event list of one request (no HTTP)."""
        return list(self.stream(self.prepare(request)))

    def try_acquire(self) -> bool:
        """Claim an in-flight slot; False means shed this request (429)."""
        with self._counter_lock:
            if self._inflight >= self.max_inflight:
                self.rejected_requests += 1
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._counter_lock:
            self._inflight -= 1

    def health(self) -> dict:
        with self._counter_lock:
            requests = self.requests
            claims_served = self.claims_served
            claims_from_cache = self.claims_from_cache
            request_errors = self.request_errors
            rejected_requests = self.rejected_requests
            dropped_streams = self.dropped_streams
            claim_errors = self.claim_errors
            inflight = self._inflight
        return {
            # "degraded" = alive but saturated: new /check requests are
            # being shed with 429 right now. Load balancers should route
            # away; the process itself is healthy and will recover.
            "status": "degraded" if inflight >= self.max_inflight else "ok",
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "databases": len(self.pool),
            "requests": requests,
            "inflight": inflight,
            "max_inflight": self.max_inflight,
            "claims_served": claims_served,
            "claims_from_cache": claims_from_cache,
            "request_errors": request_errors,
            "rejected_requests": rejected_requests,
            "dropped_streams": dropped_streams,
            "claim_errors": claim_errors,
            "incremental": {
                "enabled": self.incremental_enabled,
                "entries": len(self.cache),
                "hit_rate": round(self.cache.stats.hit_rate(), 4),
            },
        }

    def stats(self) -> dict:
        """Merged :class:`EngineStats` across pooled checkers + cache tiers."""
        engine = self.pool.stats_snapshot()
        payload = self.health()
        payload["engine"] = asdict(engine)
        payload["engine"]["memory_cache_hit_rate"] = round(
            engine.cache_hit_rate(), 4
        )
        payload["engine"]["disk_cache_hit_rate"] = round(
            engine.disk_hit_rate(), 4
        )
        cache_stats = self.cache.stats
        payload["incremental"].update(
            hits=cache_stats.hits,
            misses=cache_stats.misses,
            stores=cache_stats.stores,
            evictions=cache_stats.evictions,
            skipped=cache_stats.skipped,
            corrupted=cache_stats.corrupted,
        )
        return payload

    def note_error(self) -> None:
        with self._counter_lock:
            self.request_errors += 1

    def note_served(self, claims: int, cached: int) -> None:
        """Book one completed document (queue front end bookkeeping)."""
        with self._counter_lock:
            self.claims_served += claims
            self.claims_from_cache += cached

    def note_rejected(self) -> None:
        with self._counter_lock:
            self.rejected_requests += 1

    def note_dropped_stream(self) -> None:
        """A client hung up mid-stream (visible via GET /stats)."""
        with self._counter_lock:
            self.dropped_streams += 1

    def note_claim_error(self) -> None:
        with self._counter_lock:
            self.claim_errors += 1


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP framing over :class:`VerificationService`.

    HTTP/1.0 close-delimited responses: the /check stream has no known
    length up front, and end-of-body == connection close keeps every
    stdlib client (urllib, http.client, sockets) able to read events as
    they arrive.
    """

    server: "VerificationServer"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/health":
            self._send_json(200, self.server.service.health())
        elif self.path == "/stats":
            self._send_json(200, self.server.service.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        if self.path != "/check":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        if not service.try_acquire():
            # Shed load before buffering the body: a saturated server
            # must stay cheap to say no to.
            self.send_response(429)
            self.send_header("Content-Type", "application/json")
            self.send_header("Retry-After", "1")
            body = json.dumps(
                {"error": "too many in-flight requests; retry shortly"}
            ).encode("utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        try:
            self._handle_check(service)
        finally:
            service.release()

    def _handle_check(self, service: VerificationService) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            service.note_error()
            self._send_json(411, {"error": "Content-Length required"})
            return
        if length > MAX_BODY_BYTES:
            service.note_error()
            self._send_json(
                413,
                {
                    "error": f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                },
            )
            return
        body = self.rfile.read(length)
        try:
            payload = json.loads(body)
        except ValueError as error:
            # ValueError covers JSONDecodeError AND UnicodeDecodeError:
            # binary garbage gets the same structured 400 as broken JSON.
            service.note_error()
            self._send_json(
                400,
                {
                    "error": f"invalid JSON body: {error}",
                    "reason": "invalid_json",
                },
            )
            return
        try:
            request = CheckRequest.from_json(payload)
            prepared = service.prepare(request)
        except ProtocolError as error:
            service.note_error()
            self._send_json(
                400, {"error": str(error), "reason": error.reason}
            )
            return
        except CsvFormatError as error:
            # Malformed/hostile client data is a *request* problem:
            # structured 400 with a machine-readable reason. An
            # unreadable server-side file is an environment problem: 422.
            service.note_error()
            status = 422 if error.reason == "unreadable_file" else 400
            self._send_json(
                status, {"error": str(error), "reason": error.reason}
            )
            return
        except (ReproError, OSError) as error:
            service.note_error()
            self._send_json(422, {"error": str(error)})
            return

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            for event in service.stream(prepared):
                self.wfile.write(encode_event(event))
                self.wfile.flush()
        except OSError:
            # Client hung up mid-stream; counted, not fatal.
            service.note_dropped_stream()
        except Exception as error:
            # The status line is committed; report in-band and close.
            # Broad on purpose: the stream thread must never die silently,
            # whatever the checker throws.
            service.note_error()
            try:
                self.wfile.write(encode_event(error_event(str(error))))
                self.wfile.flush()
            except OSError:
                service.note_dropped_stream()

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            sys.stderr.write(
                "%s - - [%s] %s\n"
                % (self.address_string(), self.log_date_time_string(),
                   format % args)
            )


class VerificationServer(ThreadingHTTPServer):
    """Threaded HTTP server that drains in-flight requests on close.

    ``daemon_threads`` is False (unlike stock ``ThreadingHTTPServer``):
    with ``block_on_close`` this makes :meth:`server_close` join every
    request thread, so shutdown never truncates a verdict stream.
    """

    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        address: tuple[str, int],
        service: VerificationService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _RequestHandler)
        self.service = service
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_gracefully(self) -> None:
        """Stop accepting, then block until in-flight requests complete.

        Must be called from a thread other than the one running
        :meth:`serve_forever` (the standard ``shutdown`` contract).
        """
        self.shutdown()
        self.server_close()

    def handle_error(self, request, client_address) -> None:
        # A client that resets its connection can fail the handler
        # *outside* the streaming try/except — e.g. when socketserver
        # flushes the response during connection teardown. The stream
        # loop already counted that hangup (``dropped_streams``), so
        # counting here would double-book the same event; just keep the
        # stock implementation from dumping a traceback to stderr.
        # Anything that is not a connection-level failure still gets the
        # default report.
        if isinstance(sys.exception(), OSError):
            return
        super().handle_error(request, client_address)


def create_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    config: AggCheckerConfig | None = None,
    incremental: bool = True,
    incremental_capacity: int = 16384,
    max_databases: int = 64,
    max_inflight: int = 8,
    request_timeout: float | None = None,
    verbose: bool = False,
) -> VerificationServer:
    """Bind a :class:`VerificationServer` (port 0 picks a free port)."""
    service = VerificationService(
        config, incremental=incremental,
        incremental_capacity=incremental_capacity,
        max_databases=max_databases,
        max_inflight=max_inflight,
        request_timeout=request_timeout,
    )
    return VerificationServer((host, port), service, verbose=verbose)
