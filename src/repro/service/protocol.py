"""Wire protocol of the verification service.

One request shape (:class:`CheckRequest`, parsed from the POST /check JSON
body) and one response framing: newline-delimited JSON (NDJSON), one
complete JSON object per line, streamed as results become available:

- ``{"event": "start", ...}`` — document accepted, claims detected;
- ``{"event": "claim", "index": i, "cached": bool, "claim": {...}}`` —
  one verdict. ``claim`` carries *exactly* the per-claim payload of
  ``python -m repro check --json`` (:func:`verdict_payload` is shared by
  the CLI), so service output is bit-comparable to one-shot runs.
  ``index`` is the claim's document-order ordinal — cached verdicts
  stream before fresh ones complete, so events may arrive out of
  document order;
- ``{"event": "summary", ...}`` — totals (including ``flagged`` and
  ``errors`` counts), cache/engine counters, timing;
- ``{"event": "error", "index": i, "error": msg}`` — *one claim* failed
  verification (the stream continues: remaining claims still get their
  events and the summary still arrives). A claim verified under a
  deadline carries ``"degraded"`` in its payload (``"scope"``,
  ``"no_exec"``, or ``"timeout"``) naming the degradation rung;
- ``{"event": "error", "error": msg}`` — terminal mid-stream failure
  (no ``index``): the whole stream is aborted after this event.

Articles arrive inline (``article`` text) or by server-side path
(``article_path``); content sniffing (HTML vs plain text) matches the
CLI. The database is referenced three ways: server-side CSV paths
(``csv``), inline CSV text (``tables``: name → CSV text), or — once a
prior request has registered the data — by fingerprint (``database``:
either the ``database_fingerprint`` or the ``checker_fingerprint``
echoed in every start and summary event). A fingerprint reference skips
the per-request CSV load and content hash entirely and pins the exact
data it was minted from: edited data has a different fingerprint, so a
stale reference can never silently check against new content, and a
content fingerprint registered under more than one data dictionary is
rejected as ambiguous (the checker fingerprint pins data + dictionary
exactly).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.core.verdict import ClaimVerdict
from repro.db.csvio import CsvLimits, load_csv, load_csv_text
from repro.db.datadict import load_data_dictionary, parse_data_dictionary
from repro.db.schema import Database, Table
from repro.db.sql import render_sql
from repro.errors import ReproError
from repro.text.document import Document
from repro.text.htmlparse import parse_html


class ProtocolError(ReproError):
    """Malformed service request (maps to HTTP 400).

    ``reason`` is a stable machine-readable code surfaced alongside the
    human-readable message in error bodies.
    """

    def __init__(self, message: str, reason: str = "bad_request") -> None:
        super().__init__(message)
        self.reason = reason


#: Bounds on inline tables from untrusted clients — tighter than the
#: library-wide :data:`repro.db.csvio.DEFAULT_CSV_LIMITS`, which governs
#: operator-provided server-side files.
SERVICE_CSV_LIMITS = CsvLimits(
    max_rows=250_000, max_columns=256, max_field_bytes=65_536
)

#: Maximum inline tables per request (each one is hashed, typed, and
#: indexed; an attacker must not get unbounded work from one body).
MAX_INLINE_TABLES = 32

#: Maximum detected claims per document. Claims are verified jointly and
#: each claim fans out into a candidate space, so claim count is the
#: document-side cost multiplier.
MAX_CLAIMS_PER_DOCUMENT = 256


def enforce_claim_limit(n_claims: int) -> None:
    """Reject documents with more claims than the service will verify."""
    if n_claims > MAX_CLAIMS_PER_DOCUMENT:
        raise ProtocolError(
            f"document has {n_claims} claims, over the limit of "
            f"{MAX_CLAIMS_PER_DOCUMENT}",
            reason="too_many_claims",
        )


#: Accepted POST /check body keys. Exactly these — aliases and dataclass
#: field names are rejected so no request data is ever silently ignored.
_WIRE_FIELDS = frozenset(
    {
        "csv", "tables", "database", "article", "article_path", "title",
        "data_dict", "data_dict_path", "incremental", "database_name",
    }
)


@dataclass(frozen=True)
class CheckRequest:
    """One parsed POST /check body."""

    #: Server-side CSV paths, loaded in order (table name = file stem).
    csv_paths: tuple[str, ...] = ()
    #: Inline tables: (table name, CSV text) pairs, loaded after paths.
    inline_tables: tuple[tuple[str, str], ...] = ()
    #: Content fingerprint of a database a prior request registered
    #: (mutually exclusive with ``csv``/``tables``/data dictionaries).
    database: str | None = None
    #: Inline article content (HTML subset or plain text).
    article: str | None = None
    #: Server-side article path (alternative to ``article``).
    article_path: str | None = None
    #: Document title used for inline plain-text articles.
    title: str = "document"
    #: Server-side data-dictionary path (column,description CSV).
    data_dict_path: str | None = None
    #: Inline data dictionary text (alternative to ``data_dict_path``).
    data_dict: str | None = None
    #: Opt out of the incremental re-check tier for this request.
    incremental: bool = True
    database_name: str = "service"

    @classmethod
    def from_json(cls, payload: object) -> "CheckRequest":
        """Validate and parse a decoded JSON body."""
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        unknown = set(payload) - _WIRE_FIELDS
        if unknown:
            raise ProtocolError(f"unknown request fields: {sorted(unknown)}")

        csv_paths = payload.get("csv", [])
        if isinstance(csv_paths, str):
            csv_paths = [csv_paths]
        if not isinstance(csv_paths, list) or not all(
            isinstance(p, str) for p in csv_paths
        ):
            raise ProtocolError("'csv' must be a path or list of paths")

        raw_tables = payload.get("tables", {})
        if not isinstance(raw_tables, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in raw_tables.items()
        ):
            raise ProtocolError("'tables' must map table names to CSV text")
        if len(raw_tables) > MAX_INLINE_TABLES:
            raise ProtocolError(
                f"request has {len(raw_tables)} inline tables, over the "
                f"limit of {MAX_INLINE_TABLES}",
                reason="too_many_tables",
            )
        inline_tables = tuple(sorted(raw_tables.items()))

        database = _optional_str(payload, "database")
        if database is not None:
            conflicting = [
                key
                for key in ("csv", "tables", "data_dict", "data_dict_path")
                if payload.get(key)
            ]
            if conflicting:
                raise ProtocolError(
                    "'database' (fingerprint reference) excludes "
                    f"{conflicting}: the referenced checker already pins "
                    "its data and dictionary"
                )
        elif not csv_paths and not inline_tables:
            raise ProtocolError(
                "request needs 'csv' paths, inline 'tables', or a "
                "'database' fingerprint reference"
            )

        article = _optional_str(payload, "article")
        article_path = _optional_str(payload, "article_path")
        if (article is None) == (article_path is None):
            raise ProtocolError(
                "request needs exactly one of 'article' and 'article_path'"
            )

        incremental = payload.get("incremental", True)
        if not isinstance(incremental, bool):
            raise ProtocolError("'incremental' must be a boolean")

        return cls(
            csv_paths=tuple(csv_paths),
            inline_tables=inline_tables,
            database=database,
            article=article,
            article_path=article_path,
            title=_optional_str(payload, "title") or "document",
            data_dict_path=_optional_str(payload, "data_dict_path"),
            data_dict=_optional_str(payload, "data_dict"),
            incremental=incremental,
            database_name=_optional_str(payload, "database_name") or "service",
        )

    def load_database(self) -> Database:
        """Materialize the referenced tables into a Database.

        Server-side ``csv`` paths are operator-provided and load under
        the library defaults; inline tables come from the client and are
        bounded by :data:`SERVICE_CSV_LIMITS`.
        """
        tables: list[Table] = [load_csv(path) for path in self.csv_paths]
        tables.extend(
            load_csv_text(text, name, SERVICE_CSV_LIMITS)
            for name, text in self.inline_tables
        )
        return Database(self.database_name, tables)

    def load_dictionary(self) -> dict[str, str] | None:
        if self.data_dict is not None:
            return parse_data_dictionary(self.data_dict)
        if self.data_dict_path is not None:
            return load_data_dictionary(self.data_dict_path)
        return None

    def load_document(self) -> Document:
        if self.article_path is not None:
            path = Path(self.article_path)
            return parse_article(
                path.read_text(encoding="utf-8-sig"), path.stem
            )
        assert self.article is not None
        return parse_article(self.article, self.title)


def data_spec(request: CheckRequest) -> dict:
    """The JSON-serializable *data* half of a request.

    Journaled with every queue job (and kept in the service's reference
    registry) so a restarted server can rebuild the database, dictionary,
    and checker for a job whose original request is long gone. Inline
    table text is carried verbatim; ``csv``/``data_dict`` paths stay
    paths — they are server-side files by contract.
    """
    return {
        "csv": list(request.csv_paths),
        "tables": dict(request.inline_tables),
        "data_dict": request.data_dict,
        "data_dict_path": request.data_dict_path,
        "database_name": request.database_name,
    }


def spec_request(
    source: dict, article: str, title: str
) -> CheckRequest:
    """Rebuild the :class:`CheckRequest` a journaled job was admitted as."""
    return CheckRequest(
        csv_paths=tuple(source.get("csv") or ()),
        inline_tables=tuple(sorted((source.get("tables") or {}).items())),
        article=article,
        title=title,
        data_dict=source.get("data_dict"),
        data_dict_path=source.get("data_dict_path"),
        database_name=source.get("database_name") or "service",
    )


def _optional_str(payload: dict, key: str) -> str | None:
    value = payload.get(key)
    if value is not None and not isinstance(value, str):
        raise ProtocolError(f"{key!r} must be a string")
    return value


def parse_article(text: str, title: str) -> Document:
    """HTML-or-plain-text sniffing, identical to the ``check`` CLI."""
    if "<" in text and ">" in text:
        return parse_html(text)
    paragraphs = [p for p in text.split("\n\n") if p.strip()]
    return Document.from_plain_text(title, paragraphs)


def verdict_payload(verdict: ClaimVerdict) -> dict:
    """The canonical JSON shape of one claim verdict.

    Shared by ``python -m repro check --json`` and the service's claim
    events: any divergence between one-shot and served verdicts is a
    payload diff, not a formatting artifact.
    """
    payload = {
        "text": verdict.claim.mention.text,
        "sentence": verdict.claim.sentence.text,
        "claimed_value": verdict.claim.claimed_value,
        "status": verdict.status.value,
        "top_query": (
            render_sql(verdict.top_query) if verdict.top_query else None
        ),
        "top_result": verdict.top_result,
        "probability_correct": round(verdict.probability_correct, 4),
    }
    # Only present when set: undegraded payloads stay byte-identical to
    # every release before deadlines existed.
    if verdict.degraded is not None:
        payload["degraded"] = verdict.degraded
    return payload


def payload_crc(payload: dict) -> int:
    """CRC32 of a verdict payload's canonical JSON encoding.

    Canonical = sorted keys, no whitespace, ``default=str`` for the odd
    non-JSON value (inf/nan round-trip via repr). The incremental memo
    tier stores this next to each cached payload and re-verifies it on
    every hit, so an in-memory bit flip (or any post-store mutation of a
    shared payload dict) is detected and degrades to a recompute instead
    of serving a corrupted verdict.
    """
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return zlib.crc32(body.encode("utf-8", "surrogatepass"))


def claim_event(index: int, payload: dict, cached: bool) -> dict:
    return {"event": "claim", "index": index, "cached": cached, "claim": payload}


def error_event(message: str) -> dict:
    return {"event": "error", "error": message}


def encode_event(event: dict) -> bytes:
    """One NDJSON frame: a complete JSON object terminated by ``\\n``."""
    return (json.dumps(event, separators=(",", ":")) + "\n").encode("utf-8")
