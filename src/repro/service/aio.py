"""Asynchronous, queue-backed service front end (``python -m repro serve``).

The PR-5 service holds one thread per in-flight document for the whole
verification. This front end decouples *admission* from *execution*:

- **Admission** (cheap, bounded): parse the request, rate-limit the
  client (per-client token buckets — ``X-Client-Id`` header or peer
  address), warm or reuse the pooled checker, detect claims, answer
  cached claims immediately, and enqueue one durable job per fresh claim
  (grouped per document so joint inference is preserved). Admission runs
  on the default executor; the event loop itself never blocks on the
  checker.
- **Execution**: the :class:`~repro.service.workers.WorkerPool` leases
  job groups off the :class:`~repro.service.queue.DurableJobQueue`,
  verifies them, and acks with verdict payloads.
- **Delivery**: each queued job carries a subscriber that trampolines
  the ack into the connection's asyncio queue
  (``loop.call_soon_threadsafe``); the handler streams NDJSON claim
  events in ack order and finishes with a summary.

Backpressure is explicit: a rate-limited client or a full queue gets
``429`` + ``Retry-After`` (depth-aware for the queue) *before* any work
is admitted. Shutdown is graceful: stop accepting, let leased jobs
finish and ack, journal the rest — a restarted server resumes them from
the queue directory and verifies them with no client attached (verdicts
land in the incremental tier, so resubmission is a cache hit).

The HTTP dialect matches :mod:`repro.service.server`: HTTP/1.0,
close-delimited NDJSON streams, identical event payloads — a client
cannot tell which front end served it except via the extra queue fields.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro import faults
from repro.audit.shadow import DEFAULT_AUDIT_RATE, ShadowAuditor
from repro.audit.trust import TrustLadder
from repro.core.checker import claim_fingerprint
from repro.core.config import AggCheckerConfig
from repro.errors import (
    AdmissionRejectedError,
    CsvFormatError,
    InjectedFault,
    QueueFullError,
    RateLimitedError,
    ReproError,
)
from repro.harness.parallel import RetryPolicy
from repro.service.memwatch import MemoryWatchdog, read_rss_mb
from repro.service.protocol import (
    CheckRequest,
    ProtocolError,
    claim_event,
    data_spec,
    encode_event,
    error_event,
)
from repro.service.queue import DurableJobQueue
from repro.service.ratelimit import ClientRateLimiter
from repro.service.server import MAX_BODY_BYTES, VerificationService
from repro.service.workers import CircuitBreaker, GroupExecutor, WorkerPool

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Seconds a connection may sit idle while sending its request head.
_HEADER_TIMEOUT = 30.0


@dataclass
class Admission:
    """Everything the handler needs after one document is admitted."""

    prepared: object
    #: start event + immediately-answerable claim events, emission order.
    events: list = field(default_factory=list)
    #: ``(job id, claim index)`` per registered subscriber — one delayed
    #: event is owed for each entry.
    pending: list = field(default_factory=list)
    statuses: list = field(default_factory=list)
    n_cached: int = 0
    n_deduped: int = 0
    started: float = 0.0


class QueueService:
    """The queue-backed service core: admission, execution, delivery.

    Composes the warm :class:`VerificationService` (checkers, incremental
    tier, reference registry), the :class:`DurableJobQueue`, the
    :class:`WorkerPool` with its :class:`CircuitBreaker`, and the
    per-client :class:`ClientRateLimiter`. The HTTP layer above is a thin
    framing shim; tests drive :meth:`admit` directly.
    """

    def __init__(
        self,
        config: AggCheckerConfig | None = None,
        queue_dir: str | Path | None = None,
        queue_capacity: int = 1024,
        workers: int = 2,
        visibility_timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        rate_limit: float = 0.0,
        rate_burst: float | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        incremental: bool = True,
        incremental_capacity: int = 16384,
        max_databases: int = 64,
        request_timeout: float | None = None,
        stream_timeout: float | None = None,
        fsync: bool = False,
        max_request_cost: int | None = None,
        max_rss_mb: float | None = None,
        rss_interval: float = 1.0,
        audit_rate: float = DEFAULT_AUDIT_RATE,
        audit_backlog: int = 64,
        trust_recover_after: int = 8,
    ) -> None:
        self.service = VerificationService(
            config,
            incremental=incremental,
            incremental_capacity=incremental_capacity,
            max_databases=max_databases,
            request_timeout=request_timeout,
        )
        retry = retry or RetryPolicy()
        self.queue = DurableJobQueue(
            queue_dir,
            capacity=queue_capacity,
            retry=retry,
            fsync=fsync,
            # Degraded verdicts (exhausted budget, open breaker) must not
            # be pinned by queue idempotency: resubmission re-executes,
            # exactly as the incremental tier refuses to memoize them.
            reusable_result=lambda payload: not payload.get("degraded"),
        )
        self.breaker = CircuitBreaker(breaker_threshold, breaker_cooldown)
        #: Online integrity audit: sampled acked groups are re-verified in
        #: the background against the NAIVE/row-wise oracle, divergences
        #: repair the memo tier and demote the database's trust rung.
        #: ``audit_rate=0.0`` disables the subsystem entirely.
        self.auditor = (
            ShadowAuditor(
                self.service,
                rate=audit_rate,
                ladder=TrustLadder(trust_recover_after),
                max_backlog=audit_backlog,
            )
            if audit_rate > 0.0
            else None
        )
        self.executor = GroupExecutor(
            self.service, self.breaker, request_timeout, auditor=self.auditor
        )
        self.workers = WorkerPool(
            self.queue,
            self.executor,
            workers=workers,
            visibility_timeout=visibility_timeout,
        )
        self.limiter = ClientRateLimiter(rate_limit, rate_burst)
        #: Cost-based admission: reject requests whose estimated cost
        #: (tables x rows x claims — a coarse upper bound on demanded
        #: work) exceeds this, with 413 + machine-readable reason,
        #: *before* anything reaches the queue. None disables the check.
        self.max_request_cost = max_request_cost
        self.rejected_cost = 0
        #: Memory-pressure shedding: a stdlib-only RSS sampler that holds
        #: the circuit breaker open while the process is over
        #: ``max_rss_mb``, so execution degrades instead of OOMing.
        self.memwatch = (
            MemoryWatchdog(self.breaker, max_rss_mb, rss_interval)
            if max_rss_mb is not None
            else None
        )
        if stream_timeout is None:
            # Worst case before a job must have resolved: every attempt
            # times out its lease, plus scheduling slack.
            stream_timeout = (
                (retry.max_attempts + 1) * visibility_timeout + 30.0
            )
        self.stream_timeout = stream_timeout
        self._drain_lock = threading.Lock()
        self._drained = False
        self.draining = False
        self.journaled_on_drain = 0

    def start(self) -> None:
        """Start the worker pool (journal-resumed jobs begin immediately)."""
        self.workers.start()
        if self.memwatch is not None:
            self.memwatch.start()
        if self.auditor is not None:
            self.auditor.start()

    # ------------------------------------------------------------------
    # Admission

    def admit(self, request: CheckRequest, client: str, subscriber_factory):
        """Admit one document: cache answers now, queue the rest.

        ``subscriber_factory(index)`` must return a cheap, thread-safe
        callback (the queue notifies under its lock). Raises
        :class:`RateLimitedError` / :class:`QueueFullError` (both 429),
        :class:`ProtocolError` (400), or :class:`ReproError` (422/503)
        strictly before anything is enqueued: group admission is atomic
        under the queue lock, so a document is either fully queued (as
        one joint-execution group) or not at all.
        """
        if self.draining:
            raise ReproError(
                "service is draining; retry against the restarted instance"
            )
        allowed, retry_after = self.limiter.allow(client)
        if not allowed:
            self.service.note_rejected()
            raise RateLimitedError(client, retry_after)
        started = time.perf_counter()
        prepared = self.service.prepare(request)
        self._check_admission_cost(prepared, client)
        use_cache = self.service.incremental_enabled and request.incremental
        claims = prepared.claims

        # Journalable rebuild material: the data spec plus the article
        # *text* (even for path requests — the file may be gone after a
        # restart) and a title that reproduces load_document() exactly.
        if request.article is not None:
            article, title = request.article, request.title
        else:
            path = Path(request.article_path)
            article = path.read_text(encoding="utf-8-sig")
            title = path.stem
        if request.database is not None:
            registered = self.service.source_for(prepared.scope_fp)
            if registered is None:
                raise ReproError(
                    "cannot queue against this fingerprint reference: its "
                    "data spec is no longer registered; resubmit 'csv' "
                    "paths or inline 'tables'"
                )
            source = dict(registered)
        else:
            source = data_spec(request)
        source["article"] = article
        source["title"] = title

        admission = Admission(
            prepared=prepared,
            statuses=[None] * len(claims),
            started=started,
        )
        fresh: list[tuple[int, str]] = []
        for index, claim in enumerate(claims):
            if not use_cache:  # don't hash contexts for an unused key
                fresh.append((index, ""))
                continue
            fp = claim_fingerprint(claim)
            payload = self.service.cache.get((prepared.scope_fp, fp))
            if payload is not None:
                admission.statuses[index] = payload["status"]
                admission.n_cached += 1
                admission.events.append(claim_event(index, payload, cached=True))
            else:
                fresh.append((index, fp))
        group = uuid.uuid4().hex
        entries = []
        for index, fp in fresh:
            # With the incremental tier on, the idempotency key is the
            # same identity the tier memoizes under, so identical claims
            # dedupe across concurrent requests; with it off, the key is
            # request-scoped — every submission recomputes.
            entries.append({
                "key": f"{prepared.scope_fp}:{fp}" if fp else f"{group}:{index}",
                "group": group,
                "index": index,
                "scope": prepared.scope_fp,
                "source": source,
                "claim_fp": fp,
                "subscriber": subscriber_factory(index),
            })
        try:
            # Atomic: either the whole document's fresh claims are
            # admitted as one group (a worker can never lease a partial
            # group, which would split the joint batch and change the
            # pooled priors) or nothing is enqueued and the 429 carries
            # the retry hint.
            submitted = self.queue.submit_group(entries) if entries else []
        except QueueFullError:
            self.service.note_rejected()
            raise
        for entry, (job, done) in zip(entries, submitted):
            index = entry["index"]
            if done is not None:
                admission.statuses[index] = done["status"]
                admission.n_deduped += 1
                admission.events.append(claim_event(index, done, cached=True))
            else:
                admission.pending.append((job.id, index))
        admission.events.insert(
            0,
            {
                "event": "start",
                "document": prepared.document.title,
                "claims": len(claims),
                "database_fingerprint": prepared.database_fp,
                "checker_fingerprint": prepared.scope_fp,
                "incremental": use_cache,
                "queued": len(admission.pending),
                "deduped": admission.n_deduped,
            },
        )
        return admission

    def _check_admission_cost(self, prepared, client: str) -> None:
        """Reject oversized work before it reaches the queue.

        Cost = tables x rows x claims: deliberately coarse — it needs no
        cube estimation, only already-loaded metadata — and a true
        multiplier of the work one request can demand (each claim fans
        out candidate queries over the joined tables). The
        ``admission.cost`` fire point lets the chaos harness drive the
        rejection path without constructing an oversized request.
        """
        checker = prepared.entry.checker
        database = checker.database if checker is not None else None
        n_tables = len(database.tables) if database is not None else 1
        n_rows = database.total_rows() if database is not None else 0
        cost = max(1, n_tables) * max(1, n_rows) * max(1, len(prepared.claims))
        try:
            faults.fire("admission.cost", client, cost)
        except InjectedFault as fault:
            # An armed fault at the cost check simulates an oversized
            # request: same structured 413 path, zero queue impact.
            self.rejected_cost += 1
            self.service.note_rejected()
            raise AdmissionRejectedError(cost, 0) from fault
        if self.max_request_cost is not None and cost > self.max_request_cost:
            self.rejected_cost += 1
            self.service.note_rejected()
            raise AdmissionRejectedError(cost, self.max_request_cost)

    # ------------------------------------------------------------------
    # Introspection / shutdown

    def health(self) -> dict:
        payload = self.service.health()
        queue = self.queue.stats()
        payload["queue"] = queue
        payload["workers"] = self.workers.stats()
        payload["breaker"] = self.breaker.stats()
        payload["rate_limiter"] = self.limiter.stats()
        payload["memory"] = self._memory_stats()
        payload["admission"] = {
            "max_request_cost": self.max_request_cost,
            "rejected_cost": self.rejected_cost,
        }
        payload["draining"] = self.draining
        audit = (
            self.auditor.health() if self.auditor is not None else None
        )
        payload["audit"] = audit
        if self.draining:
            payload["status"] = "draining"
        elif (
            queue["depth"] >= queue["capacity"]
            or payload["breaker"]["state"] == "open"
            or (audit is not None and audit["degraded"])
        ):
            payload["status"] = "degraded"
        else:
            payload["status"] = "ok"
        return payload

    def stats(self) -> dict:
        payload = self.service.stats()
        payload["queue"] = self.queue.stats()
        payload["workers"] = self.workers.stats()
        payload["breaker"] = self.breaker.stats()
        payload["rate_limiter"] = self.limiter.stats()
        payload["memory"] = self._memory_stats()
        payload["admission"] = {
            "max_request_cost": self.max_request_cost,
            "rejected_cost": self.rejected_cost,
        }
        payload["draining"] = self.draining
        if self.auditor is not None:
            payload["audit"] = self.auditor.snapshot()
            # The audit_* counters live on the auditor's own EngineStats
            # (the pooled checkers never touch them); fold them into the
            # merged engine block so one endpoint has every counter.
            for name, value in asdict(self.auditor.stats).items():
                if name.startswith("audit_"):
                    payload["engine"][name] = (
                        payload["engine"].get(name, 0) + value
                    )
        return payload

    def _memory_stats(self) -> dict:
        if self.memwatch is not None:
            return self.memwatch.stats()
        rss = read_rss_mb()
        return {
            "rss_mb": round(rss, 1) if rss is not None else None,
            "max_rss_mb": None,
            "shedding": False,
        }

    def deadletter(self) -> list[dict]:
        return self.queue.deadletter()

    def drain(self, timeout: float = 30.0) -> int:
        """Graceful shutdown: finish leased jobs, journal the rest.

        Idempotent; returns the number of jobs left journaled for the
        next process.
        """
        with self._drain_lock:
            if self._drained:
                return self.journaled_on_drain
            self.draining = True
            if self.memwatch is not None:
                self.memwatch.stop()
            journaled = self.queue.drain(timeout)
            self.workers.stop()
            if self.auditor is not None:
                self.auditor.close()
            self.queue.close()
            self.journaled_on_drain = journaled
            self._drained = True
            return journaled


class AsyncVerificationServer:
    """``asyncio.start_server``-based HTTP front end over a QueueService.

    HTTP/1.0 with ``Connection: close`` framing, exactly like the
    threaded server: end-of-body == connection close keeps every stdlib
    client able to read NDJSON events as they arrive.
    """

    def __init__(
        self,
        service: QueueService,
        host: str = "127.0.0.1",
        port: int = 8765,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.verbose = verbose
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None
        self._started_event = threading.Event()
        self._start_error: BaseException | None = None
        self._tasks: set[asyncio.Task] = set()
        self._shutdown_done = False
        self._bound: tuple[str, int] | None = None

    @property
    def url(self) -> str:
        assert self._bound is not None, "server not started"
        return f"http://{self._bound[0]}:{self._bound[1]}"

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        self.service.start()
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        name = sock.getsockname()
        self._bound = (name[0], name[1])

    async def _run_until_stopped(self, on_ready=None) -> None:
        await self.start()
        if on_ready is not None:
            on_ready(self)
        self._started_event.set()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self._shutdown()

    async def _shutdown(self) -> None:
        """Stop accepting, drain the queue tier, wait for open streams."""
        if self._shutdown_done:
            return
        self._shutdown_done = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        # Drain in an executor thread: leased jobs finish and ack (their
        # streams below complete), pending jobs get "drained" events.
        await loop.run_in_executor(None, self.service.drain)
        current = asyncio.current_task()
        tasks = [t for t in self._tasks if t is not current]
        if tasks:
            await asyncio.wait(tasks, timeout=30.0)

    def run_blocking(self, on_ready=None) -> None:
        """Serve until interrupted (the CLI entry point)."""
        try:
            asyncio.run(self._run_until_stopped(on_ready))
        except KeyboardInterrupt:
            pass
        finally:
            # Idempotent: covers the interrupt path where the loop died
            # before _shutdown ran. Streams are gone with the loop, but
            # leased jobs still finish and pending jobs stay journaled.
            self.service.drain()

    def start_in_thread(self, timeout: float = 30.0) -> str:
        """Run the server on a background thread; returns the bound URL."""
        def _run() -> None:
            try:
                asyncio.run(self._run_until_stopped())
            except BaseException as error:  # surfaced to the caller
                self._start_error = error
                self._started_event.set()
        self._thread = threading.Thread(
            target=_run, name="aio-server", daemon=True
        )
        self._thread.start()
        if not self._started_event.wait(timeout):
            raise ReproError("async server did not start in time")
        if self._start_error is not None:
            raise ReproError(f"async server failed to start: {self._start_error}")
        return self.url

    def shutdown_gracefully(self, timeout: float = 60.0) -> None:
        """Drain and stop a server started with :meth:`start_in_thread`."""
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(self._shutdown(), loop)
            try:
                future.result(timeout)
            except Exception:
                pass
            stop_event = self._stop_event
            if stop_event is not None:
                loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)
        self.service.drain()

    # ------------------------------------------------------------------
    # HTTP framing

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            await self._handle_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, TimeoutError):
            self.service.service.note_dropped_stream()
        except Exception as error:
            # Never let a handler die silently, whatever the checker
            # throws; by this point the head may be committed, so report
            # in-band and close.
            self.service.service.note_error()
            try:
                writer.write(encode_event(error_event(str(error))))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            if task is not None:
                self._tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        line = await asyncio.wait_for(reader.readline(), _HEADER_TIMEOUT)
        if not line:
            return
        parts = line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            await self._send_json(
                writer, 400, {"error": "malformed request line"}
            )
            return
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await asyncio.wait_for(reader.readline(), _HEADER_TIMEOUT)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1", "replace").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        if self.verbose:
            import sys

            sys.stderr.write(f"{method} {path}\n")
        if method == "GET":
            if path == "/health":
                await self._send_json(writer, 200, self.service.health())
            elif path == "/stats":
                await self._send_json(writer, 200, self.service.stats())
            elif path == "/deadletter":
                dead = self.service.deadletter()
                await self._send_json(
                    writer, 200, {"count": len(dead), "deadletter": dead}
                )
            elif path == "/audit":
                auditor = self.service.auditor
                if auditor is None:
                    await self._send_json(
                        writer, 200, {"enabled": False}
                    )
                else:
                    await self._send_json(writer, 200, auditor.snapshot())
            else:
                await self._send_json(
                    writer, 404, {"error": f"unknown path {path!r}"}
                )
        elif method == "POST":
            if path != "/check":
                await self._send_json(
                    writer, 404, {"error": f"unknown path {path!r}"}
                )
                return
            await self._handle_check(reader, writer, headers)
        else:
            await self._send_json(
                writer, 405, {"error": f"method {method} not allowed"}
            )

    async def _handle_check(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: dict[str, str],
    ) -> None:
        service = self.service
        base = service.service
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            base.note_error()
            await self._send_json(
                writer, 411, {"error": "Content-Length required"}
            )
            return
        if length > MAX_BODY_BYTES:
            base.note_error()
            await self._send_json(
                writer,
                413,
                {
                    "error": f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                },
            )
            return
        body = await reader.readexactly(length)
        try:
            payload = json.loads(body)
        except ValueError as error:
            # ValueError covers JSONDecodeError AND UnicodeDecodeError:
            # raw binary garbage must get the same structured 400 as
            # syntactically broken JSON, not an unhandled traceback.
            base.note_error()
            await self._send_json(
                writer,
                400,
                {
                    "error": f"invalid JSON body: {error}",
                    "reason": "invalid_json",
                },
            )
            return

        peer = writer.get_extra_info("peername")
        client = headers.get("x-client-id") or (
            peer[0] if isinstance(peer, (tuple, list)) else str(peer)
        )
        loop = asyncio.get_running_loop()
        events_q: asyncio.Queue = asyncio.Queue()

        def subscriber_factory(index: int):
            def _subscriber(kind, job, result, _index=index):
                try:
                    loop.call_soon_threadsafe(
                        events_q.put_nowait, (kind, _index, result)
                    )
                except RuntimeError:
                    pass  # loop gone: the connection died with it

            return _subscriber

        try:
            request = CheckRequest.from_json(payload)
            admission = await loop.run_in_executor(
                None, service.admit, request, client, subscriber_factory
            )
        except (RateLimitedError, QueueFullError) as error:
            retry_after = max(1, math.ceil(error.retry_after_seconds))
            reason = (
                "rate_limited"
                if isinstance(error, RateLimitedError)
                else "queue_full"
            )
            await self._send_json(
                writer,
                429,
                {
                    "error": str(error),
                    "reason": reason,
                    "retry_after": retry_after,
                },
                extra_headers=[f"Retry-After: {retry_after}"],
            )
            return
        except AdmissionRejectedError as error:
            await self._send_json(
                writer,
                413,
                {
                    "error": str(error),
                    "reason": "cost_exceeded",
                    "cost": error.cost,
                    "max_cost": error.max_cost,
                },
            )
            return
        except ProtocolError as error:
            base.note_error()
            await self._send_json(
                writer, 400, {"error": str(error), "reason": error.reason}
            )
            return
        except CsvFormatError as error:
            # Hostile or malformed client data: structured 400, not 422.
            # An unreadable server-side file is the environment's fault,
            # not the request's: that one stays a 422.
            base.note_error()
            status = 422 if error.reason == "unreadable_file" else 400
            await self._send_json(
                writer, status, {"error": str(error), "reason": error.reason}
            )
            return
        except (ReproError, OSError) as error:
            base.note_error()
            status = 503 if service.draining else 422
            await self._send_json(writer, status, {"error": str(error)})
            return

        writer.write(
            b"HTTP/1.0 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        for event in admission.events:
            writer.write(encode_event(event))
        await writer.drain()

        statuses = admission.statuses
        evaluated = drained = 0
        remaining = len(admission.pending)
        while remaining > 0:
            try:
                kind, index, result = await asyncio.wait_for(
                    events_q.get(), timeout=service.stream_timeout
                )
            except asyncio.TimeoutError:
                base.note_error()
                writer.write(
                    encode_event(
                        error_event(
                            f"timed out after {service.stream_timeout:.0f}s "
                            f"waiting for {remaining} queued claim(s)"
                        )
                    )
                )
                break
            if kind == "ack":
                statuses[index] = result["status"]
                evaluated += 1
                writer.write(encode_event(claim_event(index, result, cached=False)))
            elif kind == "dead":
                statuses[index] = "error"
                base.note_claim_error()
                writer.write(
                    encode_event(
                        {"event": "error", "index": index, "error": str(result)}
                    )
                )
            elif kind == "drained":
                statuses[index] = "drained"
                drained += 1
                writer.write(
                    encode_event(
                        {
                            "event": "error",
                            "index": index,
                            "error": "server draining: job journaled and "
                            "will resume on restart",
                        }
                    )
                )
            remaining -= 1
            await writer.drain()

        base.note_served(len(statuses), admission.n_cached)
        errors = sum(1 for status in statuses if status == "error")
        flagged = sum(
            1
            for status in statuses
            if status not in (None, "verified", "error", "drained")
        )
        prepared = admission.prepared
        queue_stats = service.queue.stats()
        writer.write(
            encode_event(
                {
                    "event": "summary",
                    "claims": len(statuses),
                    "flagged": flagged,
                    "errors": errors,
                    "cached_claims": admission.n_cached,
                    "deduped_claims": admission.n_deduped,
                    "evaluated_claims": evaluated,
                    "drained_claims": drained,
                    "seconds": round(
                        time.perf_counter() - admission.started, 4
                    ),
                    "database_fingerprint": prepared.database_fp,
                    "checker_fingerprint": prepared.scope_fp,
                    "queue": {
                        "depth": queue_stats["depth"],
                        "deadletter": queue_stats["deadletter"],
                    },
                }
            )
        )
        await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        extra_headers: list[str] | None = None,
    ) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        head = [
            f"HTTP/1.0 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        head.extend(extra_headers or ())
        head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()


def create_async_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    config: AggCheckerConfig | None = None,
    queue_dir: str | Path | None = None,
    queue_capacity: int = 1024,
    workers: int = 2,
    visibility_timeout: float = 30.0,
    retry: RetryPolicy | None = None,
    rate_limit: float = 0.0,
    rate_burst: float | None = None,
    breaker_threshold: int = 5,
    breaker_cooldown: float = 30.0,
    incremental: bool = True,
    incremental_capacity: int = 16384,
    max_databases: int = 64,
    request_timeout: float | None = None,
    stream_timeout: float | None = None,
    fsync: bool = False,
    max_request_cost: int | None = None,
    max_rss_mb: float | None = None,
    rss_interval: float = 1.0,
    audit_rate: float = DEFAULT_AUDIT_RATE,
    audit_backlog: int = 64,
    trust_recover_after: int = 8,
    verbose: bool = False,
) -> AsyncVerificationServer:
    """Build an :class:`AsyncVerificationServer` (port 0 picks a free port)."""
    service = QueueService(
        config,
        queue_dir=queue_dir,
        queue_capacity=queue_capacity,
        workers=workers,
        visibility_timeout=visibility_timeout,
        retry=retry,
        rate_limit=rate_limit,
        rate_burst=rate_burst,
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
        incremental=incremental,
        incremental_capacity=incremental_capacity,
        max_databases=max_databases,
        request_timeout=request_timeout,
        stream_timeout=stream_timeout,
        fsync=fsync,
        max_request_cost=max_request_cost,
        max_rss_mb=max_rss_mb,
        rss_interval=rss_interval,
        audit_rate=audit_rate,
        audit_backlog=audit_backlog,
        trust_recover_after=trust_recover_after,
    )
    return AsyncVerificationServer(service, host=host, port=port, verbose=verbose)
