"""Memory-pressure watchdog: RSS sampling that sheds before the OOM killer.

Deadlines and space budgets bound *per-request* work, but a process
serves many requests; their aggregate footprint (pooled checkers, cube
caches, journal state) can still creep toward the container limit, where
the kernel's OOM killer ends the story without a stack trace. The
watchdog samples resident-set size from ``/proc/self/statm``
(stdlib-only, no dependencies) on a background thread and, when RSS
crosses ``max_rss_mb``, *forces* the worker pool's
:class:`~repro.service.workers.CircuitBreaker` open: leased job groups
take the shed path (instantly-expired deadline -> explicit degraded
unverifiable verdicts) and the queue keeps draining without allocating,
while ``/health`` reports the pressure. When RSS drops back under the
threshold (with hysteresis, so the breaker does not flap at the
boundary) the hold is released and normal execution resumes.

On platforms without ``/proc`` the watchdog is inert: sampling returns
None, the breaker is never forced, and health reports RSS as
unavailable.
"""

from __future__ import annotations

import os
import threading

#: Release the forced-open hold only once RSS drops below this share of
#: the limit — flapping at the threshold would alternate verdict quality
#: request by request.
_RELEASE_SHARE = 0.9

_STATM_PATH = "/proc/self/statm"


def read_rss_mb() -> float | None:
    """Resident-set size in MiB, or None where ``/proc`` is unavailable."""
    try:
        with open(_STATM_PATH, "rb") as statm:
            fields = statm.read().split()
        pages = int(fields[1])
        page_size = os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError, AttributeError):
        return None
    return pages * page_size / (1024 * 1024)


class MemoryWatchdog:
    """Samples RSS and force-opens a breaker past ``max_rss_mb``."""

    def __init__(
        self,
        breaker,
        max_rss_mb: float,
        interval_seconds: float = 1.0,
    ) -> None:
        if max_rss_mb <= 0:
            raise ValueError(f"max_rss_mb must be > 0, got {max_rss_mb}")
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self.breaker = breaker
        self.max_rss_mb = max_rss_mb
        self.interval_seconds = interval_seconds
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._shedding = False
        self._last_rss_mb: float | None = None
        self.samples = 0
        self.trips = 0

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="memory-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            self._stop.wait(self.interval_seconds)

    def sample_once(self) -> float | None:
        """One sampling step (exposed for deterministic tests)."""
        rss = read_rss_mb()
        with self._lock:
            self.samples += 1
            self._last_rss_mb = rss
            if rss is None:
                return None
            if not self._shedding and rss > self.max_rss_mb:
                self._shedding = True
                self.trips += 1
                self.breaker.force_open(
                    f"rss {rss:.0f} MiB over the {self.max_rss_mb:.0f} MiB "
                    "limit"
                )
            elif self._shedding and rss < self.max_rss_mb * _RELEASE_SHARE:
                self._shedding = False
                self.breaker.release_forced()
        return rss

    def stats(self) -> dict:
        """The ``memory`` block of ``/health``."""
        with self._lock:
            rss = self._last_rss_mb
            return {
                "rss_mb": round(rss, 1) if rss is not None else None,
                "max_rss_mb": self.max_rss_mb,
                "shedding": self._shedding,
                "samples": self.samples,
                "trips": self.trips,
            }
