"""The incremental re-check tier: per-claim verdict memoization.

The editing loop the paper's interface implies — a journalist fixes one
number and resubmits the draft — repays claim-level caching: everything
the pipeline reads for a claim is captured by three fingerprints, and a
resubmission re-evaluates only claims whose key changed.

Key structure (all SHA-256):

- **database content fingerprint** (:func:`repro.db.diskcache.fingerprint_of`)
  — editing a source CSV changes it, so every cached verdict against the
  old data becomes structurally unreachable;
- **configuration fingerprint** (:func:`config_fingerprint` over the full
  frozen ``AggCheckerConfig``, folded with the data-dictionary content) —
  any knob change or dictionary edit invalidates;
- **claim fingerprint** (:func:`repro.core.checker.claim_fingerprint`) —
  the mention, its sentence, and the complete Algorithm-2 keyword context
  (previous sentence, paragraph start, enclosing headlines).

Reuse semantics: a hit returns the verdict exactly as computed in its
original submission. Claims of one document are weakly coupled through
pooled predicate fragments and learned document priors, so after an edit
the unchanged claims keep their verdicts (stable editor feedback) while
the edited claims are evaluated together as one fresh batch; a
non-incremental ``/check`` of the same body gives the canonical jointly
inferred result. A resubmission with *no* changed claims is bit-identical
to the warm path by construction.

The cache is a bounded, thread-safe LRU: the service is a long-running
process and documents churn, so least-recently-used verdicts fall out
once ``max_entries`` is reached.

**Self-checking entries.** Each stored payload carries a CRC32 of its
canonical JSON encoding (:func:`repro.service.protocol.payload_crc`),
re-verified on every hit: a memo whose bytes no longer match what was
stored (bit rot, or any accidental in-place mutation of the shared dict)
is dropped and counted (``corrupted``) — the miss recomputes a correct
verdict, so this tier can serve stale *nothing*, wrong *nothing*. The
shadow auditor additionally *replaces* entries it proved divergent with
the oracle's payload (see :mod:`repro.audit.shadow`).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro import faults
from repro.core.config import AggCheckerConfig
from repro.errors import InjectedFault
from repro.service.protocol import payload_crc

#: Result-cache key: (scope fingerprint, claim fingerprint).
ResultKey = tuple[str, str]


def config_fingerprint(
    config: AggCheckerConfig, dictionary: dict[str, str] | None = None
) -> str:
    """Fingerprint of every pipeline knob plus the data-dictionary content.

    ``AggCheckerConfig`` is a frozen tree of dataclasses whose ``repr``
    deterministically enumerates every field, so hashing the repr covers
    each knob without a hand-maintained field list (a newly added knob is
    automatically part of the key).
    """
    digest = hashlib.sha256()
    digest.update(repr(config).encode("utf-8", "surrogatepass"))
    for column in sorted(dictionary or {}):
        token = f"\x1e{column}\x1f{(dictionary or {})[column]}"
        digest.update(token.encode("utf-8", "surrogatepass"))
    return digest.hexdigest()


def scope_fingerprint(
    database_fp: str,
    config: AggCheckerConfig,
    dictionary: dict[str, str] | None = None,
) -> str:
    """The shared key prefix of one (database, configuration) universe."""
    combined = f"{database_fp}\x1f{config_fingerprint(config, dictionary)}"
    return hashlib.sha256(combined.encode("utf-8")).hexdigest()


@dataclass
class IncrementalStats:
    """Counters of the memoization tier (surfaced by GET /stats)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Degraded (deadline-shaped) payloads refused by :meth:`put`.
    skipped: int = 0
    #: Entries dropped on hit because their payload no longer matched its
    #: stored CRC (served as a miss; the recompute is always correct).
    corrupted: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class IncrementalCache:
    """Thread-safe bounded LRU of per-claim verdict payloads."""

    def __init__(self, max_entries: int = 16384) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.stats = IncrementalStats()
        self._lock = threading.Lock()
        #: key -> (payload, CRC32 of the payload at store time).
        self._entries: "OrderedDict[ResultKey, tuple[dict, int]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: ResultKey) -> dict | None:
        """The cached verdict payload for ``key`` (marks it most recent).

        Every hit is integrity-checked against the CRC taken at store
        time; a mismatch drops the entry and reports a miss, so the
        caller recomputes instead of serving a corrupted verdict.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            payload, crc = entry
            if payload_crc(payload) != crc:
                del self._entries[key]
                self.stats.corrupted += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return payload

    def put(self, key: ResultKey, payload: dict) -> None:
        # Never memoize a degraded verdict: it reflects that request's
        # time budget, not the claim. Caching it would pin a low-quality
        # answer until eviction; recomputing on resubmission gives the
        # claim a fresh chance at the full-quality rung.
        if payload.get("degraded"):
            with self._lock:
                self.stats.skipped += 1
            return
        crc = payload_crc(payload)
        # Fault point: poison the payload *after* its CRC was taken — the
        # next get() must detect the mismatch and degrade to a miss.
        try:
            faults.fire("audit.bitflip", key=f"memo:{key[0]}")
        except InjectedFault:
            payload = dict(payload)
            payload["probability_correct"] = -1.0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (payload, crc)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def remove(self, key: ResultKey) -> bool:
        """Drop one entry (the shadow auditor's repair path)."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
