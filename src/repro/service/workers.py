"""Queue worker pool: leases claim-job groups and verifies them.

Workers are threads, not processes: an :class:`~repro.core.checker.AggChecker`
per database is the expensive shared asset, and the thread pool reuses the
service's warm :class:`~repro.harness.runner.CheckerPool` directly (the
per-entry lock serializes same-database execution exactly as the HTTP
path did). Each worker loops: lease the oldest ready *group* (all fresh
claims of one document — verified as one joint batch so inference stays
bit-identical to the synchronous path), rebuild document and claims from
the journaled job source, execute, ack each job with its verdict payload.
A clean failure nacks the whole group (retry with jittered backoff, then
dead-letter); a worker that dies mid-lease acks nothing — the reaper
expires its leases back to pending and respawns the thread, which is the
at-least-once story the chaos harness exercises.

The execution backend is wrapped in a :class:`CircuitBreaker`: a run of
consecutive failures trips it open, and while open every leased group is
executed under an already-expired deadline so the checker walks its PR-6
degradation ladder (reduced scope -> no execution -> unverifiable) and
the queue keeps draining with explicit degraded verdicts instead of
collapsing into retry loops. A half-open probe closes it again on the
first success.

Fault points (see :mod:`repro.faults`): ``queue.worker`` fires at the top
of each worker loop (a ``raise`` kills the worker before it leases),
``queue.lease`` fires after leasing but *outside* the nack handler (a
``raise`` simulates a worker dying mid-job: no nack, lease-expiry
recovery), and ``queue.exec`` fires inside the handler (a ``raise``
exercises the clean nack -> retry -> dead-letter path).
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.audit.trust import TrustLevel
from repro.deadline import Deadline
from repro.errors import InjectedFault
from repro.faults import fire
from repro.service.protocol import spec_request, verdict_payload
from repro.service.queue import DurableJobQueue, Job
from repro.service.server import VerificationService

if TYPE_CHECKING:
    from repro.audit.shadow import ShadowAuditor

#: Deadline handed to the checker while the breaker is open: already
#: expired at the first stage check, so every claim degrades to an
#: explicit unverifiable verdict in microseconds instead of occupying
#: the backend that is currently failing.
_SHED_BUDGET_SECONDS = 1e-9


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open recovery probe.

    Besides the failure-driven open state, the breaker can be *forced*
    open by an external monitor (the memory-pressure watchdog): while
    forced, every caller sheds regardless of failure counters or
    cooldown, and only :meth:`release_forced` closes it again — recovery
    is the monitor observing pressure subside, not the passage of time.
    """

    def __init__(
        self, failure_threshold: int = 5, cooldown_seconds: float = 30.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self._forced_reason: str | None = None
        self.trips = 0
        self.forced_trips = 0
        self.shed_groups = 0

    def force_open(self, reason: str) -> None:
        """Hold the breaker open until :meth:`release_forced` (idempotent)."""
        with self._lock:
            if self._forced_reason is None:
                self.forced_trips += 1
            self._forced_reason = reason

    def release_forced(self) -> None:
        """Clear a forced-open hold (failure-driven state is untouched)."""
        with self._lock:
            self._forced_reason = None

    def allow(self) -> bool:
        """True when the backend should be tried for real.

        While open, returns False (the caller degrades) until the
        cooldown elapses; then exactly one caller gets a half-open probe.
        """
        with self._lock:
            if self._forced_reason is not None:
                self.shed_groups += 1
                return False
            if self._opened_at is None:
                return True
            if time.monotonic() - self._opened_at < self.cooldown_seconds:
                self.shed_groups += 1
                return False
            if self._probing:
                self.shed_groups += 1
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._probing:
                # The half-open probe failed: reopen for a fresh cooldown.
                self._opened_at = time.monotonic()
                self._probing = False
                self.trips += 1
            elif (
                self._opened_at is None
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = time.monotonic()
                self.trips += 1

    @property
    def state(self) -> str:
        with self._lock:
            if self._forced_reason is not None:
                return "open"
            if self._opened_at is None:
                return "closed"
            if time.monotonic() - self._opened_at >= self.cooldown_seconds:
                return "half-open"
            return "open"

    def stats(self) -> dict:
        with self._lock:
            opened = self._opened_at
            forced = self._forced_reason
        return {
            "state": self.state,
            "failure_threshold": self.failure_threshold,
            "cooldown_seconds": self.cooldown_seconds,
            "trips": self.trips,
            "forced_open": forced,
            "forced_trips": self.forced_trips,
            "shed_groups": self.shed_groups,
            "open_for_seconds": (
                round(time.monotonic() - opened, 3) if opened is not None
                else None
            ),
        }


def _poison_payload(payload: dict) -> dict:
    """The ``audit.bitflip`` verdict action: a wrong-but-plausible payload.

    Flips the status and inverts the probability — exactly the class of
    silent corruption the shadow auditor exists to catch (the payload is
    structurally valid JSON, so no framing check can reject it).
    """
    flipped = dict(payload)
    flipped["status"] = (
        "erroneous" if payload.get("status") == "verified" else "verified"
    )
    probability = payload.get("probability_correct")
    if isinstance(probability, (int, float)):
        flipped["probability_correct"] = round(1.0 - float(probability), 4)
    return flipped


class GroupExecutor:
    """Rebuilds one job group into a joint ``check_claims`` call.

    When a :class:`~repro.audit.shadow.ShadowAuditor` is attached, the
    executor consults its trust ladder before running: ``DISK_BYPASS``
    databases execute with the persistent cube tier detached for the call,
    ``ORACLE_ONLY`` databases execute on the auditor's NAIVE/row-wise
    oracle checker with no caches at all. After acking payloads are
    computed, the group is offered to the auditor for background shadow
    verification.
    """

    def __init__(
        self,
        service: VerificationService,
        breaker: CircuitBreaker | None = None,
        request_timeout: float | None = None,
        auditor: "ShadowAuditor | None" = None,
    ) -> None:
        self.service = service
        self.breaker = breaker
        self.request_timeout = request_timeout
        self.auditor = auditor

    def run(self, jobs: list[Job]) -> dict[str, dict]:
        """Verify one leased group; ``job id -> verdict payload``.

        Raises on failure — the worker nacks the whole group, because a
        group shares one document and one execution.
        """
        source = jobs[0].source
        request = spec_request(
            source,
            article=source.get("article") or "",
            title=source.get("title") or "document",
        )
        fire("queue.exec", jobs[0].group)
        prepared = self.service.resolve(request)
        claims = prepared.claims
        for job in jobs:
            if job.index >= len(claims):
                raise ValueError(
                    f"journaled job {job.id} references claim {job.index} "
                    f"but the rebuilt document has {len(claims)} claims"
                )
        shed = self.breaker is not None and not self.breaker.allow()
        if shed:
            deadline: Deadline | None = Deadline(_SHED_BUDGET_SECONDS)
        elif self.request_timeout is not None:
            deadline = Deadline(self.request_timeout)
        else:
            deadline = None
        trust = TrustLevel.FULL
        if self.auditor is not None and not shed:
            trust = self.auditor.ladder.level(prepared.database_fp)
        selected = [claims[job.index] for job in jobs]
        try:
            if trust is TrustLevel.ORACLE_ONLY:
                # Fully distrusted database: ground-truth execution, no
                # cache tier of any kind (the auditor owns the oracle).
                assert self.auditor is not None
                report = self.auditor.oracle_check(
                    prepared.scope_fp,
                    prepared.database_fp,
                    source,
                    prepared.document,
                    selected,
                    deadline=deadline,
                )
            else:
                with prepared.entry.lock:
                    checker = prepared.entry.checker
                    assert checker is not None
                    engine = checker.engine
                    saved_disk = engine.disk_cache
                    if trust is TrustLevel.DISK_BYPASS:
                        # Suspend the persistent tier for this call: cells
                        # are recomputed (and not read back from disk)
                        # until the database earns its way back up.
                        engine.disk_cache = None
                        self.auditor.disk_bypassed_groups += 1
                    try:
                        report = checker.check_claims(
                            prepared.document, selected, deadline=deadline
                        )
                    finally:
                        engine.disk_cache = saved_disk
        except Exception:
            if self.breaker is not None and not shed:
                self.breaker.record_failure()
            raise
        if self.breaker is not None and not shed:
            self.breaker.record_success()
        raw_payloads = [verdict_payload(v) for v in report.verdicts]
        # Fault point: corrupt one verdict payload after computation but
        # before it is acked/memoized — the deterministic wrong-verdict
        # injection the shadow audit (and the chaos soak's zero-wrong
        # contract) must catch and repair. Only fired when the group has
        # a non-degraded payload the poison can actually land on, so a
        # one-shot fault budget is not consumed by a fully-degraded
        # group that the auditor would (correctly) never sample.
        poison_group = False
        if any(not p.get("degraded") for p in raw_payloads):
            try:
                fire("audit.bitflip", key=f"verdict:{jobs[0].group}")
            except InjectedFault:
                poison_group = True
        payloads: dict[str, dict] = {}
        observed: list = []
        for job, payload in zip(jobs, raw_payloads):
            if poison_group and not payload.get("degraded"):
                payload = _poison_payload(payload)
                poison_group = False
            payloads[job.id] = payload
            observed.append((job.index, job.claim_fp, payload))
            if job.claim_fp and self.service.incremental_enabled:
                self.service.cache.put((job.scope, job.claim_fp), payload)
        if self.auditor is not None:
            self.auditor.observe_group(
                jobs[0].scope, prepared.database_fp, source, observed
            )
        return payloads


class WorkerPool:
    """N worker threads + a reaper that expires leases and respawns dead
    workers.

    Worker death is a first-class event, not a bug: the chaos harness
    kills workers mid-lease on purpose, and production workers can die of
    anything the checker throws through a fault point. The reaper notices
    (thread no longer alive), counts it, re-spawns a replacement, and the
    queue's lease expiry re-delivers whatever the dead worker held.
    """

    def __init__(
        self,
        queue: DurableJobQueue,
        executor: GroupExecutor,
        workers: int = 2,
        visibility_timeout: float = 30.0,
        reap_interval: float = 0.2,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if visibility_timeout <= 0:
            raise ValueError(
                f"visibility_timeout must be > 0, got {visibility_timeout}"
            )
        self.queue = queue
        self.executor = executor
        self.n_workers = workers
        self.visibility_timeout = visibility_timeout
        self.reap_interval = reap_interval
        self._stop = threading.Event()
        self._threads: dict[int, threading.Thread] = {}
        self._reaper: threading.Thread | None = None
        self._lock = threading.Lock()
        self._spawned = 0
        self.worker_deaths = 0
        self.groups_executed = 0
        self.groups_failed = 0

    def start(self) -> None:
        with self._lock:
            for ordinal in range(self.n_workers):
                self._spawn_locked(ordinal)
            self._reaper = threading.Thread(
                target=self._reap_loop, name="queue-reaper", daemon=True
            )
            self._reaper.start()

    def _spawn_locked(self, ordinal: int) -> None:
        self._spawned += 1
        thread = threading.Thread(
            target=self._run_worker,
            args=(ordinal, self._spawned),
            name=f"queue-worker-{ordinal}",
            daemon=True,
        )
        self._threads[ordinal] = thread
        thread.start()

    def _run_worker(self, ordinal: int, incarnation: int) -> None:
        name = f"worker-{ordinal}.{incarnation}"
        try:
            self._worker_loop(name)
        except BaseException:
            # Simulated (or real) worker death: leave leased jobs unacked
            # — the reaper's lease expiry recovers them — and let the
            # reaper respawn this slot.
            with self._lock:
                self.worker_deaths += 1

    def _worker_loop(self, name: str) -> None:
        while not self._stop.is_set():
            fire("queue.worker", name)
            group = self.queue.lease_group(
                name, self.visibility_timeout, timeout=0.2
            )
            if not group:
                continue
            # Outside the try below on purpose: a fault here simulates a
            # worker dying *while holding leases* (no nack, no ack).
            fire("queue.lease", group[0].group)
            try:
                payloads = self.executor.run(group)
            except Exception as error:
                with self._lock:
                    self.groups_failed += 1
                self.queue.nack_group(
                    [job.id for job in group],
                    f"{type(error).__name__}: {error}",
                )
            else:
                with self._lock:
                    self.groups_executed += 1
                for job in group:
                    self.queue.ack(job.id, payloads[job.id])

    def _reap_loop(self) -> None:
        while not self._stop.is_set():
            self.queue.expire_leases()
            with self._lock:
                if not self._stop.is_set():
                    for ordinal, thread in list(self._threads.items()):
                        if not thread.is_alive():
                            self._spawn_locked(ordinal)
            self._stop.wait(self.reap_interval)

    def alive_workers(self) -> int:
        with self._lock:
            return sum(
                1 for thread in self._threads.values() if thread.is_alive()
            )

    def stop(self, timeout: float = 10.0) -> None:
        """Stop after current leases complete (leased jobs finish and ack)."""
        self._stop.set()
        deadline = time.monotonic() + timeout
        with self._lock:
            threads = list(self._threads.values())
            reaper = self._reaper
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        if reaper is not None:
            reaper.join(max(0.0, deadline - time.monotonic()))

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.n_workers,
                "alive": sum(
                    1 for t in self._threads.values() if t.is_alive()
                ),
                "visibility_timeout": self.visibility_timeout,
                "worker_deaths": self.worker_deaths,
                "groups_executed": self.groups_executed,
                "groups_failed": self.groups_failed,
            }
