"""Stdlib HTTP client for the verification service.

Wraps the NDJSON wire protocol in a retrying client that *cooperates*
with the server's backpressure: a ``429`` (rate limited or queue full)
is retried after the server-provided ``Retry-After`` floor **plus**
decorrelated jitter (:meth:`~repro.harness.parallel.RetryPolicy.\
sleep_seconds`), so a shed fleet of clients does not reconverge on the
same instant and re-trip the limiter. Used by the load harness and the
service tests; importable by any deployment that already has Python —
no third-party HTTP stack.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request

from repro.errors import ReproError, StreamInterruptedError
from repro.harness.parallel import RetryPolicy


class ServiceClient:
    """Minimal client for ``POST /check`` + the GET endpoints.

    ``client_id`` becomes the ``X-Client-Id`` header — the identity the
    server's per-client token buckets meter. ``sleep`` and ``rng`` are
    injectable so tests run without wall-clock waits.
    """

    def __init__(
        self,
        base_url: str,
        client_id: str | None = None,
        retry: RetryPolicy | None = None,
        timeout: float = 120.0,
        sleep=time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.retry = retry or RetryPolicy(max_attempts=5)
        self.timeout = timeout
        self._sleep = sleep
        self._rng = rng
        self.retries = 0

    def check(self, payload: dict) -> list[dict]:
        """POST one document; returns the full NDJSON event list.

        Retries ``429`` responses up to ``retry.max_attempts`` times,
        waiting the server's ``Retry-After`` plus jitter between tries;
        exhausting the budget raises :class:`ReproError`. A connection
        lost mid-stream (server crash, socket reset, truncated body)
        raises :class:`StreamInterruptedError` and is retried on the
        same budget — resubmission after a restart is near-free because
        completed verdicts land in the server's incremental tier.
        """
        body = json.dumps(payload).encode("utf-8")
        previous = 0.0
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                return self._post_check(body)
            except StreamInterruptedError:
                if attempt >= self.retry.max_attempts:
                    raise
                self.retries += 1
                previous = self.retry.sleep_seconds(
                    attempt, previous=previous or None, rng=self._rng
                )
                self._sleep(previous)
            except urllib.error.HTTPError as error:
                if error.code != 429:
                    detail = _error_detail(error)
                    raise ReproError(
                        f"POST /check failed with {error.code}: {detail}"
                    ) from None
                retry_after = _retry_after_seconds(error)
                error.close()
                if attempt >= self.retry.max_attempts:
                    raise ReproError(
                        f"still shed with 429 after {attempt} attempt(s); "
                        "giving up"
                    ) from None
                self.retries += 1
                previous = self.retry.sleep_seconds(
                    attempt, previous=previous or None, rng=self._rng
                )
                # Server floor first (token refill / queue drain time),
                # jitter on top so retriers spread out.
                self._sleep(retry_after + previous)
        raise AssertionError("unreachable")  # pragma: no cover

    def _post_check(self, body: bytes) -> list[dict]:
        headers = {"Content-Type": "application/json"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        request = urllib.request.Request(
            f"{self.base_url}/check", data=body, headers=headers
        )
        events: list[dict] = []
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except ValueError as error:
                        # A torn frame: the connection died mid-line.
                        raise StreamInterruptedError(
                            "response stream ended inside an NDJSON frame "
                            f"after {len(events)} event(s)",
                            events,
                        ) from error
        except urllib.error.HTTPError:
            raise  # handled by check(); not a transport failure
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            ConnectionError,
            TimeoutError,
            OSError,
        ) as error:
            raise StreamInterruptedError(
                f"connection lost after {len(events)} event(s): {error}",
                events,
            ) from error
        if not _is_complete(events):
            # HTTP/1.0 close-delimited bodies make a server crash look
            # like a clean EOF — completeness is judged by content.
            raise StreamInterruptedError(
                f"response stream truncated after {len(events)} event(s): "
                "no terminal summary event",
                events,
            )
        return events

    def _get(self, path: str) -> dict:
        with urllib.request.urlopen(
            f"{self.base_url}{path}", timeout=self.timeout
        ) as response:
            return json.loads(response.read())

    def health(self) -> dict:
        return self._get("/health")

    def stats(self) -> dict:
        return self._get("/stats")

    def deadletter(self) -> dict:
        return self._get("/deadletter")


def _is_complete(events: list[dict]) -> bool:
    """A stream is complete iff its last event is terminal.

    Terminal events: the ``summary`` (normal completion) or an
    index-less ``error`` (request-level abort — the server said so
    explicitly, nothing more was coming).
    """
    if not events:
        return False
    last = events[-1]
    if last.get("event") == "summary":
        return True
    return last.get("event") == "error" and "index" not in last


def _retry_after_seconds(error: urllib.error.HTTPError) -> float:
    raw = error.headers.get("Retry-After") if error.headers else None
    try:
        return max(0.0, float(raw))
    except (TypeError, ValueError):
        return 1.0


def _error_detail(error: urllib.error.HTTPError) -> str:
    try:
        payload = json.loads(error.read())
        return str(payload.get("error", payload))
    except Exception:
        return error.reason or "unknown error"
    finally:
        error.close()
