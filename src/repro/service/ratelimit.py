"""Per-client token-bucket rate limiting for the service front end.

The PR-6 global in-flight gate treated all clients as one: a single
aggressive client could starve everyone behind a shared 429. The queue
front end limits *per client* instead (``X-Client-Id`` header, falling
back to the peer address): each client owns a token bucket refilled at
``rate`` requests/second up to ``burst`` tokens, so short spikes pass and
sustained floods are shed with a precise ``Retry-After`` — the seconds
until that client's next token, not a global guess.

Buckets live in a bounded LRU (an open service sees unbounded client-id
cardinality; the oldest idle bucket is evicted past ``max_clients``,
which at worst briefly *refills* a long-idle client — never blocks a new
one). Thread-safe: admission runs on asyncio's default executor threads.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict


class TokenBucket:
    """One client's budget: ``burst`` tokens refilled at ``rate``/second."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def take(self, now: float) -> bool:
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds until one token is available (0 when already spendable)."""
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class ClientRateLimiter:
    """Bounded map of per-client token buckets.

    ``rate <= 0`` disables limiting entirely (every ``allow`` passes) —
    the CLI default, so small deployments opt in rather than trip over a
    surprise 429.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        max_clients: int = 4096,
    ) -> None:
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = rate
        self.burst = burst if burst is not None else max(1.0, 2.0 * rate)
        if rate > 0 and self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        self.max_clients = max_clients
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self.allowed = 0
        self.limited = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, client: str) -> tuple[bool, float]:
        """``(admitted, retry_after_seconds)`` for one request by ``client``."""
        if not self.enabled:
            return True, 0.0
        now = time.monotonic()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            if bucket.take(now):
                self.allowed += 1
                return True, 0.0
            self.limited += 1
            return False, bucket.retry_after(now)

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate_per_sec": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "allowed": self.allowed,
                "limited": self.limited,
            }
