"""Verification service layer: the AggChecker as a resident process.

``python -m repro serve`` exposes the verification pipeline over HTTP
with a warm checker pool, streamed NDJSON verdicts, an incremental
re-check tier, and a durable queue-backed core (see ARCHITECTURE.md,
"Service layer" and "Queue & delivery semantics")::

    from repro.service import CheckRequest, VerificationService

    service = VerificationService()
    events = service.check(CheckRequest(
        csv_paths=("data.csv",), article="Four of the five ...",
    ))
"""

from repro.service.aio import (
    AsyncVerificationServer,
    QueueService,
    create_async_server,
)
from repro.service.client import ServiceClient
from repro.service.incremental import (
    IncrementalCache,
    IncrementalStats,
    config_fingerprint,
    scope_fingerprint,
)
from repro.service.protocol import (
    CheckRequest,
    ProtocolError,
    encode_event,
    parse_article,
    verdict_payload,
)
from repro.service.queue import DurableJobQueue
from repro.service.ratelimit import ClientRateLimiter
from repro.service.server import (
    VerificationServer,
    VerificationService,
    create_server,
)
from repro.service.workers import CircuitBreaker, WorkerPool

__all__ = [
    "AsyncVerificationServer",
    "CheckRequest",
    "CircuitBreaker",
    "ClientRateLimiter",
    "DurableJobQueue",
    "IncrementalCache",
    "IncrementalStats",
    "ProtocolError",
    "QueueService",
    "ServiceClient",
    "VerificationServer",
    "VerificationService",
    "WorkerPool",
    "config_fingerprint",
    "create_async_server",
    "create_server",
    "encode_event",
    "parse_article",
    "scope_fingerprint",
    "verdict_payload",
]
