"""Verification service layer: the AggChecker as a resident process.

``python -m repro serve`` exposes the verification pipeline over HTTP
with a warm checker pool, streamed NDJSON verdicts, and an incremental
re-check tier (see ARCHITECTURE.md, "Service layer")::

    from repro.service import CheckRequest, VerificationService

    service = VerificationService()
    events = service.check(CheckRequest(
        csv_paths=("data.csv",), article="Four of the five ...",
    ))
"""

from repro.service.incremental import (
    IncrementalCache,
    IncrementalStats,
    config_fingerprint,
    scope_fingerprint,
)
from repro.service.protocol import (
    CheckRequest,
    ProtocolError,
    encode_event,
    parse_article,
    verdict_payload,
)
from repro.service.server import (
    VerificationServer,
    VerificationService,
    create_server,
)

__all__ = [
    "CheckRequest",
    "IncrementalCache",
    "IncrementalStats",
    "ProtocolError",
    "VerificationServer",
    "VerificationService",
    "config_fingerprint",
    "create_server",
    "encode_event",
    "parse_article",
    "scope_fingerprint",
    "verdict_payload",
]
