"""Durable at-least-once job queue: the service's unit of admitted work.

``POST /check`` no longer pins a thread per in-flight document: admission
decomposes the document into one *job per claim* (grouped so a document's
fresh claims still verify as one joint batch) and enqueues them here.
Workers lease jobs under a visibility timeout, ack with the verdict
payload on completion, and nack (or simply die) on failure; unacked
leases expire back to pending, retries back off with decorrelated jitter
(:class:`~repro.harness.parallel.RetryPolicy`), and jobs that exhaust
their attempts are quarantined in a dead-letter queue surfaced via
``GET /deadletter`` instead of poisoning the pool forever.

**Delivery semantics.** At-least-once execution, exactly-once ack: a job
may *run* more than once (a worker that dies mid-lease leaves no ack, so
the lease expires and the job is re-delivered — verdicts are
deterministic, so re-execution is safe), but only the first ``ack`` wins;
later acks for the same job are counted (``duplicate_acks``) and
dropped, so no subscriber ever sees two results for one job. Subscriber
notification happens under the queue lock in ack order, so a client's
event stream can never observe acks out of order.

**Durability.** Every state change that must survive a crash is one
JSON line in an append-only journal (``queue.journal`` in the queue
directory): ``put`` when a job is admitted, ``ack`` with its payload,
``dead`` with its last error. Leases are deliberately *not* journaled —
they are volatile by definition, and a restarted process must treat
every journaled-but-unacked job as pending again (the at-least-once
contract). Every record carries a CRC32 (``crc``) over its canonical
encoding: replay distinguishes a truncated final line (crash mid-write —
stop, everything after is unreachable) from bit corruption *inside* an
intact line (CRC mismatch — quarantine that record, keep replaying,
because later appends were independent writes). Both are counted in
``corrupt_records`` and surfaced through ``stats()``. Compaction rewrites the journal as a fresh segment via the
write-temp-then-``os.replace`` recipe of :mod:`repro.harness.checkpoint`
once completed records dominate, so the journal stays O(live jobs), not
O(history). ``directory=None`` runs the same queue fully in memory
(tests, ephemeral servers).

**Backpressure.** The queue is bounded: :meth:`submit` raises
:class:`~repro.errors.QueueFullError` carrying a depth-aware
``retry_after_seconds`` estimate once ``capacity`` live (pending +
leased) jobs exist, which the HTTP front end converts into
``429`` + ``Retry-After``.

**Idempotency.** Jobs carry an idempotency key (the service uses
``scope fingerprint + claim fingerprint`` — the exact identity the
incremental tier memoizes under). Submitting a key that is already
pending or leased attaches the new subscriber to the existing job
(one execution, fan-out delivery); a key that already acked returns its
payload immediately; only dead or unknown keys create new jobs. The
``reusable_result`` predicate narrows ack-reuse: the service passes one
that refuses *degraded* payloads, so a verdict produced under an
exhausted time/space budget or an open breaker is re-executed on
resubmission rather than pinned forever by queue-level idempotency
(mirroring the incremental tier, which never memoizes degraded
verdicts).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import faults
from repro.errors import QueueFullError, ReproError
from repro.harness.parallel import RetryPolicy

#: Journal format version (bump when the record layout changes).
#: v2: every record carries a ``crc`` checksum field.
JOURNAL_VERSION = 2
#: Journal file name inside the queue directory.
JOURNAL_NAME = "queue.journal"


def _record_crc(record: dict) -> int:
    """CRC32 of a record's canonical encoding (without its ``crc`` field).

    Canonical = sorted keys, no whitespace: the checksum must not depend
    on the key order the writer happened to use.
    """
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(body.encode("utf-8"))


def _encode_record(record: dict) -> str:
    """One journal line: the record plus its ``crc``, newline-terminated."""
    stamped = dict(record)
    stamped["crc"] = _record_crc(record)
    return json.dumps(stamped, separators=(",", ":")) + "\n"


def scan_journal(path: str | Path) -> dict:
    """Read-only structural scrub of one journal file (``repro scrub``).

    Replicates replay's corruption taxonomy — truncated tail stops the
    scan, an intact line with a bad CRC is counted and skipped — without
    constructing a queue (which would replay, compact, and *rewrite* the
    file; a scrubber must never mutate the state it is auditing).
    """
    report = {
        "path": str(path),
        "present": True,
        "records": 0,
        "corrupt": 0,
        "truncated": False,
    }
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        report["present"] = False
        return report
    for line in raw.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            report["corrupt"] += 1
            report["truncated"] = True
            break
        if not isinstance(record, dict) or record.pop(
            "crc", None
        ) != _record_crc(record):
            report["corrupt"] += 1
            continue
        report["records"] += 1
    return report

# Job lifecycle states.
PENDING = "pending"
LEASED = "leased"
ACKED = "acked"
DEAD = "dead"

#: Subscriber callback: ``(kind, job, payload)`` where kind is one of
#: ``"ack"`` (payload = verdict), ``"dead"`` (payload = error string), or
#: ``"drained"`` (payload = None; the job was journaled for a restart).
Subscriber = Callable[[str, "Job", object], None]


@dataclass
class Job:
    """One unit of admitted work: a single claim of one document."""

    id: str
    #: Idempotency key (dedupe identity); unique per job when dedupe is off.
    key: str
    #: Joint-execution batch: jobs sharing a group are leased and verified
    #: together so document-level inference stays identical to the
    #: synchronous path.
    group: str
    #: Claim ordinal within the rebuilt document.
    index: int
    #: Checker scope fingerprint (database content + config + dictionary).
    scope: str
    #: JSON-serializable material to rebuild the database, document, and
    #: claim after a restart (CSV paths / inline tables / article text).
    source: dict
    #: Claim fingerprint for the incremental tier ("" = do not memoize).
    claim_fp: str = ""
    attempts: int = 0
    state: str = PENDING
    #: Monotonic timestamp before which the job may not be leased (retry
    #: backoff). Never journaled: restarts retry immediately.
    not_before: float = 0.0
    lease_deadline: float | None = None
    worker: str | None = None
    result: dict | None = None
    error: str | None = None
    #: Admission order; ready jobs are leased lowest-seq-first.
    seq: int = 0
    #: Previous backoff sleep (decorrelated jitter state).
    last_backoff: float = 0.0
    subscribers: list[Subscriber] = field(default_factory=list)

    def snapshot(self) -> dict:
        """The public JSON shape (health/stats/deadletter endpoints)."""
        return {
            "id": self.id,
            "key": self.key,
            "group": self.group,
            "index": self.index,
            "scope": self.scope,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
            "title": self.source.get("title"),
        }


class DurableJobQueue:
    """Bounded, crash-survivable FIFO of claim jobs with lease/ack/DLQ."""

    def __init__(
        self,
        directory: str | Path | None = None,
        capacity: int = 1024,
        retry: RetryPolicy | None = None,
        compact_min_records: int = 1024,
        fsync: bool = False,
        reusable_result: Callable[[dict], bool] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.retry = retry or RetryPolicy()
        self.compact_min_records = compact_min_records
        self.fsync = fsync
        self.reusable_result = reusable_result
        self.directory = Path(directory) if directory is not None else None
        self._cond = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._by_key: dict[str, str] = {}
        self._seq = 0
        self._ack_seq = 0
        self._journal = None
        self._journal_records = 0
        self._draining = False
        self._closed = False
        self.started = time.monotonic()
        # Counters (all monotonic; read via stats()).
        self.enqueued = 0
        self.acked = 0
        self.duplicate_acks = 0
        self.deduped = 0
        self.retried = 0
        self.expired_leases = 0
        self.deadlettered = 0
        self.rejected = 0
        self.resumed = 0
        self.corrupt_records = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._replay()
            self._open_journal()

    # ------------------------------------------------------------------
    # Journal

    @property
    def journal_path(self) -> Path:
        assert self.directory is not None
        return self.directory / JOURNAL_NAME

    def _replay(self) -> None:
        """Rebuild state from the journal; unacked jobs become pending."""
        try:
            raw = self.journal_path.read_bytes()
        except FileNotFoundError:
            return
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                # A crash mid-append leaves one truncated tail line;
                # anything after it is unreachable by construction
                # (appends are sequential), so stop replaying here.
                self.corrupt_records += 1
                break
            if not isinstance(record, dict) or record.pop(
                "crc", None
            ) != _record_crc(record):
                # The line parses but its checksum does not match: bit
                # corruption within an intact record (or a pre-v2 record
                # with no checksum). Unlike truncation this says nothing
                # about later lines — they were independent appends — so
                # quarantine this record and keep replaying.
                self.corrupt_records += 1
                continue
            self._journal_records += 1
            self._apply(record)
        resumed = 0
        for job in self._jobs.values():
            if job.state == PENDING:
                resumed += 1
        self.resumed = resumed

    def _apply(self, record: dict) -> None:
        op = record.get("op")
        if op == "put":
            data = record.get("job") or {}
            try:
                job = Job(
                    id=str(data["id"]),
                    key=str(data["key"]),
                    group=str(data["group"]),
                    index=int(data["index"]),
                    scope=str(data.get("scope", "")),
                    source=dict(data.get("source") or {}),
                    claim_fp=str(data.get("claim_fp", "")),
                    attempts=int(data.get("attempts", 0)),
                )
            except (KeyError, TypeError, ValueError):
                self.corrupt_records += 1
                return
            self._seq += 1
            job.seq = self._seq
            self._jobs[job.id] = job
            self._by_key[job.key] = job.id
        elif op == "ack":
            job = self._jobs.get(str(record.get("id")))
            if job is not None and job.state != ACKED:
                job.state = ACKED
                job.result = record.get("payload")
        elif op == "dead":
            job = self._jobs.get(str(record.get("id")))
            if job is not None:
                job.state = DEAD
                job.error = str(record.get("error", ""))

    def _open_journal(self) -> None:
        self._journal = open(self.journal_path, "a", encoding="utf-8")
        if self._journal_records and self._should_compact():
            self._compact_locked()

    def _append(self, record: dict) -> None:
        if self._journal is None:
            return
        self._journal.write(_encode_record(record))
        self._journal.flush()
        if self.fsync:
            os.fsync(self._journal.fileno())
        self._journal_records += 1
        # Fault point: flip one byte of the journal after the append —
        # replay's CRC (and the offline scrubber) must catch it.
        faults.fire("audit.bitflip", key="journal", payload=self.journal_path)

    def _should_compact(self) -> bool:
        live = sum(
            1 for job in self._jobs.values() if job.state in (PENDING, LEASED)
        )
        return (
            self._journal_records >= self.compact_min_records
            and self._journal_records > 4 * max(live, 1)
        )

    def _compact_locked(self) -> None:
        """Rewrite the journal as one fresh segment (atomic ``os.replace``).

        Completed (acked) jobs are dropped entirely — job and ack records
        together — so they can never be re-delivered from a journal that
        no longer mentions them. Pending/leased jobs are re-put (leases
        are volatile) and dead jobs keep their tombstones so the
        dead-letter queue survives restarts.
        """
        if self.directory is None:
            return
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=JOURNAL_NAME, suffix=".tmp"
        )
        records = 0
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for job in sorted(self._jobs.values(), key=lambda j: j.seq):
                    if job.state == ACKED:
                        continue
                    handle.write(_encode_record(self._put_record(job)))
                    records += 1
                    if job.state == DEAD:
                        handle.write(
                            _encode_record(
                                {"op": "dead", "id": job.id, "error": job.error}
                            )
                        )
                        records += 1
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.journal_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # Acked jobs are now unjournaled; forget the completed ones that
        # nothing can reference anymore to keep memory O(live).
        for job_id in [
            job.id for job in self._jobs.values() if job.state == ACKED
        ]:
            job = self._jobs.pop(job_id)
            if self._by_key.get(job.key) == job_id:
                del self._by_key[job.key]
        self._journal_records = records
        self._journal = open(self.journal_path, "a", encoding="utf-8")

    @staticmethod
    def _put_record(job: Job) -> dict:
        return {
            "op": "put",
            "v": JOURNAL_VERSION,
            "job": {
                "id": job.id,
                "key": job.key,
                "group": job.group,
                "index": job.index,
                "scope": job.scope,
                "source": job.source,
                "claim_fp": job.claim_fp,
            },
        }

    # ------------------------------------------------------------------
    # Admission

    def depth(self) -> int:
        """Live (pending + leased) jobs — the backpressure signal."""
        with self._cond:
            return self._live_locked()

    def _live_locked(self) -> int:
        return sum(
            1 for job in self._jobs.values() if job.state in (PENDING, LEASED)
        )

    def retry_after_seconds(self) -> float:
        """Depth-aware 429 hint: roughly how long until capacity frees up."""
        with self._cond:
            live = self._live_locked()
        elapsed = max(time.monotonic() - self.started, 1e-6)
        rate = self.acked / elapsed
        if rate <= 0:
            return float(min(30, max(1, live)))
        return float(min(60.0, max(1.0, live / rate)))

    def submit(
        self,
        key: str,
        group: str,
        index: int,
        scope: str,
        source: dict,
        claim_fp: str = "",
        subscriber: Subscriber | None = None,
    ) -> tuple[Job, dict | None]:
        """Admit one claim job (or dedupe onto an existing one).

        Returns ``(job, payload)``: ``payload`` is non-None when the key
        already completed — the caller emits the result immediately and no
        subscriber is registered. Raises :class:`QueueFullError` when the
        queue is at capacity and the key does not dedupe.
        """
        with self._cond:
            if self._closed or self._draining:
                raise ReproError("queue is draining; resubmit after restart")
            if self._live_locked() >= self.capacity:
                if self._dedupe_target_locked(key) is None:
                    self.rejected += 1
                    raise QueueFullError(
                        self.capacity, self.retry_after_seconds()
                    )
            return self._submit_locked(
                key, group, index, scope, source, claim_fp, subscriber
            )

    def _submit_locked(
        self,
        key: str,
        group: str,
        index: int,
        scope: str,
        source: dict,
        claim_fp: str = "",
        subscriber: Subscriber | None = None,
    ) -> tuple[Job, dict | None]:
        existing = self._dedupe_target_locked(key)
        if existing is not None:
            if existing.state == ACKED:
                self.deduped += 1
                return existing, existing.result
            self.deduped += 1
            if subscriber is not None:
                existing.subscribers.append(subscriber)
            return existing, None
        # DEAD (tombstone keeps the history) or a non-reusable ack
        # (degraded payload): fall through — the resubmission revives the
        # work as a fresh job with a fresh attempt budget.
        self._seq += 1
        job = Job(
            id=uuid.uuid4().hex,
            key=key,
            group=group,
            index=index,
            scope=scope,
            source=source,
            claim_fp=claim_fp,
            seq=self._seq,
        )
        if subscriber is not None:
            job.subscribers.append(subscriber)
        self._jobs[job.id] = job
        self._by_key[key] = job.id
        self._append(self._put_record(job))
        self.enqueued += 1
        self._cond.notify()
        return job, None

    def _dedupe_target_locked(self, key: str) -> Job | None:
        """The existing job a submission of ``key`` would attach to.

        None when the key must create a fresh job: unknown, dead, or
        acked with a payload the ``reusable_result`` predicate refuses
        (a degraded verdict must not be pinned by idempotency).
        """
        job_id = self._by_key.get(key)
        if job_id is None:
            return None
        job = self._jobs[job_id]
        if job.state == DEAD:
            return None
        if (
            job.state == ACKED
            and self.reusable_result is not None
            and not self.reusable_result(job.result or {})
        ):
            return None
        return job

    def submit_group(
        self, entries: list[dict]
    ) -> list[tuple[Job, dict | None]]:
        """Admit a whole job group atomically (all-or-nothing).

        ``entries`` are :meth:`submit` keyword dicts sharing one group id.
        Holding the lock across the batch matters for *bit-identity*: a
        worker must never lease a partially-admitted group, or the
        document's fresh claims would verify as two smaller joint batches
        whose pooled priors differ from the synchronous path. The capacity
        check covers the whole batch up front, so either every entry is
        admitted (or deduped) or none is and :class:`QueueFullError`
        carries the retry hint.
        """
        with self._cond:
            if self._closed or self._draining:
                raise ReproError("queue is draining; resubmit after restart")
            fresh = 0
            keys_seen: set[str] = set()
            for entry in entries:
                key = entry["key"]
                dedupes = (
                    self._dedupe_target_locked(key) is not None
                    or key in keys_seen
                )
                if not dedupes:
                    fresh += 1
                    keys_seen.add(key)
            if self._live_locked() + fresh > self.capacity:
                self.rejected += 1
                raise QueueFullError(
                    self.capacity, self.retry_after_seconds()
                )
            return [self._submit_locked(**entry) for entry in entries]

    # ------------------------------------------------------------------
    # Lease / ack / nack

    def lease_group(
        self,
        worker: str,
        visibility_timeout: float,
        timeout: float | None = None,
    ) -> list[Job]:
        """Lease the oldest ready job *and every ready job in its group*.

        Jobs of one group are the fresh claims of one document: verifying
        them as one batch keeps joint inference identical to the
        synchronous path. Blocks up to ``timeout`` seconds for work
        (None = do not block); returns ``[]`` when none is ready.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while True:
                if self._closed or self._draining:
                    return []
                now = time.monotonic()
                ready = [
                    job
                    for job in self._jobs.values()
                    if job.state == PENDING and job.not_before <= now
                ]
                if ready:
                    head = min(ready, key=lambda job: job.seq)
                    batch = sorted(
                        (job for job in ready if job.group == head.group),
                        key=lambda job: job.index,
                    )
                    lease_until = now + visibility_timeout
                    for job in batch:
                        job.state = LEASED
                        job.attempts += 1
                        job.worker = worker
                        job.lease_deadline = lease_until
                    return batch
                if deadline is None:
                    return []
                remaining = deadline - now
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)

    def ack(self, job_id: str, payload: dict) -> bool:
        """Complete one job with its verdict payload. First ack wins.

        A late ack (the lease expired and the job was re-delivered, or it
        already dead-lettered) is counted and dropped — subscribers never
        see a duplicate result.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state in (ACKED, DEAD):
                self.duplicate_acks += 1
                return False
            self._append({"op": "ack", "id": job.id, "payload": payload})
            job.state = ACKED
            job.result = payload
            job.worker = None
            job.lease_deadline = None
            self.acked += 1
            self._ack_seq += 1
            self._notify_locked(job, "ack", payload)
            if self._should_compact():
                self._compact_locked()
            self._cond.notify_all()
            return True

    def nack(self, job_id: str, error: str) -> None:
        """Fail one attempt: schedule a retry or dead-letter the job."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state in (ACKED, DEAD):
                return
            self._fail_locked(job, error)
            self._cond.notify_all()

    def nack_group(self, job_ids: list[str], error: str) -> None:
        with self._cond:
            jobs = [
                job
                for job in (self._jobs.get(job_id) for job_id in job_ids)
                if job is not None and job.state not in (ACKED, DEAD)
            ]
            self._fail_group_locked(jobs, error)
            self._cond.notify_all()

    def _fail_group_locked(self, jobs: list[Job], error: str) -> None:
        """Fail a set of group-mates with ONE shared backoff.

        Members of a group must become ready at the same instant — if each
        drew its own jittered backoff, the next lease would catch only the
        earliest and split the joint batch (breaking bit-identity on the
        retry path).
        """
        if not jobs:
            return
        previous = max(job.last_backoff for job in jobs) or None
        backoff = self.retry.sleep_seconds(
            max(job.attempts for job in jobs), previous=previous
        )
        for job in jobs:
            self._fail_locked(job, error, backoff=backoff)

    def _fail_locked(
        self, job: Job, error: str, backoff: float | None = None
    ) -> None:
        job.error = error
        job.worker = None
        job.lease_deadline = None
        if job.attempts >= self.retry.max_attempts:
            self._append({"op": "dead", "id": job.id, "error": error})
            job.state = DEAD
            self.deadlettered += 1
            self._notify_locked(job, "dead", error)
            return
        job.state = PENDING
        job.last_backoff = (
            backoff
            if backoff is not None
            else self.retry.sleep_seconds(
                job.attempts, previous=job.last_backoff or None
            )
        )
        job.not_before = time.monotonic() + job.last_backoff
        self.retried += 1

    def expire_leases(self) -> int:
        """Return expired leases to pending (the worker died mid-job)."""
        expired = 0
        with self._cond:
            now = time.monotonic()
            by_group: dict[str, list[Job]] = {}
            for job in self._jobs.values():
                if (
                    job.state == LEASED
                    and job.lease_deadline is not None
                    and job.lease_deadline <= now
                ):
                    self.expired_leases += 1
                    expired += 1
                    by_group.setdefault(job.group, []).append(job)
            for group_jobs in by_group.values():
                worker = group_jobs[0].worker
                attempts = max(job.attempts for job in group_jobs)
                self._fail_group_locked(
                    group_jobs,
                    f"lease expired after {attempts} attempt(s) "
                    f"(worker {worker!r} presumed dead)",
                )
            if expired:
                self._cond.notify_all()
        return expired

    def _notify_locked(self, job: Job, kind: str, payload: object) -> None:
        # Under the queue lock on purpose: acks notify in ack order, so a
        # subscriber's stream can never interleave out of order. Callbacks
        # must therefore be cheap and non-blocking
        # (loop.call_soon_threadsafe in the asyncio front end).
        for subscriber in job.subscribers:
            try:
                subscriber(kind, job, payload)
            except Exception:
                pass
        if kind in ("ack", "dead"):
            job.subscribers.clear()

    # ------------------------------------------------------------------
    # Introspection / shutdown

    def job(self, job_id: str) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def pending_jobs(self) -> list[Job]:
        with self._cond:
            return sorted(
                (j for j in self._jobs.values() if j.state == PENDING),
                key=lambda job: job.seq,
            )

    def deadletter(self) -> list[dict]:
        """The quarantine, oldest first (``GET /deadletter``)."""
        with self._cond:
            return [
                job.snapshot()
                for job in sorted(
                    (j for j in self._jobs.values() if j.state == DEAD),
                    key=lambda job: job.seq,
                )
            ]

    def stats(self) -> dict:
        with self._cond:
            states = {PENDING: 0, LEASED: 0, ACKED: 0, DEAD: 0}
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "capacity": self.capacity,
                "depth": states[PENDING] + states[LEASED],
                "pending": states[PENDING],
                "leased": states[LEASED],
                "completed": states[ACKED],
                "deadletter": states[DEAD],
                "enqueued": self.enqueued,
                "acked": self.acked,
                "duplicate_acks": self.duplicate_acks,
                "deduped": self.deduped,
                "retried": self.retried,
                "expired_leases": self.expired_leases,
                "deadlettered": self.deadlettered,
                "rejected": self.rejected,
                "resumed": self.resumed,
                "corrupt_records": self.corrupt_records,
                "journal_records": self._journal_records,
                "durable": self.directory is not None,
            }

    def drain(self, timeout: float = 30.0) -> int:
        """Graceful shutdown: stop admitting, let leased jobs finish.

        Blocks until no job is leased (or ``timeout``); pending jobs stay
        journaled for the next process and their subscribers are told
        (``"drained"``) so in-flight streams can close cleanly. Returns
        the number of jobs left journaled.
        """
        with self._cond:
            self._draining = True
            self._cond.notify_all()
            deadline = time.monotonic() + timeout
            while any(
                job.state == LEASED for job in self._jobs.values()
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            pending = [
                job for job in self._jobs.values() if job.state == PENDING
            ]
            for job in pending:
                self._notify_locked(job, "drained", None)
                job.subscribers.clear()
            return len(pending)

    def close(self) -> None:
        """Compact and close the journal (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._draining = True
            self._cond.notify_all()
            if self.directory is not None:
                self._compact_locked()
            if self._journal is not None:
                self._journal.close()
                self._journal = None
