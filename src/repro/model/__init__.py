"""Probabilistic claim-to-query model (paper Section 5).

Each claim is mapped to a probability distribution over candidate Simple
Aggregate Queries. The distribution combines three signals (Eq. 2-5):

- keyword-based relevance scores per query fragment (``Sc``),
- query evaluation results compared against the claimed value (``Ec``),
- document-level priors over query characteristics (``Θ``), learned by a
  hard expectation-maximization loop (Algorithm 3).
"""

from repro.model.candidates import CandidateConfig, CandidateSpace, build_candidates
from repro.model.em import EmConfig, InferenceResult, query_and_learn
from repro.model.priors import Priors
from repro.model.probability import ClaimDistribution, compute_distribution

__all__ = [
    "CandidateConfig",
    "CandidateSpace",
    "ClaimDistribution",
    "EmConfig",
    "InferenceResult",
    "Priors",
    "build_candidates",
    "compute_distribution",
    "query_and_learn",
]
