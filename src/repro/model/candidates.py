"""Candidate query spaces per claim (paper Section 4.4).

Combining retrieved fragments "in all possible ways (within the boundaries
of the query model)" yields the claim-specific candidate space: one
aggregation function x one aggregation column x a set of equality
predicates on distinct columns. Conditional-probability candidates
additionally choose which predicate is the condition.

The space is stored factorized (function x column x predicate-subset index
arrays) so the EM loop can re-score tens of thousands of candidates per
claim with a handful of numpy operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.db.aggregates import AggregateFunction
from repro.db.query import AggregateSpec, SimpleAggregateQuery
from repro.fragments.fragments import (
    ColumnFragment,
    FunctionFragment,
    PredicateFragment,
)
from repro.fragments.indexer import RelevanceScores
from repro.text.claims import Claim

#: Floor added to keyword scores so unretrieved-but-in-scope fragments
#: (e.g. the ``*`` column) keep non-zero probability.
SCORE_FLOOR_SHARE = 0.05


@dataclass(frozen=True)
class CandidateConfig:
    """Scope of the candidate space.

    ``max_predicates`` is the paper's ``m`` (at most m predicates per
    claim; m=3 in the paper, default 2 here matching the corpus where no
    claim uses three — Figure 9c). ``max_subsets`` caps the number of
    predicate combinations per claim (cost control, see PickScope).
    """

    max_predicates: int = 2
    max_subsets: int = 600
    include_conditional_probability: bool = True


@dataclass
class CandidateSpace:
    """Factorized candidate space for one claim."""

    claim: Claim
    functions: list[FunctionFragment]
    columns: list[ColumnFragment]
    subsets: list[tuple[PredicateFragment, ...]]
    #: log keyword probability per function / column / subset
    fn_keyword_log: np.ndarray
    col_keyword_log: np.ndarray
    subset_keyword_log: np.ndarray
    #: flattened candidates
    queries: list[SimpleAggregateQuery] = field(default_factory=list)
    fn_index: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    col_index: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    subset_index: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    #: lazily built query -> position map (see :meth:`position_index`)
    _positions: dict[SimpleAggregateQuery, int] | None = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.queries)

    def position_index(self) -> dict[SimpleAggregateQuery, int]:
        """Candidate position by query, built once per space.

        Lets result consumers (e.g. ``EvaluationOutcome.from_results``)
        index an evaluated subset into the space without a linear scan per
        query; built lazily because ``queries`` is materialized after
        construction.
        """
        if self._positions is None or len(self._positions) != len(self.queries):
            self._positions = {
                query: index for index, query in enumerate(self.queries)
            }
        return self._positions


def build_candidates(
    claim: Claim,
    scores: RelevanceScores,
    config: CandidateConfig | None = None,
) -> CandidateSpace:
    """Construct the candidate space for one claim from its relevance
    scores."""
    config = config or CandidateConfig()

    functions = list(scores.functions)
    fn_keyword_log = _normalized_log_scores(
        [scores.functions[f] for f in functions]
    )
    columns = list(scores.columns)
    col_keyword_log = _normalized_log_scores(
        [scores.columns[c] for c in columns]
    )

    subsets, subset_keyword_log = _predicate_subsets(scores, config)

    space = CandidateSpace(
        claim=claim,
        functions=functions,
        columns=columns,
        subsets=subsets,
        fn_keyword_log=fn_keyword_log,
        col_keyword_log=col_keyword_log,
        subset_keyword_log=subset_keyword_log,
    )
    _materialize_queries(space, config)
    return space


def _normalized_log_scores(raw: list[float]) -> np.ndarray:
    """Scores -> log probabilities with a floor share for weak entries
    (paper: Pr(S|Q) proportional to the fragment's relevance score)."""
    if not raw:
        return np.zeros(0)
    array = np.asarray(raw, dtype=float)
    array = np.maximum(array, 0.0)
    peak = array.max()
    floor = peak * SCORE_FLOOR_SHARE if peak > 0 else 1.0
    array = array + floor
    return np.log(array / array.sum())


def _predicate_subsets(
    scores: RelevanceScores, config: CandidateConfig
) -> tuple[list[tuple[PredicateFragment, ...]], np.ndarray]:
    fragments = sorted(
        scores.predicates, key=lambda f: -scores.predicates[f]
    )
    total = sum(scores.predicates.values()) or 1.0
    log_share = {
        fragment: math.log(max(scores.predicates[fragment], 1e-12) / total)
        for fragment in fragments
    }
    subsets: list[tuple[PredicateFragment, ...]] = [()]
    subset_logs: list[float] = [0.0]
    for size in range(1, config.max_predicates + 1):
        for combo in combinations(fragments, size):
            columns = {fragment.column for fragment in combo}
            if len(columns) != size:
                continue  # one restriction per column
            subsets.append(combo)
            subset_logs.append(sum(log_share[f] for f in combo))
    if len(subsets) > config.max_subsets:
        # Keep the empty set plus the highest-scoring subsets.
        order = sorted(
            range(1, len(subsets)), key=lambda i: -subset_logs[i]
        )[: config.max_subsets - 1]
        keep = [0] + sorted(order)
        subsets = [subsets[i] for i in keep]
        subset_logs = [subset_logs[i] for i in keep]
    return subsets, np.asarray(subset_logs)


def _materialize_queries(space: CandidateSpace, config: CandidateConfig) -> None:
    queries: list[SimpleAggregateQuery] = []
    fn_idx: list[int] = []
    col_idx: list[int] = []
    subset_idx: list[int] = []
    for fi, fn_fragment in enumerate(space.functions):
        function = fn_fragment.function
        if (
            function is AggregateFunction.CONDITIONAL_PROBABILITY
            and not config.include_conditional_probability
        ):
            continue
        for ci, col_fragment in enumerate(space.columns):
            if not _valid_pair(function, col_fragment):
                continue
            spec = AggregateSpec(function, col_fragment.column)
            for si, subset in enumerate(space.subsets):
                predicates = tuple(f.predicate for f in subset)
                if function is AggregateFunction.CONDITIONAL_PROBABILITY:
                    if len(predicates) < 2:
                        continue
                    for k in range(len(predicates)):
                        condition = predicates[k]
                        event = predicates[:k] + predicates[k + 1 :]
                        queries.append(
                            SimpleAggregateQuery(spec, event, condition)
                        )
                        fn_idx.append(fi)
                        col_idx.append(ci)
                        subset_idx.append(si)
                else:
                    queries.append(SimpleAggregateQuery(spec, predicates))
                    fn_idx.append(fi)
                    col_idx.append(ci)
                    subset_idx.append(si)
    space.queries = queries
    space.fn_index = np.asarray(fn_idx, dtype=np.int32)
    space.col_index = np.asarray(col_idx, dtype=np.int32)
    space.subset_index = np.asarray(subset_idx, dtype=np.int32)


def _valid_pair(function: AggregateFunction, column: ColumnFragment) -> bool:
    if column.is_star:
        # Only the count family and ratio functions work on '*'.
        return function in (
            AggregateFunction.COUNT,
            AggregateFunction.PERCENTAGE,
            AggregateFunction.CONDITIONAL_PROBABILITY,
        )
    if function is AggregateFunction.COUNT_DISTINCT:
        return True
    if function.needs_numeric_column:
        return True  # catalog only offers numeric aggregation columns
    # Count / Percentage / CondProb on a real column are valid SQL.
    return True
