"""Candidate query spaces per claim (paper Section 4.4).

Combining retrieved fragments "in all possible ways (within the boundaries
of the query model)" yields the claim-specific candidate space: one
aggregation function x one aggregation column x a set of equality
predicates on distinct columns. Conditional-probability candidates
additionally choose which predicate is the condition.

The space is stored factorized (function x column x predicate-subset index
arrays) so the EM loop can re-score tens of thousands of candidates per
claim with a handful of numpy operations. The factorized form is also the
*evaluation currency*: :class:`SpaceEncoding` exposes per-dimension
literal-code vectors that let the query engine answer the whole space from
cube cells by integer gather (:mod:`repro.db.gather`), and real
``SimpleAggregateQuery`` objects materialize lazily — only the top-k /
verdict / reporting / interactive paths ever build them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations

from repro._compat import np, require_numpy

from repro.db.aggregates import AggregateFunction
from repro.db.cube import ALL
from repro.db.gather import KIND_CONDITIONAL, KIND_PERCENTAGE, KIND_PLAIN
from repro.db.query import AggregateSpec, ColumnRef, SimpleAggregateQuery
from repro.fragments.fragments import (
    ColumnFragment,
    FunctionFragment,
    PredicateFragment,
)
from repro.fragments.indexer import RelevanceScores
from repro.text.claims import Claim

#: Floor added to keyword scores so unretrieved-but-in-scope fragments
#: (e.g. the ``*`` column) keep non-zero probability.
SCORE_FLOOR_SHARE = 0.05


@dataclass(frozen=True)
class CandidateConfig:
    """Scope of the candidate space.

    ``max_predicates`` is the paper's ``m`` (at most m predicates per
    claim; m=3 in the paper, default 2 here matching the corpus where no
    claim uses three — Figure 9c). ``max_subsets`` caps the number of
    predicate combinations per claim (cost control, see PickScope).
    """

    max_predicates: int = 2
    max_subsets: int = 600
    include_conditional_probability: bool = True


class SpaceEncoding:
    """Integer view of one candidate space for cell-gather evaluation.

    Everything a query engine needs to answer candidates without
    materializing them:

    - ``pred_columns`` / ``literals``: the space's predicate columns and,
      per column, its distinct normalized literals (sorted);
    - ``subset_codes``: per predicate subset, one literal code per
      predicate column (0 = that column unrestricted) — the
      per-dimension literal-code vector a cube cell key maps onto;
    - ``tables_id`` / ``table_sets``: base-relation table set per
      candidate (empty set = the database's single table);
    - ``basis_spec_id`` / ``basis_specs``: the cube-computable aggregate
      backing each candidate (ratio functions share their column's COUNT);
    - ``fn_kind``: per function fragment, how candidate values derive from
      basis cells (:data:`~repro.db.gather.KIND_PLAIN` /
      ``KIND_PERCENTAGE`` / ``KIND_CONDITIONAL``);
    - ``cond_pair_id`` / ``cond_pairs``: per candidate, the (column,
      literal-code) pair of its condition predicate (-1 = no condition).
    """

    __slots__ = (
        "pred_columns",
        "col_pos",
        "literals",
        "subset_codes",
        "subset_col_sets",
        "table_sets",
        "tables_id",
        "basis_specs",
        "basis_spec_id",
        "fn_kind",
        "cond_pairs",
        "cond_pair_id",
    )

    def __init__(self, space: "CandidateSpace") -> None:
        subsets = space.subsets
        self.pred_columns: list[ColumnRef] = sorted(
            {fragment.column for subset in subsets for fragment in subset}
        )
        self.col_pos = {column: j for j, column in enumerate(self.pred_columns)}
        literal_sets: list[set[str]] = [set() for _ in self.pred_columns]
        for subset in subsets:
            for fragment in subset:
                literal_sets[self.col_pos[fragment.column]].add(
                    fragment.predicate.normalized_value
                )
        self.literals = [sorted(values) for values in literal_sets]
        literal_code = [
            {literal: code + 1 for code, literal in enumerate(column_literals)}
            for column_literals in self.literals
        ]

        n_subsets = len(subsets)
        self.subset_codes = np.zeros(
            (n_subsets, len(self.pred_columns)), dtype=np.int32
        )
        self.subset_col_sets: list[frozenset[ColumnRef]] = []
        subset_tables: list[frozenset[str]] = []
        for si, subset in enumerate(subsets):
            self.subset_col_sets.append(
                frozenset(fragment.column for fragment in subset)
            )
            subset_tables.append(
                frozenset(
                    fragment.column.table
                    for fragment in subset
                    if fragment.column.table
                )
            )
            for fragment in subset:
                j = self.col_pos[fragment.column]
                self.subset_codes[si, j] = literal_code[j][
                    fragment.predicate.normalized_value
                ]

        column_tables = [
            frozenset({fragment.column.table})
            if fragment.column.table
            else frozenset()
            for fragment in space.columns
        ]

        # Table set per candidate. Both factors have very few distinct
        # table sets, so dedup over (column-variant, subset-variant) pairs
        # rather than raw (column, subset) pairs.
        self.table_sets: list[frozenset[str]] = []
        set_index: dict[frozenset[str], int] = {}
        if len(space.fn_index):
            subset_variants: list[frozenset[str]] = []
            subset_variant_index: dict[frozenset[str], int] = {}
            subset_tid = np.empty(max(n_subsets, 1), dtype=np.int64)
            for si, tables in enumerate(subset_tables):
                tid = subset_variant_index.get(tables)
                if tid is None:
                    tid = subset_variant_index[tables] = len(subset_variants)
                    subset_variants.append(tables)
                subset_tid[si] = tid
            column_variants: list[frozenset[str]] = []
            column_variant_index: dict[frozenset[str], int] = {}
            column_tid = np.empty(len(column_tables), dtype=np.int64)
            for ci, tables in enumerate(column_tables):
                tid = column_variant_index.get(tables)
                if tid is None:
                    tid = column_variant_index[tables] = len(column_variants)
                    column_variants.append(tables)
                column_tid[ci] = tid
            radix = max(len(subset_variants), 1)
            pair_codes = (
                column_tid[space.col_index] * radix
                + subset_tid[space.subset_index]
            )
            unique_pairs, inverse = np.unique(pair_codes, return_inverse=True)
            pair_ids = np.empty(len(unique_pairs), dtype=np.int32)
            for index, code in enumerate(unique_pairs.tolist()):
                ctid, stid = divmod(int(code), radix)
                tables = column_variants[ctid] | subset_variants[stid]
                tid = set_index.get(tables)
                if tid is None:
                    tid = set_index[tables] = len(self.table_sets)
                    self.table_sets.append(tables)
                pair_ids[index] = tid
            self.tables_id = pair_ids[inverse].astype(np.int32)
        else:
            self.tables_id = np.zeros(0, dtype=np.int32)

        # Basis aggregate per candidate, deduplicated over (fn, col) pairs.
        self.basis_specs: list[AggregateSpec] = []
        spec_index: dict[AggregateSpec, int] = {}
        n_columns = max(len(space.columns), 1)
        if len(space.fn_index):
            fc_codes = space.fn_index.astype(np.int64) * n_columns + space.col_index
            unique_fc, inverse = np.unique(fc_codes, return_inverse=True)
            spec_ids = np.empty(len(unique_fc), dtype=np.int32)
            for index, code in enumerate(unique_fc.tolist()):
                fi, ci = divmod(int(code), n_columns)
                function = space.functions[fi].function
                column = space.columns[ci].column
                basis = (
                    AggregateSpec(AggregateFunction.COUNT, column)
                    if function.is_ratio
                    else AggregateSpec(function, column)
                )
                sid = spec_index.get(basis)
                if sid is None:
                    sid = spec_index[basis] = len(self.basis_specs)
                    self.basis_specs.append(basis)
                spec_ids[index] = sid
            self.basis_spec_id = spec_ids[inverse].astype(np.int32)
        else:
            self.basis_spec_id = np.zeros(0, dtype=np.int32)

        self.fn_kind = np.array(
            [
                KIND_PERCENTAGE
                if fragment.function is AggregateFunction.PERCENTAGE
                else KIND_CONDITIONAL
                if fragment.function is AggregateFunction.CONDITIONAL_PROBABILITY
                else KIND_PLAIN
                for fragment in space.functions
            ],
            dtype=np.int8,
        )

        # Condition (column, literal-code) pair per conditional candidate.
        self.cond_pairs: list[tuple[int, int]] = []
        pair_index: dict[tuple[int, int], int] = {}
        self.cond_pair_id = np.full(len(space.fn_index), -1, dtype=np.int32)
        cond_positions = np.flatnonzero(space.cond_k >= 0)
        if len(cond_positions):
            radix = int(space.cond_k.max()) + 1
            codes = (
                space.subset_index[cond_positions].astype(np.int64) * radix
                + space.cond_k[cond_positions]
            )
            unique_codes, inverse = np.unique(codes, return_inverse=True)
            ids = np.empty(len(unique_codes), dtype=np.int32)
            for index, code in enumerate(unique_codes.tolist()):
                si, k = divmod(int(code), radix)
                predicate = subsets[si][k].predicate
                j = self.col_pos[predicate.column]
                pair = (j, literal_code[j][predicate.normalized_value])
                pid = pair_index.get(pair)
                if pid is None:
                    pid = pair_index[pair] = len(self.cond_pairs)
                    self.cond_pairs.append(pair)
                ids[index] = pid
            self.cond_pair_id[cond_positions] = ids[inverse]

    def cell_key(self, subset_id: int, dims: tuple[ColumnRef, ...]) -> tuple:
        """Cube cell key addressing ``subset_id``'s predicate combination."""
        row = self.subset_codes[subset_id]
        parts = []
        for dim in dims:
            j = self.col_pos.get(dim)
            code = int(row[j]) if j is not None else 0
            parts.append(self.literals[j][code - 1] if code else ALL)
        return tuple(parts)

    def cond_key(self, pair_id: int, dims: tuple[ColumnRef, ...]) -> tuple:
        """Cube cell key restricting only the condition's column."""
        j, code = self.cond_pairs[pair_id]
        column = self.pred_columns[j]
        literal = self.literals[j][code - 1]
        return tuple(literal if dim == column else ALL for dim in dims)

    def add_literals(
        self,
        subset_ids: np.ndarray,
        literal_union: dict[ColumnRef, set[str]],
    ) -> None:
        """Union the literals of the given subsets into ``literal_union``."""
        for si in np.unique(subset_ids).tolist():
            row = self.subset_codes[int(si)]
            for j, code in enumerate(row.tolist()):
                if code:
                    literal_union.setdefault(self.pred_columns[j], set()).add(
                        self.literals[j][code - 1]
                    )

    def column_sets_used(
        self, subset_ids: np.ndarray
    ) -> set[frozenset[ColumnRef]]:
        """Distinct predicate-column sets among the given subsets."""
        return {
            self.subset_col_sets[int(si)] for si in np.unique(subset_ids)
        }


@dataclass
class CandidateSpace:
    """Factorized candidate space for one claim.

    Candidates are triples into ``functions`` x ``columns`` x ``subsets``
    (``fn_index`` / ``col_index`` / ``subset_index``); conditional
    candidates additionally record which subset predicate is the condition
    (``cond_k``, -1 otherwise). ``queries`` materializes real
    ``SimpleAggregateQuery`` objects lazily — the evaluation hot path works
    on the index arrays alone.
    """

    claim: Claim
    functions: list[FunctionFragment]
    columns: list[ColumnFragment]
    subsets: list[tuple[PredicateFragment, ...]]
    #: log keyword probability per function / column / subset
    fn_keyword_log: np.ndarray
    col_keyword_log: np.ndarray
    subset_keyword_log: np.ndarray
    #: flattened candidates (index per factor; cond_k = condition choice)
    fn_index: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    col_index: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    subset_index: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    cond_k: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int32))
    #: lazily materialized query objects (see :attr:`queries`)
    _queries: list[SimpleAggregateQuery] | None = field(
        default=None, repr=False, compare=False
    )
    #: lazily built query -> position map (see :meth:`position_index`)
    _positions: dict[SimpleAggregateQuery, int] | None = field(
        default=None, repr=False, compare=False
    )
    #: lazily built factor lookup tables (see :meth:`position_of`)
    _locator: tuple | None = field(default=None, repr=False, compare=False)
    #: lazily built integer encoding (see :meth:`encoding`)
    _encoding: SpaceEncoding | None = field(
        default=None, repr=False, compare=False
    )
    #: lazily built flat (subset, column) arrays for the prior term
    _prior_arrays: tuple | None = field(default=None, repr=False, compare=False)
    #: lazily built Θ slot arrays, cached per PriorLayout identity
    _prior_slots: tuple | None = field(default=None, repr=False, compare=False)

    def prior_arrays(self) -> tuple:
        """Flat restriction structure for the Θ prior term (cached).

        Returns ``(columns, flat_subset, flat_column)``: one entry per
        (subset, predicate) pair, in subset-then-fragment order, where
        ``flat_column[p]`` indexes into ``columns``. Lets
        ``compute_distribution`` accumulate per-subset restriction
        log-odds with one ``np.add.at`` instead of nested Python sums.
        """
        if self._prior_arrays is None:
            columns: list[ColumnRef] = []
            column_pos: dict[ColumnRef, int] = {}
            flat_subset: list[int] = []
            flat_column: list[int] = []
            for si, subset in enumerate(self.subsets):
                for fragment in subset:
                    j = column_pos.get(fragment.column)
                    if j is None:
                        j = column_pos[fragment.column] = len(columns)
                        columns.append(fragment.column)
                    flat_subset.append(si)
                    flat_column.append(j)
            self._prior_arrays = (
                columns,
                np.asarray(flat_subset, dtype=np.intp),
                np.asarray(flat_column, dtype=np.intp),
            )
        return self._prior_arrays

    def prior_slots(self, layout) -> tuple:
        """Θ table slots of this space's factors (cached per layout).

        Returns ``(fn_slots, col_slots, odds_slots)``: per function
        fragment, per column fragment, and per restricted column of
        :meth:`prior_arrays`, the index into the corresponding
        :meth:`~repro.model.priors.Priors.log_tables` array. One document's
        M-step priors all share one layout, so the E-step pays these dict
        lookups once per space instead of once per fragment per iteration.
        """
        cached = self._prior_slots
        if cached is not None and cached[0] is layout:
            return cached[1], cached[2], cached[3]
        fn_fallback = len(layout.fn_slot)
        fn_slots = np.fromiter(
            (
                layout.fn_slot.get(fragment.function, fn_fallback)
                for fragment in self.functions
            ),
            dtype=np.intp,
            count=len(self.functions),
        )
        col_fallback = len(layout.col_slot)
        col_slots = np.fromiter(
            (
                layout.col_slot.get(fragment.column, col_fallback)
                for fragment in self.columns
            ),
            dtype=np.intp,
            count=len(self.columns),
        )
        columns, _, _ = self.prior_arrays()
        odds_fallback = len(layout.odds_slot)
        odds_slots = np.fromiter(
            (layout.odds_slot.get(column, odds_fallback) for column in columns),
            dtype=np.intp,
            count=len(columns),
        )
        self._prior_slots = (layout, fn_slots, col_slots, odds_slots)
        return fn_slots, col_slots, odds_slots

    def __len__(self) -> int:
        if self._queries is not None:
            return len(self._queries)
        return len(self.fn_index)

    @property
    def queries(self) -> list[SimpleAggregateQuery]:
        """All candidate queries, materialized on first access.

        The evaluation path never touches this: it answers the factorized
        space directly (``QueryEngine.evaluate_space``). Only top-k /
        verdict / reporting / interactive consumers pay for real objects.
        """
        if self._queries is None:
            fn_list = self.fn_index.tolist()
            col_list = self.col_index.tolist()
            subset_list = self.subset_index.tolist()
            cond_list = self.cond_k.tolist()
            self._queries = [
                _build_query(self, fi, ci, si, k)
                for fi, ci, si, k in zip(fn_list, col_list, subset_list, cond_list)
            ]
        return self._queries

    @queries.setter
    def queries(self, value: list[SimpleAggregateQuery]) -> None:
        self._queries = value
        self._positions = None

    def query_at(self, position: int) -> SimpleAggregateQuery:
        """Materialize the single candidate at ``position``."""
        if self._queries is not None:
            return self._queries[position]
        return _build_query(
            self,
            int(self.fn_index[position]),
            int(self.col_index[position]),
            int(self.subset_index[position]),
            int(self.cond_k[position]),
        )

    def encoding(self) -> SpaceEncoding:
        """The integer encoding driving cell-gather evaluation (cached)."""
        if self._encoding is None:
            self._encoding = SpaceEncoding(self)
        return self._encoding

    def position_index(self) -> dict[SimpleAggregateQuery, int]:
        """Candidate position by query, built once per space.

        Lets result consumers (e.g. ``EvaluationOutcome.from_results``)
        index an evaluated subset into the space without a linear scan per
        query; built lazily because it materializes every query.
        """
        if self._positions is None or len(self._positions) != len(self.queries):
            self._positions = {
                query: index for index, query in enumerate(self.queries)
            }
        return self._positions

    def position_of(self, query: SimpleAggregateQuery) -> int | None:
        """Position of ``query`` in the space (None if absent).

        Uses the materialized :meth:`position_index` when queries already
        exist; otherwise locates the query through the factor lookup
        tables so a single membership probe (e.g. ``rank_of`` on the
        ground-truth query) does not force materialization.
        """
        if self._queries is not None:
            return self.position_index().get(query)
        if self._locator is None:
            fn_pos: dict[AggregateFunction, int] = {}
            for index, fragment in enumerate(self.functions):
                fn_pos.setdefault(fragment.function, index)
            col_pos: dict[ColumnRef, int] = {}
            for index, fragment in enumerate(self.columns):
                col_pos.setdefault(fragment.column, index)
            subset_pos: dict[frozenset, int] = {}
            for index, subset in enumerate(self.subsets):
                subset_pos.setdefault(
                    frozenset(fragment.predicate for fragment in subset), index
                )
            self._locator = (fn_pos, col_pos, subset_pos)
        fn_pos, col_pos, subset_pos = self._locator
        fi = fn_pos.get(query.aggregate.function)
        ci = col_pos.get(query.aggregate.column)
        si = subset_pos.get(frozenset(query.all_predicates))
        if fi is None or ci is None or si is None:
            return None
        mask = (
            (self.fn_index == fi)
            & (self.col_index == ci)
            & (self.subset_index == si)
        )
        for position in np.flatnonzero(mask).tolist():
            k = int(self.cond_k[position])
            if query.condition is None:
                if k < 0:
                    return position
            elif k >= 0 and self.subsets[si][k].predicate == query.condition:
                return position
        return None


def _build_query(
    space: CandidateSpace, fi: int, ci: int, si: int, k: int
) -> SimpleAggregateQuery:
    spec = AggregateSpec(space.functions[fi].function, space.columns[ci].column)
    predicates = tuple(fragment.predicate for fragment in space.subsets[si])
    if k >= 0:
        condition = predicates[k]
        event = predicates[:k] + predicates[k + 1 :]
        return SimpleAggregateQuery(spec, event, condition)
    return SimpleAggregateQuery(spec, predicates)


def build_candidates(
    claim: Claim,
    scores: RelevanceScores,
    config: CandidateConfig | None = None,
) -> CandidateSpace:
    """Construct the candidate space for one claim from its relevance
    scores."""
    require_numpy("candidate-space construction")
    config = config or CandidateConfig()

    functions = list(scores.functions)
    columns = list(scores.columns)
    # Score values ride along as dict-order-aligned arrays (shared with
    # the batched matcher's catalog-aligned output).
    fn_values, col_values, _ = scores.value_arrays()
    fn_keyword_log = _normalized_log_scores(fn_values)
    col_keyword_log = _normalized_log_scores(col_values)

    subsets, subset_keyword_log = _predicate_subsets(scores, config)

    space = CandidateSpace(
        claim=claim,
        functions=functions,
        columns=columns,
        subsets=subsets,
        fn_keyword_log=fn_keyword_log,
        col_keyword_log=col_keyword_log,
        subset_keyword_log=subset_keyword_log,
    )
    _index_candidates(space, config)
    return space


def _normalized_log_scores(raw: list[float]) -> np.ndarray:
    """Scores -> log probabilities with a floor share for weak entries
    (paper: Pr(S|Q) proportional to the fragment's relevance score)."""
    if not raw:
        return np.zeros(0)
    array = np.asarray(raw, dtype=float)
    array = np.maximum(array, 0.0)
    peak = array.max()
    floor = peak * SCORE_FLOOR_SHARE if peak > 0 else 1.0
    array = array + floor
    return np.log(array / array.sum())


def _predicate_subsets(
    scores: RelevanceScores, config: CandidateConfig
) -> tuple[list[tuple[PredicateFragment, ...]], np.ndarray]:
    fragments = sorted(
        scores.predicates, key=lambda f: -scores.predicates[f]
    )
    total = sum(scores.predicates.values()) or 1.0
    log_share = {
        fragment: math.log(max(scores.predicates[fragment], 1e-12) / total)
        for fragment in fragments
    }
    subsets: list[tuple[PredicateFragment, ...]] = [()]
    subset_logs: list[float] = [0.0]
    for size in range(1, config.max_predicates + 1):
        for combo in combinations(fragments, size):
            columns = {fragment.column for fragment in combo}
            if len(columns) != size:
                continue  # one restriction per column
            subsets.append(combo)
            subset_logs.append(sum(log_share[f] for f in combo))
    if len(subsets) > config.max_subsets:
        # Keep the empty set plus the highest-scoring subsets.
        order = sorted(
            range(1, len(subsets)), key=lambda i: -subset_logs[i]
        )[: config.max_subsets - 1]
        keep = [0] + sorted(order)
        subsets = [subsets[i] for i in keep]
        subset_logs = [subset_logs[i] for i in keep]
    return subsets, np.asarray(subset_logs)


def _index_candidates(space: CandidateSpace, config: CandidateConfig) -> None:
    """Enumerate candidates as index arrays — no query objects.

    Preserves the historical enumeration order exactly: functions outer,
    columns next, subsets inner; conditional candidates expand each subset
    of size >= 2 once per condition choice.
    """
    fn_idx: list[int] = []
    col_idx: list[int] = []
    subset_idx: list[int] = []
    cond_idx: list[int] = []
    n_subsets = len(space.subsets)
    all_subsets = range(n_subsets)
    no_condition = [-1] * n_subsets
    # Conditional expansion template: (subset, condition position) pairs in
    # subset order, reused for every valid (function, column) pair.
    cond_subsets: list[int] = []
    cond_choices: list[int] = []
    for si, subset in enumerate(space.subsets):
        size = len(subset)
        if size >= 2:
            cond_subsets.extend([si] * size)
            cond_choices.extend(range(size))
    for fi, fn_fragment in enumerate(space.functions):
        function = fn_fragment.function
        is_conditional = (
            function is AggregateFunction.CONDITIONAL_PROBABILITY
        )
        if is_conditional and not config.include_conditional_probability:
            continue
        for ci, col_fragment in enumerate(space.columns):
            if not _valid_pair(function, col_fragment):
                continue
            if is_conditional:
                count = len(cond_subsets)
                fn_idx.extend([fi] * count)
                col_idx.extend([ci] * count)
                subset_idx.extend(cond_subsets)
                cond_idx.extend(cond_choices)
            else:
                fn_idx.extend([fi] * n_subsets)
                col_idx.extend([ci] * n_subsets)
                subset_idx.extend(all_subsets)
                cond_idx.extend(no_condition)
    space.fn_index = np.asarray(fn_idx, dtype=np.int32)
    space.col_index = np.asarray(col_idx, dtype=np.int32)
    space.subset_index = np.asarray(subset_idx, dtype=np.int32)
    space.cond_k = np.asarray(cond_idx, dtype=np.int32)


def _valid_pair(function: AggregateFunction, column: ColumnFragment) -> bool:
    if column.is_star:
        # Only the count family and ratio functions work on '*'.
        return function in (
            AggregateFunction.COUNT,
            AggregateFunction.PERCENTAGE,
            AggregateFunction.CONDITIONAL_PROBABILITY,
        )
    if function is AggregateFunction.COUNT_DISTINCT:
        return True
    if function.needs_numeric_column:
        return True  # catalog only offers numeric aggregation columns
    # Count / Percentage / CondProb on a real column are valid SQL.
    return True
