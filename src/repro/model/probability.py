"""Claim-specific query distributions (paper Section 5.3, Eq. 2-5).

log Pr(Q = q | S, E) = log Pr(S|q) + log Pr(E|q) + log Pr(q) + const

- Pr(S|q): product of normalized keyword relevance scores of q's fragments;
- Pr(E|q): pT if q's evaluated result rounds to the claimed value, else
  1 - pT (only candidates selected for evaluation are compared);
- Pr(q):  priors Θ — p_f(q) * p_a(q) * prod_i p_r(i)^[restricted]
  (1-p_r(i))^[not]; the common prod(1-p_r) factor cancels under
  normalization, leaving a log-odds term per restricted column.

Evaluation results never change between EM iterations, so the match vector
is computed once per claim (:class:`EvaluationOutcome`) and re-used by
every :func:`compute_distribution` call. Two constructors feed it: the
per-query oracle path (:meth:`EvaluationOutcome.from_results`, a result
dict keyed by materialized queries) and the factorized default path
(:meth:`EvaluationOutcome.from_value_ids`, compact value-id arrays from
``QueryEngine.evaluate_space`` — ``rounds_to`` runs once per distinct
value id instead of once per candidate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._compat import np

from repro.db.gather import SpaceResults
from repro.db.query import SimpleAggregateQuery
from repro.db.values import Value
from repro.model.candidates import CandidateSpace
from repro.model.priors import Priors
from repro.nlp.numbers import rounds_to

_NEG_INF = float("-inf")


@dataclass
class EvaluationOutcome:
    """Evaluation results for one claim's candidates, aligned with the
    candidate space (computed once, reused across EM iterations).

    Exactly one of ``evaluations`` (per-query oracle path: the
    document-wide result pool) and ``space_results`` (factorized path:
    value ids per candidate) is set; consumers go through the accessor
    methods so both representations behave identically.
    """

    evaluations: dict[SimpleAggregateQuery, Value] | None
    evaluated: np.ndarray  # bool per candidate
    matches: np.ndarray  # bool per candidate (rounds to claimed value)
    space_results: SpaceResults | None = None
    #: whether *any* results exist document-wide (mirrors the oracle
    #: path's non-empty result pool even when this claim evaluated none)
    pool_nonempty: bool = False

    def has_results(self) -> bool:
        """True when any evaluation results exist for the document."""
        if self.evaluations is not None:
            return bool(self.evaluations)
        return self.pool_nonempty

    def result_at(self, space: CandidateSpace, position: int) -> Value:
        """Result of the candidate at ``position`` (None if unevaluated)."""
        if self.space_results is not None:
            return self.space_results.value_at(position)
        if self.evaluations is None:
            return None
        return self.evaluations.get(space.query_at(position))

    def result_for(self, space: CandidateSpace, query: SimpleAggregateQuery) -> Value:
        """Result of ``query`` (None when it has no recorded result)."""
        if self.evaluations is not None:
            return self.evaluations.get(query)
        if self.space_results is None:
            return None
        position = space.position_of(query)
        if position is None:
            return None
        return self.space_results.value_at(position)

    def is_evaluated(self, space: CandidateSpace, query: SimpleAggregateQuery) -> bool:
        """Whether ``query`` has a recorded evaluation result."""
        if self.evaluations is not None:
            return query in self.evaluations
        if self.space_results is None:
            return False
        position = space.position_of(query)
        return position is not None and self.space_results.has_value_at(position)

    @classmethod
    def from_results(
        cls,
        space: CandidateSpace,
        results: dict[SimpleAggregateQuery, Value],
        scoped: set[SimpleAggregateQuery] | None = None,
    ) -> "EvaluationOutcome":
        """Build the outcome for one claim from a per-query result dict.

        ``results`` may be the document-wide result pool; ``scoped``
        restricts which of this claim's candidates count as evaluated
        (None = every candidate with a result). Results are indexed once:
        a single pass collects candidate positions and de-duplicated
        result values, the rounding check runs once per distinct value,
        and the ``evaluated``/``matches`` arrays are filled in bulk —
        per-element ndarray writes are what made the old per-candidate
        loop dominate EM iterations.
        """
        claimed = space.claim.claimed_value
        n = len(space)
        evaluated = np.zeros(n, dtype=bool)
        matches = np.zeros(n, dtype=bool)

        positions: list[int] = []
        value_ids: list[int] = []
        id_of: dict[Value, int] = {}
        distinct: list[Value] = []
        missing = object()
        results_get = results.get
        if scoped is None:
            pairs = enumerate(space.queries)
        else:
            position_of = space.position_index()
            pairs = (
                (position_of[query], query)
                for query in scoped
                if query in position_of
            )
        for position, query in pairs:
            value = results_get(query, missing)
            if value is missing:
                continue
            positions.append(position)
            value_id = id_of.get(value)
            if value_id is None:
                value_id = len(distinct)
                id_of[value] = value_id
                distinct.append(value)
            value_ids.append(value_id)

        if positions:
            distinct_matches = np.fromiter(
                (rounds_to(value, claimed) for value in distinct),
                dtype=bool,
                count=len(distinct),
            )
            index = np.asarray(positions, dtype=np.intp)
            evaluated[index] = True
            matches[index] = distinct_matches[
                np.asarray(value_ids, dtype=np.intp)
            ]
        return cls(results, evaluated, matches)

    @classmethod
    def from_value_ids(
        cls,
        space: CandidateSpace,
        results: SpaceResults,
        scope_mask: np.ndarray | None = None,
        pool_nonempty: bool = True,
    ) -> "EvaluationOutcome":
        """Build the outcome from factorized space results.

        ``results`` carries one value id per candidate (-1 = not
        evaluated); ``scope_mask`` restricts which candidates count as
        evaluated this EM iteration (None = all with results). The
        rounding check runs once per distinct value id in the space's
        value table and fans out by integer gather.
        """
        claimed = space.claim.claimed_value
        ids = np.asarray(results.value_ids)
        evaluated = ids >= 0
        if scope_mask is not None:
            evaluated = evaluated & np.asarray(scope_mask)
        matches = np.zeros(len(space), dtype=bool)
        if evaluated.any():
            values = results.table.values
            match_by_id = np.fromiter(
                (rounds_to(value, claimed) for value in values),
                dtype=bool,
                count=len(values),
            )
            matches[evaluated] = match_by_id[ids[evaluated]]
        return cls(
            None,
            evaluated,
            matches,
            space_results=results,
            pool_nonempty=pool_nonempty,
        )


@dataclass
class ClaimDistribution:
    """Posterior over candidate queries for one claim."""

    space: CandidateSpace
    log_scores: np.ndarray
    probabilities: np.ndarray
    outcome: EvaluationOutcome | None

    def top_positions(self, k: int) -> list[int]:
        """Positions of the k most likely candidates, best first."""
        if len(self.space) == 0:
            return []
        order = np.argsort(-self.probabilities, kind="stable")[:k]
        return [int(i) for i in order]

    def top_position(self) -> int | None:
        top = self.top_positions(1)
        return top[0] if top else None

    def top_queries(self, k: int) -> list[tuple[SimpleAggregateQuery, float]]:
        """The k most likely candidates with their probabilities.

        Materializes only the k returned queries — the rest of the space
        stays factorized.
        """
        return [
            (self.space.query_at(i), float(self.probabilities[i]))
            for i in self.top_positions(k)
        ]

    def top_query(self) -> SimpleAggregateQuery | None:
        top = self.top_queries(1)
        return top[0][0] if top else None

    def result_at(self, position: int) -> Value:
        """Evaluation result of the candidate at ``position``."""
        if self.outcome is None:
            return None
        return self.outcome.result_at(self.space, position)

    def result_of(self, query: SimpleAggregateQuery) -> Value:
        if self.outcome is None:
            return None
        return self.outcome.result_for(self.space, query)

    def rank_of(self, query: SimpleAggregateQuery) -> int | None:
        """1-based rank of a query in the distribution (None if absent)."""
        position = self.space.position_of(query)
        if position is None:
            return None
        better = np.sum(self.probabilities > self.probabilities[position])
        return int(better) + 1

    def probability_correct(self) -> float:
        """Probability mass on candidates whose result matches the claim."""
        if self.outcome is None or len(self.space) == 0:
            return 0.0
        return float(self.probabilities[self.outcome.matches].sum())


def compute_distribution(
    space: CandidateSpace,
    priors: Priors | None = None,
    outcome: EvaluationOutcome | None = None,
    p_true: float = 0.999,
) -> ClaimDistribution:
    """Combine keyword scores, priors, and evaluation results.

    ``priors=None`` drops the Θ term and ``outcome=None`` drops the E term
    (the Table 10 ablation ladder).
    """
    n = len(space)
    if n == 0:
        return ClaimDistribution(space, np.zeros(0), np.zeros(0), outcome)

    log_scores = (
        space.fn_keyword_log[space.fn_index]
        + space.col_keyword_log[space.col_index]
        + space.subset_keyword_log[space.subset_index]
    )

    if priors is not None:
        log_scores = log_scores + _prior_term(space, priors)

    if outcome is not None and outcome.evaluated.any():
        log_true = math.log(p_true)
        log_false = math.log(max(1.0 - p_true, 1e-12))
        eval_term = np.where(outcome.matches, log_true, log_false)
        # Candidates not selected for evaluation are excluded from the
        # comparison (paper Section 5.3).
        eval_term = np.where(outcome.evaluated, eval_term, _NEG_INF)
        log_scores = log_scores + eval_term

    probabilities = _softmax(log_scores)
    return ClaimDistribution(space, log_scores, probabilities, outcome)


def _prior_term(space: CandidateSpace, priors: Priors) -> np.ndarray:
    """Per-candidate log-prior, as pure integer gathers.

    The priors expose layout-aligned log tables built once per instance
    (:meth:`~repro.model.priors.Priors.log_tables`); the space caches its
    slot arrays once per document (:meth:`CandidateSpace.prior_slots`, the
    layout is shared by every M-step instance). The E-step therefore does
    no per-fragment dict lookups at all — values and accumulation order
    are identical to the dict-walking implementation this replaces.
    """
    fn_table, col_table, odds_table = priors.log_tables()
    fn_slots, col_slots, odds_slots = space.prior_slots(priors.layout())
    _, flat_subset, flat_column = space.prior_arrays()
    odds = odds_table[odds_slots]
    # Sequential accumulation in (subset, fragment) order: identical float
    # addition order to the per-fragment Python sum it replaces.
    subset_prior = np.zeros(len(space.subsets))
    np.add.at(subset_prior, flat_subset, odds[flat_column])
    return (
        fn_table[fn_slots][space.fn_index]
        + col_table[col_slots][space.col_index]
        + subset_prior[space.subset_index]
    )


def _softmax(log_scores: np.ndarray) -> np.ndarray:
    finite = log_scores[np.isfinite(log_scores)]
    if finite.size == 0:
        return np.full(log_scores.shape, 1.0 / max(len(log_scores), 1))
    shifted = log_scores - finite.max()
    with np.errstate(under="ignore"):
        weights = np.exp(np.clip(shifted, -700.0, 0.0))
    weights[~np.isfinite(log_scores)] = 0.0
    total = weights.sum()
    if total <= 0:
        return np.full(log_scores.shape, 1.0 / max(len(log_scores), 1))
    return weights / total
