"""Document-level priors Θ over query characteristics (paper Section 5.2).

Θ holds: the probability of each aggregation function, of each aggregation
column, and — independently per column — the probability that a restriction
is placed on that column. The M-step sets each component to the (smoothed)
fraction of maximum-likelihood claim queries with the property.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro._compat import np

from repro.db.aggregates import AggregateFunction
from repro.db.query import SimpleAggregateQuery
from repro.db.refs import ColumnRef
from repro.fragments.fragments import FragmentCatalog


class PriorLayout:
    """Slot assignment of one document's Θ components.

    ``update_from`` preserves dictionary key order exactly, so every
    M-step instance of one document's priors shares this layout; candidate
    spaces cache their slot arrays against its identity and the E-step
    prior term becomes pure integer gathers into per-instance log tables.
    Slot ``n`` (one past the last real component) is the fallback for keys
    the priors never saw — the log tables park ``log(_MIN_PRIOR)`` (and
    the clamped log-odds) there.
    """

    __slots__ = ("fn_slot", "col_slot", "odds_slot")

    def __init__(self, priors: "Priors") -> None:
        self.fn_slot: dict[AggregateFunction, int] = {
            key: slot for slot, key in enumerate(priors.functions)
        }
        self.col_slot: dict[ColumnRef, int] = {
            key: slot for slot, key in enumerate(priors.columns)
        }
        self.odds_slot: dict[ColumnRef, int] = {
            key: slot for slot, key in enumerate(priors.restrictions)
        }


@dataclass
class Priors:
    """Θ = <p_f..., p_a..., p_r...> (paper Eq. 1).

    Log-space tables (``log_function_prior`` etc.) are computed lazily and
    cached per instance: the E-step consults them once per fragment per
    claim per iteration, and recomputing ``math.log`` there dominated the
    prior term. :meth:`update_from` returns a *new* instance, so the
    caches invalidate naturally on every M-step.
    """

    functions: dict[AggregateFunction, float]
    columns: dict[ColumnRef, float]
    restrictions: dict[ColumnRef, float]
    _log_functions: dict[AggregateFunction, float] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _log_columns: dict[ColumnRef, float] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _log_odds: dict[ColumnRef, float] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _layout: "PriorLayout | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    _log_tables: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def uniform(cls, catalog: FragmentCatalog) -> "Priors":
        """The EM starting point: uninformative priors."""
        n_functions = len(catalog.functions)
        functions = {
            fragment.function: 1.0 / n_functions for fragment in catalog.functions
        }
        n_columns = len(catalog.columns)
        columns = {
            fragment.column: 1.0 / n_columns for fragment in catalog.columns
        }
        predicate_columns = sorted(catalog.predicate_columns())
        n_restrictable = max(len(predicate_columns), 1)
        restrictions = {
            column: 1.0 / n_restrictable for column in predicate_columns
        }
        return cls(functions, columns, restrictions)

    def update_from(
        self,
        ml_queries: list[SimpleAggregateQuery],
        smoothing: float = 0.5,
    ) -> "Priors":
        """New priors from the maximum-likelihood query of each claim.

        Laplace smoothing keeps every component strictly positive so the
        E-step never zeroes out unseen characteristics.
        """
        n = len(ml_queries)
        function_counts = {function: 0 for function in self.functions}
        column_counts = {column: 0 for column in self.columns}
        restriction_counts = {column: 0 for column in self.restrictions}
        for query in ml_queries:
            function = query.aggregate.function
            if function in function_counts:
                function_counts[function] += 1
            column = query.aggregate.column
            if column in column_counts:
                column_counts[column] += 1
            for predicate in query.all_predicates:
                if predicate.column in restriction_counts:
                    restriction_counts[predicate.column] += 1
        functions = _smooth_distribution(function_counts, n, smoothing)
        columns = _smooth_distribution(column_counts, n, smoothing)
        restrictions = {
            column: (count + smoothing) / (n + 2.0 * smoothing)
            for column, count in restriction_counts.items()
        }
        updated = Priors(functions, columns, restrictions)
        # Key sets and orders are inherited verbatim from self, so the
        # layout (and every slot array cached against it) stays valid.
        updated._layout = self._layout
        return updated

    def distance(self, other: "Priors") -> float:
        """L1 distance between parameter vectors (convergence check)."""
        total = 0.0
        for key, value in self.functions.items():
            total += abs(value - other.functions.get(key, 0.0))
        for key, value in self.columns.items():
            total += abs(value - other.columns.get(key, 0.0))
        for key, value in self.restrictions.items():
            total += abs(value - other.restrictions.get(key, 0.0))
        return total

    def function_prior(self, function: AggregateFunction) -> float:
        return self.functions.get(function, _MIN_PRIOR)

    def column_prior(self, column: ColumnRef) -> float:
        return self.columns.get(column, _MIN_PRIOR)

    def restriction_prior(self, column: ColumnRef) -> float:
        return min(
            max(self.restrictions.get(column, _MIN_PRIOR), _MIN_PRIOR),
            1.0 - _MIN_PRIOR,
        )

    # -- cached log tables (built once per instance) --------------------

    def log_function_prior(self, function: AggregateFunction) -> float:
        table = self._log_functions
        if table is None:
            table = self._log_functions = {
                key: math.log(value) for key, value in self.functions.items()
            }
        value = table.get(function)
        if value is None:
            value = table[function] = math.log(self.function_prior(function))
        return value

    def log_column_prior(self, column: ColumnRef) -> float:
        table = self._log_columns
        if table is None:
            table = self._log_columns = {
                key: math.log(value) for key, value in self.columns.items()
            }
        value = table.get(column)
        if value is None:
            value = table[column] = math.log(self.column_prior(column))
        return value

    def log_restriction_odds(self, column: ColumnRef) -> float:
        """``log p_r - log (1 - p_r)`` for a restricted column (Eq. 1's
        per-restriction factor after the common ``1 - p_r`` cancels)."""
        table = self._log_odds
        if table is None:
            table = self._log_odds = {}
        value = table.get(column)
        if value is None:
            p = self.restriction_prior(column)
            value = table[column] = math.log(p) - math.log(1.0 - p)
        return value

    # -- aligned array tables (the E-step gather path) -------------------

    def layout(self) -> PriorLayout:
        """Slot layout shared by this document's chain of M-step priors."""
        if self._layout is None:
            self._layout = PriorLayout(self)
        return self._layout

    def log_tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Layout-aligned ``(log p_f, log p_a, log-odds p_r)`` arrays.

        Built once per instance with the same ``math.log`` calls as the
        scalar accessors (bit-identical values); the final slot of each
        table holds the out-of-vocabulary fallback.
        """
        if self._log_tables is None:
            fn_table = np.empty(len(self.functions) + 1)
            for slot, value in enumerate(self.functions.values()):
                fn_table[slot] = math.log(value)
            fn_table[-1] = math.log(_MIN_PRIOR)
            col_table = np.empty(len(self.columns) + 1)
            for slot, value in enumerate(self.columns.values()):
                col_table[slot] = math.log(value)
            col_table[-1] = math.log(_MIN_PRIOR)
            odds_table = np.empty(len(self.restrictions) + 1)
            for slot, value in enumerate(self.restrictions.values()):
                p = min(max(value, _MIN_PRIOR), 1.0 - _MIN_PRIOR)
                odds_table[slot] = math.log(p) - math.log(1.0 - p)
            odds_table[-1] = math.log(_MIN_PRIOR) - math.log(1.0 - _MIN_PRIOR)
            self._log_tables = (fn_table, col_table, odds_table)
        return self._log_tables


_MIN_PRIOR = 1e-6


def _smooth_distribution(
    counts: dict, total: int, smoothing: float
) -> dict:
    k = max(len(counts), 1)
    denominator = total + smoothing * k
    return {
        key: (count + smoothing) / denominator for key, count in counts.items()
    }
