"""Hard expectation-maximization over claim queries (paper Algorithm 3).

Starting from uniform priors, each iteration (1) computes claim-specific
distributions from keyword scores and current priors, (2) refines them with
candidate evaluation results (``RefineByEval``), and (3) re-estimates the
document priors Θ from each claim's maximum-likelihood query. Iteration
stops when Θ moves less than a tolerance or an iteration cap is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro._compat import require_numpy
from repro.db.engine import QueryEngine
from repro.db.gather import SpaceResults
from repro.db.query import SimpleAggregateQuery
from repro.db.values import Value
from repro.evalexec.refine import refine_by_eval, refine_by_eval_space
from repro.evalexec.scope import ScopeConfig
from repro.fragments.fragments import FragmentCatalog
from repro.model.candidates import CandidateSpace
from repro.model.priors import Priors
from repro.model.probability import (
    ClaimDistribution,
    EvaluationOutcome,
    compute_distribution,
)
from repro.text.claims import Claim

if TYPE_CHECKING:
    from repro.deadline import Deadline


@dataclass(frozen=True)
class EmConfig:
    """Knobs of the probabilistic model (ablations toggle the booleans)."""

    p_true: float = 0.999
    max_iterations: int = 5
    tolerance: float = 1e-3
    prior_smoothing: float = 0.5
    use_priors: bool = True
    use_evaluations: bool = True
    scope: ScopeConfig = field(default_factory=ScopeConfig)
    #: Keep evaluation results across EM iterations (the paper's result
    #: cache; disabled for the Table 6 "naive"/"merging only" rows).
    reuse_results: bool = True
    #: Answer candidates through the factorized space path (cell gather,
    #: no per-candidate query objects). False falls back to the per-query
    #: oracle, kept as the reference: results are bit-identical, with one
    #: documented nuance — verdict/interactive result lookups consult the
    #: claim's own evaluated candidates, while the oracle consults the
    #: document-wide result pool. Verdicts can differ only for a claim
    #: whose *top* candidate was never in its own scope in any iteration,
    #: which requires a degenerate budget (``max_evaluations_per_claim``
    #: of 0): with any positive budget, unevaluated candidates carry zero
    #: probability and can never rank first. Interactive sessions asking
    #: for a query outside the claim's own space (e.g. another claim's
    #: candidate) re-evaluate it through the engine instead of reading the
    #: pool; an engine-less session raises for such queries. Also,
    #: ``EngineStats.queries_requested`` counts logical candidate requests
    #: before cross-claim dedup on this path (see its docstring).
    space_eval: bool = True


@dataclass
class InferenceResult:
    """Output of Algorithm 3: per-claim distributions plus learned Θ."""

    distributions: dict[Claim, ClaimDistribution]
    priors: Priors | None
    iterations: int


def query_and_learn(
    spaces: dict[Claim, CandidateSpace],
    catalog: FragmentCatalog,
    engine: QueryEngine,
    config: EmConfig | None = None,
    deadline: "Deadline | None" = None,
) -> InferenceResult:
    """Infer a query distribution per claim (paper ``QueryAndLearn``).

    ``deadline`` is checked at each iteration boundary (the engine checks
    it before every physical execution within an iteration); on expiry
    :class:`~repro.errors.DeadlineExceeded` propagates to the checker's
    degradation ladder.
    """
    require_numpy("EM inference")
    config = config or EmConfig()
    priors = Priors.uniform(catalog) if config.use_priors else None

    # Iteration-to-iteration result reuse: the factorized path carries
    # per-claim value-id arrays (SpaceResults); the per-query oracle path
    # carries a result dict keyed by materialized queries.
    known_results: dict[SimpleAggregateQuery, Value] = {}
    space_results: dict[Claim, SpaceResults] = {}
    outcomes: dict[Claim, EvaluationOutcome] = {}
    distributions: dict[Claim, ClaimDistribution] = {}
    iterations = 0

    full_scope = config.scope.max_evaluations_per_claim is None
    max_iterations = config.max_iterations if config.use_priors else 1
    for iteration in range(max_iterations):
        iterations = iteration + 1
        if deadline is not None:
            deadline.check("inference")
        if config.use_evaluations:
            # With the full evaluation scope and result reuse, results
            # never change across iterations — compute the outcomes once.
            # Without reuse (Table 6 ladder), re-evaluate every iteration.
            if not outcomes or not full_scope or not config.reuse_results:
                preliminary = None
                if not full_scope:
                    # Budgeted scope: rank candidates by keyword + prior.
                    preliminary = {
                        claim: compute_distribution(
                            space, priors, None, config.p_true
                        )
                        for claim, space in spaces.items()
                    }
                if config.space_eval:
                    outcomes = refine_by_eval_space(
                        spaces,
                        preliminary,
                        engine,
                        config.scope,
                        space_results if config.reuse_results else None,
                    )
                else:
                    outcomes = refine_by_eval(
                        spaces,
                        preliminary,
                        engine,
                        config.scope,
                        known_results if config.reuse_results else None,
                    )
            distributions = {
                claim: compute_distribution(
                    space, priors, outcomes.get(claim), config.p_true
                )
                for claim, space in spaces.items()
            }
        else:
            distributions = {
                claim: compute_distribution(space, priors, None, config.p_true)
                for claim, space in spaces.items()
            }

        if not config.use_priors:
            break

        # M-step: re-estimate Θ from maximum-likelihood queries.
        ml_queries = [
            distribution.top_query()
            for distribution in distributions.values()
            if distribution.top_query() is not None
        ]
        new_priors = priors.update_from(ml_queries, config.prior_smoothing)
        moved = priors.distance(new_priors)
        priors = new_priors
        if moved < config.tolerance:
            break

    # Final distributions under the converged priors.
    if config.use_priors:
        distributions = {
            claim: compute_distribution(
                space,
                priors,
                outcomes.get(claim) if config.use_evaluations else None,
                config.p_true,
            )
            for claim, space in spaces.items()
        }
    return InferenceResult(distributions, priors, iterations)
