"""Massive-scale candidate evaluation (paper Section 6).

``PickScope`` selects which candidates to evaluate under a cost budget;
``RefineByEval`` evaluates them through the merging/caching query engine
and produces per-claim evaluation outcomes for the probabilistic model.
"""

from repro.evalexec.refine import refine_by_eval, refine_by_eval_space
from repro.evalexec.scope import ScopeConfig, pick_scope, scope_mask

__all__ = [
    "ScopeConfig",
    "pick_scope",
    "refine_by_eval",
    "refine_by_eval_space",
    "scope_mask",
]
