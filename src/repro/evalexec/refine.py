"""RefineByEval: evaluate promising candidates and fold results into the
claim distributions (paper Algorithm 4).

All scoped candidates of *all* claims are submitted to the query engine in
one batch: the engine merges them into a small number of cube queries and
caches cells across claims and EM iterations — exactly the sharing
structure the paper exploits (Sections 6.2-6.3).

Two implementations share that batching structure:

- :func:`refine_by_eval_space` (the default): claims stay factorized end
  to end. Each claim contributes a scope *mask* over its candidate space;
  the engine answers the spaces by cell gather
  (``QueryEngine.evaluate_spaces``), and iteration-to-iteration reuse is
  carried as per-claim :class:`~repro.db.gather.SpaceResults` (value-id
  arrays) instead of a ``dict[SimpleAggregateQuery, Value]``.
- :func:`refine_by_eval` (the per-query oracle): materializes candidate
  queries and evaluates them through ``QueryEngine.evaluate``. Kept as
  the bit-identical reference implementation and for the Table 6 ladder's
  historical measurements.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro._compat import np

from repro.db.engine import QueryEngine
from repro.db.gather import SpaceEvalRequest, SpaceResults
from repro.db.query import SimpleAggregateQuery
from repro.db.values import Value
from repro.evalexec.scope import ScopeConfig, pick_scope, scope_mask
from repro.text.claims import Claim

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle with model
    from repro.model.candidates import CandidateSpace
    from repro.model.probability import ClaimDistribution, EvaluationOutcome


def refine_by_eval(
    spaces: "dict[Claim, CandidateSpace]",
    preliminary: "dict[Claim, ClaimDistribution] | None",
    engine: QueryEngine,
    scope_config: ScopeConfig | None = None,
    known_results: dict[SimpleAggregateQuery, Value] | None = None,
) -> "dict[Claim, EvaluationOutcome]":
    """Evaluate scoped candidates and build per-claim outcomes.

    ``known_results`` carries results from earlier EM iterations so only
    newly scoped queries hit the engine (the engine's own cache would also
    absorb them; this avoids even the merge bookkeeping).
    """
    from repro.model.probability import EvaluationOutcome

    known = known_results if known_results is not None else {}
    config = scope_config or ScopeConfig()
    full_scope = config.max_evaluations_per_claim is None

    scoped: dict[Claim, list[SimpleAggregateQuery]] = {}
    # Insertion-ordered dict, not a set: the engine's batch order (and with
    # it cube literal grouping) must not depend on string-hash
    # randomization across interpreter runs.
    to_evaluate: dict[SimpleAggregateQuery, None] = {}
    for claim, space in spaces.items():
        if full_scope:
            queries = space.queries
        else:
            log_scores = None
            if preliminary is not None and claim in preliminary:
                log_scores = preliminary[claim].log_scores
            queries = pick_scope(space, log_scores, config)
        scoped[claim] = queries
        for query in queries:
            if query not in known:
                to_evaluate[query] = None

    if to_evaluate:
        known.update(engine.evaluate(to_evaluate))

    outcomes: dict[Claim, EvaluationOutcome] = {}
    for claim, space in spaces.items():
        restriction = None if full_scope else set(scoped[claim])
        outcomes[claim] = EvaluationOutcome.from_results(
            space, known, scoped=restriction
        )
    return outcomes


def refine_by_eval_space(
    spaces: "dict[Claim, CandidateSpace]",
    preliminary: "dict[Claim, ClaimDistribution] | None",
    engine: QueryEngine,
    scope_config: ScopeConfig | None = None,
    carried: dict[Claim, SpaceResults] | None = None,
) -> "dict[Claim, EvaluationOutcome]":
    """RefineByEval over factorized spaces (no query materialization).

    ``carried`` maps claims to :class:`~repro.db.gather.SpaceResults`
    reused across EM iterations: candidates already answered in an earlier
    iteration keep their value ids and only newly scoped ones reach the
    engine. Pass None to re-evaluate from scratch (the Table 6
    "no result reuse" rungs).
    """
    from repro.model.probability import EvaluationOutcome

    config = scope_config or ScopeConfig()
    full_scope = config.max_evaluations_per_claim is None

    requests: list[SpaceEvalRequest] = []
    masks: dict[Claim, np.ndarray] = {}
    held: dict[Claim, SpaceResults] = {}
    for claim, space in spaces.items():
        log_scores = None
        if (
            not full_scope
            and preliminary is not None
            and claim in preliminary
        ):
            log_scores = preliminary[claim].log_scores
        mask = scope_mask(space, log_scores, config)
        results = carried.get(claim) if carried is not None else None
        if results is None:
            results = SpaceResults.for_space(space)
            if carried is not None:
                carried[claim] = results
        need = mask & ~np.asarray(results.evaluated_mask())
        requests.append(SpaceEvalRequest(space, need, results))
        masks[claim] = mask
        held[claim] = results

    engine.evaluate_spaces(requests)

    pool_nonempty = any(results.any_evaluated() for results in held.values())
    return {
        claim: EvaluationOutcome.from_value_ids(
            spaces[claim], held[claim], masks[claim], pool_nonempty
        )
        for claim in spaces
    }
