"""RefineByEval: evaluate promising candidates and fold results into the
claim distributions (paper Algorithm 4).

All scoped candidates of *all* claims are submitted to the query engine in
one batch: the engine merges them into a small number of cube queries and
caches cells across claims and EM iterations — exactly the sharing
structure the paper exploits (Sections 6.2-6.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.db.engine import QueryEngine
from repro.db.query import SimpleAggregateQuery
from repro.db.values import Value
from repro.evalexec.scope import ScopeConfig, pick_scope
from repro.text.claims import Claim

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle with model
    from repro.model.candidates import CandidateSpace
    from repro.model.probability import ClaimDistribution, EvaluationOutcome


def refine_by_eval(
    spaces: "dict[Claim, CandidateSpace]",
    preliminary: "dict[Claim, ClaimDistribution] | None",
    engine: QueryEngine,
    scope_config: ScopeConfig | None = None,
    known_results: dict[SimpleAggregateQuery, Value] | None = None,
) -> "dict[Claim, EvaluationOutcome]":
    """Evaluate scoped candidates and build per-claim outcomes.

    ``known_results`` carries results from earlier EM iterations so only
    newly scoped queries hit the engine (the engine's own cache would also
    absorb them; this avoids even the merge bookkeeping).
    """
    from repro.model.probability import EvaluationOutcome

    known = known_results if known_results is not None else {}
    config = scope_config or ScopeConfig()
    full_scope = config.max_evaluations_per_claim is None

    scoped: dict[Claim, list[SimpleAggregateQuery]] = {}
    to_evaluate: set[SimpleAggregateQuery] = set()
    for claim, space in spaces.items():
        if full_scope:
            queries = space.queries
        else:
            log_scores = None
            if preliminary is not None and claim in preliminary:
                log_scores = preliminary[claim].log_scores
            queries = pick_scope(space, log_scores, config)
        scoped[claim] = queries
        to_evaluate.update(q for q in queries if q not in known)

    if to_evaluate:
        known.update(engine.evaluate(to_evaluate))

    outcomes: dict[Claim, EvaluationOutcome] = {}
    for claim, space in spaces.items():
        restriction = None if full_scope else set(scoped[claim])
        outcomes[claim] = EvaluationOutcome.from_results(
            space, known, scoped=restriction
        )
    return outcomes
