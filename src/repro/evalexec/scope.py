"""Evaluation-scope selection (paper Function PickScope, Section 6.1).

The paper expands the scope along marginal probabilities of query
characteristics until an evaluation cost threshold is hit. Candidate
spaces here are already bounded by the retrieval budgets ("# Hits",
aggregation-column budget), so the default scope is the full space —
matching the paper's observation that one cube query can serve the whole
cross product. A per-claim budget trims to the most probable candidates
when set (used in the Figure 13 time/quality sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro._compat import np

from repro.db.query import SimpleAggregateQuery

if TYPE_CHECKING:  # avoid a runtime cycle with repro.model
    from repro.model.candidates import CandidateSpace


@dataclass(frozen=True)
class ScopeConfig:
    """Evaluation budget per claim (None = evaluate the full space)."""

    max_evaluations_per_claim: int | None = None


def pick_scope(
    space: CandidateSpace,
    preliminary_log_scores: np.ndarray | None,
    config: ScopeConfig | None = None,
) -> list[SimpleAggregateQuery]:
    """Queries worth evaluating for one claim, most promising first.

    Materializes query objects; the factorized evaluation path uses
    :func:`scope_mask` instead and never builds them.
    """
    config = config or ScopeConfig()
    budget = config.max_evaluations_per_claim
    if budget is None or budget >= len(space):
        return list(space.queries)
    if preliminary_log_scores is None or len(preliminary_log_scores) != len(space):
        return list(space.queries)[:budget]
    order = np.argsort(-preliminary_log_scores, kind="stable")[:budget]
    return [space.queries[i] for i in order]


def scope_mask(
    space: CandidateSpace,
    preliminary_log_scores: np.ndarray | None,
    config: ScopeConfig | None = None,
) -> np.ndarray:
    """Boolean candidate mask selecting the same scope as
    :func:`pick_scope`, without materializing any queries."""
    config = config or ScopeConfig()
    n = len(space)
    budget = config.max_evaluations_per_claim
    if budget is None or budget >= n:
        return np.ones(n, dtype=bool)
    mask = np.zeros(n, dtype=bool)
    if preliminary_log_scores is None or len(preliminary_log_scores) != n:
        mask[:budget] = True
        return mask
    order = np.argsort(-preliminary_log_scores, kind="stable")[:budget]
    mask[order] = True
    return mask
