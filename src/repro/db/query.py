"""The Simple Aggregate Query model (paper Definition 2).

A Simple Aggregate Query applies one aggregation function to one column (or
``*``) over the equi-join of the tables its columns live in, restricted by a
conjunction of unary equality predicates. For Conditional Probability, the
*condition* predicate is kept separate from the event predicates (footnote 1
of the paper: the first predicate is the condition).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.aggregates import AggregateFunction
from repro.db.predicates import Predicate, canonical_predicates
from repro.db.refs import STAR, ColumnRef
from repro.errors import QueryError

__all__ = ["AggregateSpec", "ColumnRef", "STAR", "SimpleAggregateQuery"]


@dataclass(frozen=True)
class AggregateSpec:
    """An aggregation function applied to a column (or ``*``)."""

    function: AggregateFunction
    column: ColumnRef = STAR

    def __post_init__(self) -> None:
        if self.column.is_star and self.function not in (
            AggregateFunction.COUNT,
            AggregateFunction.PERCENTAGE,
            AggregateFunction.CONDITIONAL_PROBABILITY,
        ):
            raise QueryError(f"{self.function.sql_name} requires a real column")

    def __str__(self) -> str:
        return f"{self.function.sql_name}({self.column})"


@dataclass(frozen=True)
class SimpleAggregateQuery:
    """One aggregate, one optional condition, and event predicates.

    Instances are immutable, hashable, and canonical (predicates sorted),
    so they can serve as dictionary keys in probability tables and result
    caches.
    """

    aggregate: AggregateSpec
    predicates: tuple[Predicate, ...] = ()
    condition: Predicate | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "predicates", canonical_predicates(tuple(self.predicates))
        )
        is_conditional = (
            self.aggregate.function is AggregateFunction.CONDITIONAL_PROBABILITY
        )
        if is_conditional and self.condition is None:
            raise QueryError("ConditionalProbability requires a condition predicate")
        if not is_conditional and self.condition is not None:
            raise QueryError(
                f"{self.aggregate.function.sql_name} does not take a condition"
            )
        if self.condition is not None:
            event_columns = {predicate.column for predicate in self.predicates}
            if self.condition.column in event_columns:
                raise QueryError("condition column also appears in event predicates")
        # Queries serve as keys in large probability/result tables; caching
        # the hash removes the dominant cost of those lookups.
        object.__setattr__(
            self,
            "_cached_hash",
            hash((self.aggregate, self.predicates, self.condition)),
        )

    @property
    def all_predicates(self) -> tuple[Predicate, ...]:
        """Condition (if any) followed by event predicates."""
        if self.condition is None:
            return self.predicates
        return (self.condition,) + self.predicates

    @property
    def predicate_columns(self) -> frozenset[ColumnRef]:
        return frozenset(predicate.column for predicate in self.all_predicates)

    def referenced_tables(self) -> frozenset[str]:
        """Tables named by the aggregate column and all predicates."""
        tables = {
            predicate.column.table
            for predicate in self.all_predicates
            if predicate.column.table
        }
        if self.aggregate.column.table:
            tables.add(self.aggregate.column.table)
        return frozenset(tables)

    def with_predicates(
        self, predicates: tuple[Predicate, ...]
    ) -> "SimpleAggregateQuery":
        return SimpleAggregateQuery(self.aggregate, predicates, self.condition)

    def __str__(self) -> str:
        from repro.db.sql import render_sql

        return render_sql(self)


def _cached_query_hash(query: "SimpleAggregateQuery") -> int:
    return query._cached_hash  # type: ignore[attr-defined]


# dataclass(frozen=True) would regenerate __hash__; install the cached
# version after class creation.
SimpleAggregateQuery.__hash__ = _cached_query_hash  # type: ignore[assignment]
