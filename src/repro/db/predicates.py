"""Unary equality predicates (the only predicate form in claim queries)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.refs import ColumnRef
from repro.db.values import Value, normalize_string, values_equal
from repro.errors import QueryError


@dataclass(frozen=True)
class Predicate:
    """An equality predicate ``column = value`` (paper Definition 2)."""

    column: ColumnRef
    value: Value

    def __post_init__(self) -> None:
        if self.column.is_star:
            raise QueryError("predicates cannot restrict '*'")
        if self.value is None:
            raise QueryError("predicates cannot compare against NULL")

    @property
    def normalized_value(self) -> str:
        """Canonical value form used for grouping and cache keys."""
        return normalize_string(self.value)

    def matches(self, cell: Value) -> bool:
        return values_equal(cell, self.value)

    def sort_key(self) -> tuple[str, str, str]:
        return (self.column.table, self.column.column, self.normalized_value)

    def __str__(self) -> str:
        return f"{self.column} = {self.value!r}"


def canonical_predicates(predicates: tuple[Predicate, ...]) -> tuple[Predicate, ...]:
    """Sort predicates into canonical order and reject duplicate columns.

    The paper's query model places at most one restriction per column
    (Section 5.3 models a query by its value ``Vq(i)`` per column ``i``).
    """
    ordered = tuple(sorted(predicates, key=Predicate.sort_key))
    columns = [predicate.column for predicate in ordered]
    if len(set(columns)) != len(columns):
        raise QueryError("a query may restrict each column at most once")
    return ordered
