"""Persistent second-tier cube cache (below the in-memory ``ResultCache``).

The paper's Section 6 argument is that verification cost is dominated by
redundant query work; the in-memory :class:`~repro.db.cache.ResultCache`
exploits that *within* one process, but ablation sweeps, EM re-runs, and
parallel corpus workers repeat the same cube queries across processes. This
module adds a filesystem tier:

- Entries are keyed by ``(database content fingerprint, execution backend,
  join signature, cube signature)`` — i.e. the memory tier's ``(tables,
  aggregate spec, dimension set)`` key prefixed with a SHA-256 fingerprint
  of the database *content* and the backend name. Editing a source CSV
  changes the fingerprint, so stale cells are structurally unreachable (no
  mtime bookkeeping), and backends with different edge-case semantics
  never exchange cells.
- Each entry stores the literal coverage alongside the cells (same
  semantics as :class:`~repro.db.cache.CacheEntry`): a lookup that needs an
  uncovered literal is a miss, and a store merges with whatever is already
  on disk so coverage only grows.
- Writes go to a temporary file in the cache directory followed by
  ``os.replace``, so concurrent workers sharing one warm cache directory
  never observe torn entries (last writer wins; both payloads are valid).

Corrupt or unreadable entries are treated as misses — a cache must never
turn an IO hiccup into a pipeline failure. A corrupt *payload* (bad magic,
CRC32 mismatch, or a torn/scribbled pickle) is additionally quarantined on
the spot: the file is renamed to ``<name>.cube.corrupt`` (unlinked if even
the rename fails), so one bad file costs exactly one recompute-and-rewrite
instead of a silent perpetual miss. Quarantines are counted in
:class:`DiskCacheStats.corrupt` and mirrored into
``EngineStats.disk_corrupt`` by every engine sharing the cache.

Format v2 (this revision) adds the audit surface: every file starts with a
magic tag plus a CRC32 of the pickled payload (single bit flips are now
*detected*, not just lucky unpickle failures), the payload carries a
``meta`` block (fingerprint, backend, tables, aggregate spec, dimensions)
sufficient to *recompute* the stored cells from the source database, and
file names are prefixed with the owning database fingerprint so
:meth:`DiskCubeCache.invalidate` can drop one database's entries with a
glob. See :mod:`repro.audit.scrub` for the offline scrubber that consumes
:meth:`entries` / :meth:`read_payload` / :meth:`quarantine`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
import weakref
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro import faults
from repro.db.cube import CellKey
from repro.db.query import AggregateSpec, ColumnRef
from repro.db.schema import Database
from repro.db.values import Value
from repro.errors import InjectedFault

#: Bump when the on-disk payload layout changes; old entries become
#: unreachable (different file names) instead of unreadable.
CACHE_FORMAT_VERSION = 2

#: File preamble: magic tag, then a big-endian CRC32 of the pickled
#: payload that follows. The magic catches scribbles and foreign files;
#: the CRC catches bit rot that still unpickles.
_MAGIC = b"RCUBE2\x00"
_CRC = struct.Struct(">I")

_SEP = "\x1f"
_ROW_END = "\x1e"


def database_fingerprint(database: Database) -> str:
    """SHA-256 over the database's full content and join structure.

    Covers table names, column names/types, every cell value (with a type
    tag, so ``1`` and ``"1"`` differ), and the foreign-key edges that
    determine join signatures. Any data edit — including via a re-loaded
    CSV — yields a different fingerprint.
    """
    digest = hashlib.sha256()

    def feed(text: str) -> None:
        digest.update(text.encode("utf-8", "surrogatepass"))

    feed(f"v{CACHE_FORMAT_VERSION}{_ROW_END}")
    for fk in sorted(str(fk) for fk in database.foreign_keys):
        feed(f"F{fk}{_ROW_END}")
    for table in sorted(database.tables, key=lambda t: t.name):
        feed(f"T{table.name}{_ROW_END}")
        for column in table.columns:
            feed(f"C{column.name}:{column.type.value}{_SEP}")
        feed(_ROW_END)
        token = getattr(table, "content_token", None)
        if token is not None:
            # Storage-backed tables (e.g. SQLite files) summarize their
            # content identity without streaming every row through Python
            # — fingerprinting a 10M-row file must not materialize it.
            feed(f"K{token()}{_ROW_END}")
            continue
        for row in table.rows:
            for cell in row:
                feed(_cell_token(cell))
            feed(_ROW_END)
    return digest.hexdigest()


def _cell_token(cell: Value) -> str:
    if cell is None:
        return f"N{_SEP}"
    return f"{type(cell).__name__}:{cell!r}{_SEP}"


#: Fingerprints memoized per live Database object. Databases are immutable
#: after construction (tables/rows are tuples), so one hash per object is
#: sound; weak keys mean the memo never extends a database's lifetime.
_FINGERPRINT_MEMO: "weakref.WeakKeyDictionary[Database, str]" = (
    weakref.WeakKeyDictionary()
)


def fingerprint_of(database: Database) -> str:
    """Memoized :func:`database_fingerprint` (one content hash per object).

    The engine's disk-cache keys, the service layer's checker pool, and the
    incremental re-check tier all key state by the same content
    fingerprint; this shared memo makes sure each Database object is hashed
    once no matter how many layers ask.
    """
    fingerprint = _FINGERPRINT_MEMO.get(database)
    if fingerprint is None:
        fingerprint = database_fingerprint(database)
        _FINGERPRINT_MEMO[database] = fingerprint
    return fingerprint


@dataclass
class DiskCacheStats:
    """Filesystem-tier counters (the engine mirrors them into EngineStats)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0
    #: Corrupt payloads quarantined (a subset of ``errors``).
    corrupt: int = 0
    #: Engines that skipped the disk tier because their database fell
    #: below ``disk_cache_min_rows`` (recompute beats a disk round-trip).
    skipped_small: int = 0


class DiskCubeCache:
    """Shared, persistent store of cube cells keyed by database content.

    One instance wraps one cache directory; any number of engines (and
    processes) may share the directory concurrently.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = DiskCacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DiskCubeCache({str(self.root)!r})"

    def _entry_key(
        self,
        fingerprint: str,
        backend: str,
        tables: frozenset[str],
        spec: AggregateSpec,
        dims: tuple[ColumnRef, ...],
    ) -> str:
        # The backend is part of the key: the columnar and row-wise
        # executors have (documented) edge-case semantic differences, e.g.
        # infinite floats, so their cells must never be interchanged.
        return _SEP.join(
            [
                f"v{CACHE_FORMAT_VERSION}",
                fingerprint,
                backend,
                ",".join(sorted(tables)),
                str(spec),
                ",".join(str(dim) for dim in dims),
            ]
        )

    def _path(self, fingerprint: str, entry_key: str) -> Path:
        # The fingerprint prefix makes per-database invalidation (and the
        # scrubber's "entries owned by X" query) a filename glob instead
        # of a read-every-payload scan.
        digest = hashlib.sha256(entry_key.encode("utf-8")).hexdigest()
        return self.root / f"{fingerprint[:16]}-{digest[:48]}.cube"

    def load(
        self,
        fingerprint: str,
        backend: str,
        tables: frozenset[str],
        spec: AggregateSpec,
        dims: tuple[ColumnRef, ...],
        literal_map: dict[ColumnRef, frozenset[str]],
    ) -> tuple[dict[ColumnRef, set[str]], dict[CellKey, Value]] | None:
        """Return ``(literals, cells)`` covering ``literal_map``, else None."""
        entry_key = self._entry_key(fingerprint, backend, tables, spec, dims)
        payload = self._read(self._path(fingerprint, entry_key), entry_key)
        if payload is not None:
            literals = payload["literals"]
            covered = all(
                wanted <= literals.get(dim, set())
                for dim, wanted in literal_map.items()
            )
            if covered:
                self.stats.hits += 1
                return literals, payload["cells"]
        self.stats.misses += 1
        return None

    def store(
        self,
        fingerprint: str,
        backend: str,
        tables: frozenset[str],
        spec: AggregateSpec,
        dims: tuple[ColumnRef, ...],
        literals: dict[ColumnRef, set[str]],
        cells: dict[CellKey, Value],
    ) -> None:
        """Merge an entry into the directory with an atomic replace."""
        entry_key = self._entry_key(fingerprint, backend, tables, spec, dims)
        path = self._path(fingerprint, entry_key)
        existing = self._read(path, entry_key)
        merged_literals = {dim: set(values) for dim, values in literals.items()}
        merged_cells = dict(cells)
        if existing is not None:
            # Another run (or worker) may have covered more literals; keep
            # the union so disk coverage only grows.
            for dim, values in existing["literals"].items():
                merged_literals.setdefault(dim, set()).update(values)
            for key, value in existing["cells"].items():
                merged_cells.setdefault(key, value)
        # Fault point (semantic tier): poison a cell value *before* the
        # CRC is computed — the file is structurally pristine, so only a
        # recompute-and-compare scrub can catch it.
        # (``path.stem``, not ``.name``: a ``match="*.cube"`` glob arming
        # the structural flip below must not also consume fires here.)
        try:
            faults.fire("audit.bitflip", key=f"cell:{path.stem}")
        except InjectedFault:
            merged_cells = _poison_cells(merged_cells)
        payload = {
            "key": entry_key,
            # Everything a scrubber needs to recompute the cells from the
            # source database, without reverse-parsing the entry key.
            "meta": {
                "fingerprint": fingerprint,
                "backend": backend,
                "tables": tables,
                "spec": spec,
                "dims": dims,
            },
            "literals": merged_literals,
            "cells": merged_cells,
        }
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    body = pickle.dumps(
                        payload, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    handle.write(_MAGIC)
                    handle.write(_CRC.pack(zlib.crc32(body)))
                    handle.write(body)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self.stats.writes += 1
        except OSError:
            self.stats.errors += 1  # full/read-only disk: degrade silently
            return
        # Fault point (structural tier): flip one byte of the file just
        # written — the CRC catches it on the next read.
        faults.fire("audit.bitflip", key=path.name, payload=path)

    def _read(self, path: Path, entry_key: str | None = None) -> dict | None:
        faults.fire("diskcache.read", key=path.name, payload=path)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self.stats.errors += 1  # transient IO: miss, keep the file
            return None
        payload = _decode(blob)
        if payload is None:
            # Bad magic, CRC mismatch, or a torn pickle: quarantine so the
            # next store rewrites a fresh entry instead of missing forever.
            self.stats.errors += 1
            self.stats.corrupt += 1
            self._quarantine(path)
            return None
        # SHA-256 collisions are fantasy, but the stored key also guards
        # against format drift and hand-copied cache directories.
        if entry_key is not None and payload.get("key") != entry_key:
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the ``*.cube`` namespace."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                self.stats.errors += 1  # truly stuck: next read retries

    # -- audit surface -------------------------------------------------

    def entries(self) -> list[Path]:
        """Every live entry file, sorted for deterministic scrub order."""
        return sorted(self.root.glob("*.cube"))

    def paths_for(self, fingerprint: str) -> list[Path]:
        """Live entries owned by one database fingerprint."""
        return sorted(self.root.glob(f"{fingerprint[:16]}-*.cube"))

    def read_payload(self, path: Path) -> dict | None:
        """Structurally validate one entry (corrupt files are quarantined).

        Returns the decoded payload, or None when the file is missing or
        failed magic/CRC/unpickle validation (counted and quarantined,
        same as a production read).
        """
        return self._read(path)

    def quarantine(self, path: Path) -> None:
        """Quarantine an entry the *scrubber* proved wrong (bit-identity
        failure against a recompute) — structural corruption is already
        quarantined by :meth:`read_payload`."""
        self.stats.corrupt += 1
        self._quarantine(path)

    def invalidate(self, fingerprint: str) -> int:
        """Drop every entry owned by a database fingerprint.

        Called when the shadow auditor catches a divergence: one proven-bad
        tier member poisons trust in all of that database's cells, and a
        recompute is always safe.
        """
        removed = 0
        for path in self.paths_for(fingerprint):
            try:
                path.unlink()
                removed += 1
            except OSError:
                self.stats.errors += 1
        return removed

    def clear(self) -> None:
        """Remove every entry (leaves the directory in place)."""
        for path in self.root.glob("*.cube"):
            try:
                path.unlink()
            except OSError:
                self.stats.errors += 1


def _decode(blob: bytes) -> dict | None:
    """Validate magic + CRC framing and unpickle; None on any corruption."""
    if not blob.startswith(_MAGIC) or len(blob) < len(_MAGIC) + _CRC.size:
        return None
    offset = len(_MAGIC)
    (crc,) = _CRC.unpack_from(blob, offset)
    body = blob[offset + _CRC.size:]
    if zlib.crc32(body) != crc:
        return None
    try:
        payload = pickle.loads(body)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def _poison_cells(cells: dict[CellKey, Value]) -> dict[CellKey, Value]:
    """Corrupt one cell value (the ``audit.bitflip`` semantic action).

    Prefers a cell outside the default bucket: default-bucket values are
    legitimately irreproducible from a merged literal set, so the
    scrubber skips them — poisoning one would be undetectable by design.
    """
    from repro.db.values import DEFAULT_LITERAL

    ordered = sorted(cells, key=repr)
    candidates = [
        key
        for key in ordered
        if not any(part == DEFAULT_LITERAL for part in key)
    ] or ordered
    poisoned = dict(cells)
    for key in candidates:
        value = poisoned[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            poisoned[key] = 1  # None/str/bool: any wrong-typed stand-in
        else:
            poisoned[key] = value + 1
        break
    return poisoned
