"""Persistent second-tier cube cache (below the in-memory ``ResultCache``).

The paper's Section 6 argument is that verification cost is dominated by
redundant query work; the in-memory :class:`~repro.db.cache.ResultCache`
exploits that *within* one process, but ablation sweeps, EM re-runs, and
parallel corpus workers repeat the same cube queries across processes. This
module adds a filesystem tier:

- Entries are keyed by ``(database content fingerprint, execution backend,
  join signature, cube signature)`` — i.e. the memory tier's ``(tables,
  aggregate spec, dimension set)`` key prefixed with a SHA-256 fingerprint
  of the database *content* and the backend name. Editing a source CSV
  changes the fingerprint, so stale cells are structurally unreachable (no
  mtime bookkeeping), and backends with different edge-case semantics
  never exchange cells.
- Each entry stores the literal coverage alongside the cells (same
  semantics as :class:`~repro.db.cache.CacheEntry`): a lookup that needs an
  uncovered literal is a miss, and a store merges with whatever is already
  on disk so coverage only grows.
- Writes go to a temporary file in the cache directory followed by
  ``os.replace``, so concurrent workers sharing one warm cache directory
  never observe torn entries (last writer wins; both payloads are valid).

Corrupt or unreadable entries are treated as misses — a cache must never
turn an IO hiccup into a pipeline failure. A corrupt *payload* (torn or
scribbled pickle) is additionally quarantined on the spot: the file is
renamed to ``<name>.cube.corrupt`` (unlinked if even the rename fails),
so one bad file costs exactly one recompute-and-rewrite instead of a
silent perpetual miss. Quarantines are counted in
:class:`DiskCacheStats.corrupt` and mirrored into
``EngineStats.disk_corrupt`` by every engine sharing the cache.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import weakref
from dataclasses import dataclass
from pathlib import Path

from repro import faults
from repro.db.cube import CellKey
from repro.db.query import AggregateSpec, ColumnRef
from repro.db.schema import Database
from repro.db.values import Value

#: Bump when the on-disk payload layout changes; old entries become
#: unreachable (different file names) instead of unreadable.
CACHE_FORMAT_VERSION = 1

_SEP = "\x1f"
_ROW_END = "\x1e"


def database_fingerprint(database: Database) -> str:
    """SHA-256 over the database's full content and join structure.

    Covers table names, column names/types, every cell value (with a type
    tag, so ``1`` and ``"1"`` differ), and the foreign-key edges that
    determine join signatures. Any data edit — including via a re-loaded
    CSV — yields a different fingerprint.
    """
    digest = hashlib.sha256()

    def feed(text: str) -> None:
        digest.update(text.encode("utf-8", "surrogatepass"))

    feed(f"v{CACHE_FORMAT_VERSION}{_ROW_END}")
    for fk in sorted(str(fk) for fk in database.foreign_keys):
        feed(f"F{fk}{_ROW_END}")
    for table in sorted(database.tables, key=lambda t: t.name):
        feed(f"T{table.name}{_ROW_END}")
        for column in table.columns:
            feed(f"C{column.name}:{column.type.value}{_SEP}")
        feed(_ROW_END)
        for row in table.rows:
            for cell in row:
                feed(_cell_token(cell))
            feed(_ROW_END)
    return digest.hexdigest()


def _cell_token(cell: Value) -> str:
    if cell is None:
        return f"N{_SEP}"
    return f"{type(cell).__name__}:{cell!r}{_SEP}"


#: Fingerprints memoized per live Database object. Databases are immutable
#: after construction (tables/rows are tuples), so one hash per object is
#: sound; weak keys mean the memo never extends a database's lifetime.
_FINGERPRINT_MEMO: "weakref.WeakKeyDictionary[Database, str]" = (
    weakref.WeakKeyDictionary()
)


def fingerprint_of(database: Database) -> str:
    """Memoized :func:`database_fingerprint` (one content hash per object).

    The engine's disk-cache keys, the service layer's checker pool, and the
    incremental re-check tier all key state by the same content
    fingerprint; this shared memo makes sure each Database object is hashed
    once no matter how many layers ask.
    """
    fingerprint = _FINGERPRINT_MEMO.get(database)
    if fingerprint is None:
        fingerprint = database_fingerprint(database)
        _FINGERPRINT_MEMO[database] = fingerprint
    return fingerprint


@dataclass
class DiskCacheStats:
    """Filesystem-tier counters (the engine mirrors them into EngineStats)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0
    #: Corrupt payloads quarantined (a subset of ``errors``).
    corrupt: int = 0


class DiskCubeCache:
    """Shared, persistent store of cube cells keyed by database content.

    One instance wraps one cache directory; any number of engines (and
    processes) may share the directory concurrently.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = DiskCacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DiskCubeCache({str(self.root)!r})"

    def _entry_key(
        self,
        fingerprint: str,
        backend: str,
        tables: frozenset[str],
        spec: AggregateSpec,
        dims: tuple[ColumnRef, ...],
    ) -> str:
        # The backend is part of the key: the columnar and row-wise
        # executors have (documented) edge-case semantic differences, e.g.
        # infinite floats, so their cells must never be interchanged.
        return _SEP.join(
            [
                f"v{CACHE_FORMAT_VERSION}",
                fingerprint,
                backend,
                ",".join(sorted(tables)),
                str(spec),
                ",".join(str(dim) for dim in dims),
            ]
        )

    def _path(self, entry_key: str) -> Path:
        digest = hashlib.sha256(entry_key.encode("utf-8")).hexdigest()
        return self.root / f"{digest}.cube"

    def load(
        self,
        fingerprint: str,
        backend: str,
        tables: frozenset[str],
        spec: AggregateSpec,
        dims: tuple[ColumnRef, ...],
        literal_map: dict[ColumnRef, frozenset[str]],
    ) -> tuple[dict[ColumnRef, set[str]], dict[CellKey, Value]] | None:
        """Return ``(literals, cells)`` covering ``literal_map``, else None."""
        entry_key = self._entry_key(fingerprint, backend, tables, spec, dims)
        payload = self._read(self._path(entry_key), entry_key)
        if payload is not None:
            literals = payload["literals"]
            covered = all(
                wanted <= literals.get(dim, set())
                for dim, wanted in literal_map.items()
            )
            if covered:
                self.stats.hits += 1
                return literals, payload["cells"]
        self.stats.misses += 1
        return None

    def store(
        self,
        fingerprint: str,
        backend: str,
        tables: frozenset[str],
        spec: AggregateSpec,
        dims: tuple[ColumnRef, ...],
        literals: dict[ColumnRef, set[str]],
        cells: dict[CellKey, Value],
    ) -> None:
        """Merge an entry into the directory with an atomic replace."""
        entry_key = self._entry_key(fingerprint, backend, tables, spec, dims)
        path = self._path(entry_key)
        existing = self._read(path, entry_key)
        merged_literals = {dim: set(values) for dim, values in literals.items()}
        merged_cells = dict(cells)
        if existing is not None:
            # Another run (or worker) may have covered more literals; keep
            # the union so disk coverage only grows.
            for dim, values in existing["literals"].items():
                merged_literals.setdefault(dim, set()).update(values)
            for key, value in existing["cells"].items():
                merged_cells.setdefault(key, value)
        payload = {
            "key": entry_key,
            "literals": merged_literals,
            "cells": merged_cells,
        }
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self.stats.writes += 1
        except OSError:
            self.stats.errors += 1  # full/read-only disk: degrade silently

    def _read(self, path: Path, entry_key: str) -> dict | None:
        faults.fire("diskcache.read", key=path.name, payload=path)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except OSError:
            self.stats.errors += 1  # transient IO: miss, keep the file
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # The payload itself is bad: quarantine so the next store
            # rewrites a fresh entry instead of missing on it forever.
            self.stats.errors += 1
            self.stats.corrupt += 1
            self._quarantine(path)
            return None
        # SHA-256 collisions are fantasy, but the stored key also guards
        # against format drift and hand-copied cache directories.
        if not isinstance(payload, dict) or payload.get("key") != entry_key:
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the ``*.cube`` namespace."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                self.stats.errors += 1  # truly stuck: next read retries

    def clear(self) -> None:
        """Remove every entry (leaves the directory in place)."""
        for path in self.root.glob("*.cube"):
            try:
                path.unlink()
            except OSError:
                self.stats.errors += 1
