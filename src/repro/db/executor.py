"""Direct (naive) execution of Simple Aggregate Queries.

This is the reference semantics: the cube operator and the merging engine
are property-tested against it. One call evaluates one query by
materializing the joined relation, filtering by predicates, and computing
the aggregate. Ratio functions evaluate the count queries from the paper's
footnote 1 definition.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.db.aggregates import AggregateFunction, compute_plain, ratio_value
from repro.db.columnar import ColumnarRelation, execute_columnar_query
from repro.db.joins import JoinGraph, Relation
from repro.db.predicates import Predicate
from repro.db.query import SimpleAggregateQuery
from repro.db.schema import Database
from repro.db.values import Value, is_missing
from repro.errors import QueryError


def execute_query(
    database: Database,
    query: SimpleAggregateQuery,
    join_graph: JoinGraph | None = None,
) -> Value:
    """Evaluate one Simple Aggregate Query; returns a number or NULL."""
    graph = join_graph or JoinGraph(database)
    relation = base_relation(database, query, graph)
    if isinstance(relation, ColumnarRelation):
        return execute_columnar_query(relation, query)
    if query.aggregate.function.is_ratio:
        return _ratio(relation, query)
    cells = _filtered_cells(relation, query.aggregate, query.all_predicates)
    return compute_plain(query.aggregate.function, cells)


def base_relation(
    database: Database,
    query: SimpleAggregateQuery,
    graph: JoinGraph,
) -> Relation | ColumnarRelation:
    """The joined relation implied by the query's referenced columns."""
    tables = query.referenced_tables()
    if not tables:
        # Count(*) with no predicates on a table-less star: only meaningful
        # for single-table databases.
        if len(database.tables) != 1:
            raise QueryError(
                "table-less query is ambiguous on a multi-table database"
            )
        tables = frozenset({database.tables[0].name})
    return graph.relation(tables)


def count_matching(
    relation: Relation,
    aggregate_column,  # ColumnRef
    predicates: Sequence[Predicate],
) -> int:
    """Count rows satisfying ``predicates``; for a real aggregation column,
    only rows where that column is non-missing (SQL ``Count(col)``)."""
    predicate_indexes = [
        (relation.column_index(predicate.column), predicate)
        for predicate in predicates
    ]
    if aggregate_column.is_star:
        column_index = None
    else:
        column_index = relation.column_index(aggregate_column)
    total = 0
    for row in relation.rows:
        if any(not p.matches(row[i]) for i, p in predicate_indexes):
            continue
        if column_index is not None and is_missing(row[column_index]):
            continue
        total += 1
    return total


def _filtered_cells(
    relation: Relation,
    aggregate,  # AggregateSpec
    predicates: Sequence[Predicate],
) -> list[Value]:
    predicate_indexes = [
        (relation.column_index(predicate.column), predicate)
        for predicate in predicates
    ]
    star = aggregate.column.is_star
    column_index = None if star else relation.column_index(aggregate.column)
    cells: list[Value] = []
    for row in relation.rows:
        if any(not p.matches(row[i]) for i, p in predicate_indexes):
            continue
        # Count(*) counts rows; represent each row by a non-missing marker.
        cells.append(1 if star else row[column_index])
    return cells


def _ratio(relation: Relation, query: SimpleAggregateQuery) -> Value:
    fn = query.aggregate.function
    column = query.aggregate.column
    if fn is AggregateFunction.PERCENTAGE:
        numerator = count_matching(relation, column, query.all_predicates)
        denominator = count_matching(relation, column, ())
    else:  # CONDITIONAL_PROBABILITY: condition is the denominator filter
        assert query.condition is not None
        numerator = count_matching(relation, column, query.all_predicates)
        denominator = count_matching(relation, column, (query.condition,))
    return ratio_value(numerator, denominator)
