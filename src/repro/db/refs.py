"""Column references shared by predicates, queries, and relations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A ``table.column`` reference.

    ``table`` may be empty for the table-less ``*`` used by ``Count(*)`` on
    single-table databases; multi-table databases use per-table stars
    (``ColumnRef("t", "*")``).
    """

    table: str
    column: str

    def __post_init__(self) -> None:
        if not self.column:
            raise QueryError("column reference must name a column")

    @property
    def is_star(self) -> bool:
        return self.column == "*"

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


#: The table-less "all columns" reference used as a Count argument.
STAR = ColumnRef("", "*")
