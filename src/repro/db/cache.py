"""Result cache for cube cells (paper Section 6.3).

Cache entries are keyed by (table set, aggregation function, aggregation
column, cube-dimension set) — exactly the granularity the paper found to be
the best trade-off. The entry does *not* key on the literal sets: cells for
specific literals and ``ALL`` cells are independent of which *other*
literals were collapsed into the default bucket, so entries stay valid when
literal sets differ across claims or EM iterations. Each entry remembers the
literals it has cells for; a lookup that needs an uncovered literal is a
miss, and the refreshed entry merges in the new cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.aggregates import AggregateFunction
from repro.db.cube import CellKey
from repro.db.query import AggregateSpec, ColumnRef
from repro.db.values import Value

CacheKey = tuple[frozenset[str], AggregateSpec, tuple[ColumnRef, ...]]

#: Aggregates whose empty-group cells are 0 rather than NULL.
_ZERO_ON_EMPTY = (AggregateFunction.COUNT, AggregateFunction.COUNT_DISTINCT)


@dataclass
class CacheEntry:
    """Cells of one aggregate over one dimension set.

    The entry knows its aggregate spec so consumers (the per-query answer
    path and the cell-gather kernels alike) can resolve empty-group cells
    through one place: :meth:`lookup` applies SQL semantics for groups the
    cube never produced (counts are 0, every other aggregate is NULL).
    """

    spec: AggregateSpec
    dimensions: tuple[ColumnRef, ...]
    literals: dict[ColumnRef, set[str]]
    cells: dict[CellKey, Value]

    def empty_value(self) -> Value:
        """Value of a cell for an empty group under this entry's spec."""
        return 0 if self.spec.function in _ZERO_ON_EMPTY else None

    def lookup(self, key: CellKey) -> Value:
        """Cell value for ``key`` with the empty-group default applied."""
        return self.cells.get(key, self.empty_value())

    def covers(self, literal_map: dict[ColumnRef, frozenset[str]]) -> bool:
        """True if every requested literal already has cells."""
        for dim, wanted in literal_map.items():
            if not wanted <= self.literals.get(dim, set()):
                return False
        return True

    def merge(
        self,
        literal_map: dict[ColumnRef, frozenset[str]],
        cells: dict[CellKey, Value],
    ) -> None:
        """Fold in freshly computed cells (new literals extend coverage)."""
        for dim, literals in literal_map.items():
            self.literals.setdefault(dim, set()).update(literals)
        self.cells.update(cells)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class ResultCache:
    """Cross-claim, cross-iteration cache of cube cells."""

    def __init__(self) -> None:
        self._entries: dict[CacheKey, CacheEntry] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        tables: frozenset[str],
        spec: AggregateSpec,
        dimensions: tuple[ColumnRef, ...],
        literal_map: dict[ColumnRef, frozenset[str]],
    ) -> CacheEntry | None:
        """Return a covering entry, or None (and count a miss)."""
        entry = self._entries.get((tables, spec, dimensions))
        if entry is not None and entry.covers(literal_map):
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        return None

    def put(
        self,
        tables: frozenset[str],
        spec: AggregateSpec,
        dimensions: tuple[ColumnRef, ...],
        literal_map: dict[ColumnRef, frozenset[str]],
        cells: dict[CellKey, Value],
    ) -> CacheEntry:
        """Insert or extend the entry for this key."""
        key = (tables, spec, dimensions)
        entry = self._entries.get(key)
        if entry is None:
            entry = CacheEntry(
                spec,
                dimensions,
                {dim: set(literals) for dim, literals in literal_map.items()},
                dict(cells),
            )
            self._entries[key] = entry
        else:
            entry.merge(literal_map, cells)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self.stats.reset()
