"""Join-path discovery and equi-join materialization.

The paper connects tables "via equi-joins along foreign-key-primary-key join
paths" and "assumes that the database schema is acyclic" (Sections 4.4 and
6.3). Acyclicity makes the join path between any two tables unique, so the
FROM clause is fully determined by the columns a query references.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from repro.db.columnar import (
    ColumnarRelation,
    EncodedTable,
    ExecutionBackend,
    build_columnar_relation,
    encode_table,
)
from repro.db.refs import ColumnRef
from repro.db.schema import Database, ForeignKey
from repro.db.values import Value, normalize_string
from repro.errors import JoinPathError, UnknownTableError


class Relation:
    """A materialized (possibly joined) row set with table-qualified columns."""

    def __init__(
        self, columns: Sequence[ColumnRef], rows: list[tuple[Value, ...]]
    ) -> None:
        self.columns: tuple[ColumnRef, ...] = tuple(columns)
        self._index = {column: i for i, column in enumerate(self.columns)}
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def column_index(self, column: ColumnRef) -> int:
        try:
            return self._index[column]
        except KeyError:
            raise JoinPathError(f"column {column} not in relation") from None

    def has_column(self, column: ColumnRef) -> bool:
        return column in self._index

    def column_values(self, column: ColumnRef) -> Iterable[Value]:
        index = self.column_index(column)
        return (row[index] for row in self.rows)


class JoinPath:
    """The tables and foreign keys connecting a requested table set."""

    def __init__(self, tables: tuple[str, ...], edges: tuple[ForeignKey, ...]) -> None:
        self.tables = tables
        self.edges = edges

    def __repr__(self) -> str:
        return f"JoinPath(tables={self.tables}, edges={len(self.edges)})"


class JoinGraph:
    """Schema graph over tables, with memoized joined relations.

    Joined relations can be large; the memo keyed by the requested table set
    lets candidate evaluation reuse one materialization across thousands of
    query candidates (this is part of what makes Table 6's merged mode fast).

    ``backend`` selects the physical representation: ``ROW`` materializes
    tuple-based :class:`Relation` objects (the reference path), ``COLUMNAR``
    materializes dictionary-encoded
    :class:`~repro.db.columnar.ColumnarRelation` objects via a hash join on
    integer key codes; base tables are encoded once and memoized.
    """

    def __init__(
        self,
        database: Database,
        backend: ExecutionBackend = ExecutionBackend.ROW,
    ) -> None:
        self.database = database
        self.backend = backend
        self._adjacent: dict[str, list[ForeignKey]] = {
            table.name: [] for table in database.tables
        }
        for fk in database.foreign_keys:
            self._adjacent[fk.source_table].append(fk)
            self._adjacent[fk.target_table].append(fk)
        self._relations: dict[frozenset[str], Relation | ColumnarRelation] = {}
        self._encoded: dict[str, EncodedTable] = {}

    def join_path(self, tables: Iterable[str]) -> JoinPath:
        """Smallest join tree covering ``tables`` (unique on acyclic graphs)."""
        wanted = set(tables)
        for name in wanted:
            if not self.database.has_table(name):
                raise UnknownTableError(name)
        if not wanted:
            raise JoinPathError("join path requires at least one table")
        start = min(wanted)
        if len(wanted) == 1:
            return JoinPath((start,), ())
        parents = self._bfs_tree(start)
        needed_tables: set[str] = set()
        needed_edges: list[ForeignKey] = []
        seen_edges: set[tuple[str, str]] = set()
        for target in wanted:
            if target not in parents:
                raise JoinPathError(
                    f"no join path connects {start!r} and {target!r} "
                    f"in database {self.database.name!r}"
                )
            node = target
            needed_tables.add(node)
            while parents[node] is not None:
                parent, edge = parents[node]  # type: ignore[misc]
                key = tuple(sorted((node, parent)))
                if key not in seen_edges:
                    seen_edges.add(key)
                    needed_edges.append(edge)
                needed_tables.add(parent)
                node = parent
        ordered = self._order_tables(start, needed_tables, needed_edges)
        return JoinPath(tuple(ordered), tuple(needed_edges))

    def relation(self, tables: Iterable[str]) -> Relation | ColumnarRelation:
        """Materialized equi-join over the join tree covering ``tables``."""
        key = frozenset(tables)
        if key not in self._relations:
            self._relations[key] = self._build_relation(key)
        return self._relations[key]

    def is_materialized(self, tables: Iterable[str]) -> bool:
        """Whether the joined relation for ``tables`` is already memoized
        (lets callers attribute materialization cost to the first build)."""
        return frozenset(tables) in self._relations

    def encoded_table(self, name: str) -> EncodedTable:
        """Dictionary-encode a base table once; reused by every join."""
        if name not in self._encoded:
            self._encoded[name] = encode_table(self.database.table(name))
        return self._encoded[name]

    def clear_memo(self) -> None:
        self._relations.clear()
        self._encoded.clear()

    def _bfs_tree(
        self, start: str
    ) -> dict[str, tuple[str, ForeignKey] | None]:
        parents: dict[str, tuple[str, ForeignKey] | None] = {start: None}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for fk in self._adjacent[node]:
                neighbor = fk.target_table if fk.source_table == node else fk.source_table
                if neighbor not in parents:
                    parents[neighbor] = (node, fk)
                    queue.append(neighbor)
        return parents

    def _order_tables(
        self, start: str, tables: set[str], edges: list[ForeignKey]
    ) -> list[str]:
        """Order tables so each (after the first) joins to an earlier one."""
        ordered = [start]
        placed = {start}
        remaining = list(edges)
        while remaining:
            progress = False
            for edge in list(remaining):
                sides = {edge.source_table, edge.target_table}
                overlap = sides & placed
                if overlap:
                    new = sides - placed
                    ordered.extend(sorted(new))
                    placed |= new
                    remaining.remove(edge)
                    progress = True
            if not progress:
                raise JoinPathError("disconnected join tree")
        for table in sorted(tables - placed):
            ordered.append(table)
        return ordered

    def _build_relation(self, tables: frozenset[str]) -> Relation | ColumnarRelation:
        path = self.join_path(tables)
        database = self.database
        if self.backend is ExecutionBackend.COLUMNAR:
            return build_columnar_relation(database, path, self.encoded_table)
        first = database.table(path.tables[0])
        columns: list[ColumnRef] = [
            ColumnRef(first.name, column.name) for column in first.columns
        ]
        rows = [tuple(row) for row in first.rows]
        joined = {first.name}
        pending = list(path.edges)
        while pending:
            edge = next(
                (
                    fk
                    for fk in pending
                    if fk.source_table in joined or fk.target_table in joined
                ),
                None,
            )
            if edge is None:
                raise JoinPathError("disconnected join tree")
            pending.remove(edge)
            if edge.source_table in joined:
                existing_col = ColumnRef(edge.source_table, edge.source_column)
                new_table = database.table(edge.target_table)
                new_key = edge.target_column
            else:
                existing_col = ColumnRef(edge.target_table, edge.target_column)
                new_table = database.table(edge.source_table)
                new_key = edge.source_column
            index = columns.index(existing_col)
            key_index = new_table.column_index(new_key)
            buckets: dict[str, list[tuple[Value, ...]]] = {}
            for row in new_table.rows:
                cell = row[key_index]
                if cell is None:
                    continue
                buckets.setdefault(normalize_string(cell), []).append(row)
            new_rows: list[tuple[Value, ...]] = []
            for row in rows:
                cell = row[index]
                if cell is None:
                    continue
                for match in buckets.get(normalize_string(cell), ()):
                    new_rows.append(row + match)
            columns.extend(
                ColumnRef(new_table.name, column.name) for column in new_table.columns
            )
            rows = new_rows
            joined.add(new_table.name)
        return Relation(columns, rows)
