"""Pluggable storage adapters behind the query engine.

Public surface re-exported here:

- :class:`StorageAdapter`, :class:`AdapterCapabilities`,
  :class:`SimpleResult` — the adapter contract;
- :func:`create_adapter`, :func:`adapter_names`, :func:`adapter_class`,
  :func:`canonical_backend_name`, :func:`register_adapter` — the registry
  (the successor of the old two-value ``ExecutionBackend`` enum as the
  engine's backend-selection surface);
- :func:`load_sqlite_database`, :class:`SqlBackedTable` — out-of-core
  SQLite-file databases.
"""

from repro.db.adapters.base import (
    AdapterCapabilities,
    SimpleResult,
    StorageAdapter,
    adapter_class,
    adapter_names,
    canonical_backend_name,
    create_adapter,
    register_adapter,
)
from repro.db.adapters.sqlite import (
    SqlBackedTable,
    SqliteAdapter,
    load_sqlite_database,
)
from repro.db.adapters.memory import ColumnarAdapter, InMemoryAdapter, RowAdapter
from repro.db.adapters.duckdb import DuckdbAdapter

__all__ = [
    "AdapterCapabilities",
    "ColumnarAdapter",
    "DuckdbAdapter",
    "InMemoryAdapter",
    "RowAdapter",
    "SimpleResult",
    "SqlBackedTable",
    "SqliteAdapter",
    "StorageAdapter",
    "adapter_class",
    "adapter_names",
    "canonical_backend_name",
    "create_adapter",
    "load_sqlite_database",
    "register_adapter",
]
