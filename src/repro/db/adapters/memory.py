"""In-memory adapters: the columnar and row-wise execution paths.

These wrap the pre-existing machinery — :class:`~repro.db.joins.JoinGraph`
materialization, :func:`~repro.db.executor.execute_query`, and
:func:`~repro.db.cube.execute_cube` — behind the
:class:`~repro.db.adapters.base.StorageAdapter` interface. Results are
bit-identical to the pre-adapter engine: the adapter layer only adds
accounting (``rows_materialized``) and a predictive join-cardinality
estimate used by budget admission.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

from repro.db.adapters.base import (
    AdapterCapabilities,
    SimpleResult,
    StorageAdapter,
    register_adapter,
)
from repro.db.columnar import ExecutionBackend
from repro.db.cube import execute_cube
from repro.db.executor import execute_query
from repro.db.joins import JoinGraph
from repro.db.values import normalize_string

if TYPE_CHECKING:
    from repro.budget import ResourceBudget
    from repro.db.cube import CubeQuery, CubeResult
    from repro.db.query import SimpleAggregateQuery
    from repro.db.schema import Database


class InMemoryAdapter(StorageAdapter):
    """Shared base: joined relations are materialized Python objects."""

    backend: ClassVar[ExecutionBackend]

    def __init__(self, database: "Database") -> None:
        super().__init__(database)
        self.join_graph = JoinGraph(database, backend=self.backend)
        #: max rows per join-key value, memoized per (table, column).
        self._multiplicity: dict[tuple[str, str], int] = {}

    # -- execution -----------------------------------------------------

    def execute_simple(self, query: "SimpleAggregateQuery") -> SimpleResult:
        tables = self._query_tables(query)
        relation = self._relation(tables)
        value = execute_query(self.database, query, self.join_graph)
        return SimpleResult(value, len(relation))

    def execute_cube(
        self, cube: "CubeQuery", budget: "ResourceBudget | None" = None
    ) -> "CubeResult":
        tables = cube.tables or frozenset(
            {self.database.single_table().name}
        )
        self._relation(tables)
        return execute_cube(self.database, cube, self.join_graph, budget=budget)

    # -- cardinality ---------------------------------------------------

    def estimated_cardinality(self, tables: frozenset[str]) -> int:
        """Fan-out-aware upper bound on the joined row count.

        Walks the join tree without building it: starting from the first
        table's row count, each join edge multiplies by the *maximum
        multiplicity* of the incoming table's join key (the most rows any
        single key value matches). This bounds the true join size from
        above, so budget admission sees a many-to-many blow-up before a
        single joined row exists in memory. Already-memoized relations
        answer exactly.
        """
        key = frozenset(tables)
        if self.join_graph.is_materialized(key):
            return len(self.join_graph.relation(key))
        path = self.join_graph.join_path(key)
        database = self.database
        estimate = len(database.table(path.tables[0]))
        joined = {path.tables[0]}
        pending = list(path.edges)
        while pending:
            edge = next(
                (
                    fk
                    for fk in pending
                    if fk.source_table in joined or fk.target_table in joined
                ),
                None,
            )
            if edge is None:  # pragma: no cover - join_path emits trees
                break
            pending.remove(edge)
            if edge.source_table in joined:
                new_table, new_key = edge.target_table, edge.target_column
            else:
                new_table, new_key = edge.source_table, edge.source_column
            estimate *= self._max_multiplicity(new_table, new_key)
            joined.add(new_table)
        return estimate

    def exact_cardinality(self, tables: frozenset[str]) -> int:
        """Exact count via materialization (memoized by the join graph —
        at worst the one build the engine was about to do anyway)."""
        return len(self._relation(tables))

    # -- internals -----------------------------------------------------

    def _relation(self, tables: frozenset[str]):
        fresh = not self.join_graph.is_materialized(tables)
        relation = self.join_graph.relation(tables)
        if fresh:
            self.rows_materialized += len(relation)
        return relation

    def _max_multiplicity(self, table: str, column: str) -> int:
        memo_key = (table, column)
        cached = self._multiplicity.get(memo_key)
        if cached is not None:
            return cached
        counts: dict[str, int] = {}
        for cell in self.database.table(table).column_values(column):
            if cell is None:
                continue  # NULL keys never join (matches the hash join)
            key = normalize_string(cell)
            counts[key] = counts.get(key, 0) + 1
        result = max(counts.values(), default=0)
        self._multiplicity[memo_key] = result
        return result

    def _query_tables(self, query: "SimpleAggregateQuery") -> frozenset[str]:
        tables = query.referenced_tables()
        if not tables:
            tables = frozenset({self.database.single_table().name})
        return tables


@register_adapter
class ColumnarAdapter(InMemoryAdapter):
    """Dictionary-encoded columnar execution (NumPy-vectorized when
    available, pure Python otherwise). The default backend."""

    name = "columnar"
    backend = ExecutionBackend.COLUMNAR
    capabilities = AdapterCapabilities(estimates_cardinality=True)


@register_adapter
class RowAdapter(InMemoryAdapter):
    """Tuple-at-a-time execution — the reference oracle every other
    adapter is property-tested against."""

    name = "row"
    backend = ExecutionBackend.ROW
    capabilities = AdapterCapabilities(estimates_cardinality=True)
