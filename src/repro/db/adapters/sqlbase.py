"""Shared machinery for SQL pushdown adapters (SQLite, DuckDB).

The engine's semantics are defined by the row-wise reference path:
case-insensitive normalized-string equality, forgiving numeric coercion
(``"$1,200"`` is 1200), NULL-and-blank missingness. A SQL engine knows
none of that, so the scalar layer stays in Python — four deterministic
UDFs registered on the connection:

- ``rnorm(x)``  → :func:`~repro.db.values.normalize_string`
- ``rnum(x)``   → :func:`~repro.db.values.coerce_number` (NULL if not numeric)
- ``rmiss(x)``  → 1 if :func:`~repro.db.values.is_missing` else 0
- ``req(x, y)`` → 1 if :func:`~repro.db.values.values_equal` else 0

while joins, grouping, and aggregation push down as generated SQL. Cube
queries emulate ``GROUP BY GROUPING SETS`` with one ``UNION ALL`` arm per
dimension subset over a shared base CTE (SQLite has no native GROUPING
SETS); each arm computes the same mergeable partials as the row path's
``_Partial`` accumulator, and finalization happens in Python with the
identical branching, which is what makes verdicts bit-identical.

All statements are parameterized (qmark style, identifiers quoted via
:func:`repro.db.sql.quote_identifier`); no cell value or claim literal is
ever interpolated into SQL text.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING

from repro.db.adapters.base import SimpleResult, StorageAdapter
from repro.db.aggregates import AggregateFunction, ratio_value
from repro.db.columnar import ExecutionBackend
from repro.db.cube import ALL, CellKey, CubeResult
from repro.db.joins import JoinGraph, JoinPath
from repro.db.query import AggregateSpec, ColumnRef
from repro.db.sql import quote_identifier
from repro.db.values import DEFAULT_LITERAL, Value
from repro.errors import JoinPathError, QueryError

if TYPE_CHECKING:
    from repro.budget import ResourceBudget
    from repro.db.cube import CubeQuery
    from repro.db.query import SimpleAggregateQuery
    from repro.db.schema import Database

#: Partial-aggregate fields an arm can compute per aggregation column,
#: in result-row layout order.
_FIELD_ORDER = ("count", "distinct", "ncount", "total", "minimum", "maximum")

#: Fields needed per aggregate function (star COUNT needs only ``rows``,
#: which every arm computes).
_FIELDS_BY_FN = {
    AggregateFunction.COUNT: ("count",),
    AggregateFunction.COUNT_DISTINCT: ("distinct",),
    AggregateFunction.SUM: ("ncount", "total"),
    AggregateFunction.AVG: ("ncount", "total"),
    AggregateFunction.MIN: ("ncount", "minimum"),
    AggregateFunction.MAX: ("ncount", "maximum"),
}


def _column_expr(ref: ColumnRef) -> str:
    return f"{quote_identifier(ref.table)}.{quote_identifier(ref.column)}"


def join_clause(join_graph: JoinGraph, tables: frozenset[str]) -> str:
    """``FROM``/``JOIN`` text for the join tree covering ``tables``.

    Mirrors the row-wise hash join exactly: inner equi-joins on
    ``rnorm()`` equality with SQL-NULL keys excluded on both sides
    (blank-string keys *do* join — they normalize to ``""`` like the
    reference path).
    """
    path: JoinPath = join_graph.join_path(tables)
    sql = quote_identifier(path.tables[0])
    joined = {path.tables[0]}
    pending = list(path.edges)
    while pending:
        edge = next(
            (
                fk
                for fk in pending
                if fk.source_table in joined or fk.target_table in joined
            ),
            None,
        )
        if edge is None:
            raise JoinPathError("disconnected join tree")
        pending.remove(edge)
        if edge.source_table in joined:
            known = _column_expr(ColumnRef(edge.source_table, edge.source_column))
            new_table, new_key = edge.target_table, edge.target_column
        else:
            known = _column_expr(ColumnRef(edge.target_table, edge.target_column))
            new_table, new_key = edge.source_table, edge.source_column
        incoming = _column_expr(ColumnRef(new_table, new_key))
        sql += (
            f" JOIN {quote_identifier(new_table)} ON {known} IS NOT NULL"
            f" AND {incoming} IS NOT NULL"
            f" AND rnorm({known}) = rnorm({incoming})"
        )
        joined.add(new_table)
    return sql


def _predicate_condition(predicate) -> tuple[str, Value]:
    """``req(col, ?) = 1`` plus its bind parameter."""
    return f"req({_column_expr(predicate.column)}, ?) = 1", predicate.value


class _CubePlan:
    """A compiled cube statement plus the recipe to decode its rows."""

    __slots__ = ("sql", "params", "n_dims", "columns", "needs")

    def __init__(self, cube: "CubeQuery", join_graph: JoinGraph) -> None:
        tables = cube.tables or frozenset(
            {join_graph.database.single_table().name}
        )
        n_dims = len(cube.dimensions)
        # Aggregation columns (deduped) and the partial fields each needs.
        self.needs: dict[ColumnRef, tuple[str, ...]] = {}
        for spec in cube.aggregates:
            if spec.column.is_star:
                continue
            fields = set(self.needs.get(spec.column, ()))
            fields.update(_FIELDS_BY_FN[spec.function])
            self.needs[spec.column] = tuple(
                f for f in _FIELD_ORDER if f in fields
            )
        self.columns = sorted(self.needs, key=str)
        self.n_dims = n_dims

        params: list[Value] = []
        bucket_exprs: list[str] = []
        for index, (dim, literals) in enumerate(cube.literals):
            expr = f"rnorm({_column_expr(dim)})"
            ordered = sorted(literals)
            if ordered:
                marks = ", ".join("?" for _ in ordered)
                bucket = (
                    f"CASE WHEN {expr} IN ({marks}) THEN {expr} ELSE ? END"
                )
                params.extend(ordered)
            else:
                bucket = "?"
            params.append(DEFAULT_LITERAL)
            bucket_exprs.append(f"{bucket} AS b{index}")
        value_exprs = [
            f"{_column_expr(column)} AS a{j}"
            for j, column in enumerate(self.columns)
        ]
        select_list = ", ".join(bucket_exprs + value_exprs) or "1 AS one"
        # Double-underscored CTE name so a user table named "base" cannot
        # shadow (or be shadowed by) the cube's shared scan.
        cte = quote_identifier("__cube_base__")
        base = (
            f"SELECT {select_list} FROM {join_clause(join_graph, tables)}"
        )

        arms: list[str] = []
        for size in range(n_dims + 1):
            for mask in combinations(range(n_dims), size):
                kept = set(mask)
                keys = [
                    f"b{i}" if i in kept else "NULL" for i in range(n_dims)
                ]
                aggs = ["COUNT(*)"]
                for j, column in enumerate(self.columns):
                    aggs.extend(
                        _field_expr(field, f"a{j}")
                        for field in self.needs[column]
                    )
                arm = f"SELECT {', '.join(keys + aggs)} FROM {cte}"
                if mask:
                    arm += " GROUP BY " + ", ".join(f"b{i}" for i in mask)
                arms.append(arm)
        self.sql = f"WITH {cte} AS ({base}) " + " UNION ALL ".join(arms)
        self.params = tuple(params)

    def decode(
        self,
        cube: "CubeQuery",
        rows,
        budget: "ResourceBudget | None",
    ) -> CubeResult:
        """Assemble fetched partial rows into a canonical CubeResult."""
        n_dims = self.n_dims
        cells: dict[CellKey, dict[AggregateSpec, Value]] = {}
        rows_scanned = 0
        for row in rows:
            key = tuple(
                part if part is not None else ALL for part in row[:n_dims]
            )
            group_rows = row[n_dims]
            if all(part is ALL for part in key):
                # The empty grouping-set arm aggregates the whole base
                # relation: its row count is the relation cardinality.
                rows_scanned = group_rows
            if group_rows == 0:
                # SQL returns one all-ALL row even over an empty relation;
                # the reference path produces no cells for empty groups.
                continue
            offset = n_dims + 1
            partials: dict[ColumnRef, dict[str, Value]] = {}
            for column in self.columns:
                fields = self.needs[column]
                partials[column] = dict(
                    zip(fields, row[offset : offset + len(fields)])
                )
                offset += len(fields)
            cells[key] = {
                spec: _finalize_cube(spec, group_rows, partials)
                for spec in cube.aggregates
            }
            if budget is not None:
                # Streaming guard: same limit the row path enforces before
                # rollup, applied to actual rolled cells as pages arrive.
                budget.check_cube(len(cells), "cube-rollup")
        return CubeResult(cube, cells, rows_scanned=rows_scanned)


def _field_expr(field: str, x: str) -> str:
    if field == "count":
        return f"COUNT(CASE WHEN rmiss({x}) = 0 THEN 1 END)"
    if field == "distinct":
        return f"COUNT(DISTINCT CASE WHEN rmiss({x}) = 0 THEN rnorm({x}) END)"
    if field == "ncount":
        return f"COUNT(rnum({x}))"
    if field == "total":
        # CAST to REAL: the reference _Partial accumulates sums in a float
        # (``total = 0.0``), so cube SUM/AVG are float even over integers.
        return f"SUM(CAST(rnum({x}) AS REAL))"
    if field == "minimum":
        return f"MIN(rnum({x}))"
    if field == "maximum":
        return f"MAX(rnum({x}))"
    raise QueryError(f"unknown partial field {field!r}")


def _finalize_cube(
    spec: AggregateSpec,
    group_rows: int,
    partials: dict[ColumnRef, dict[str, Value]],
) -> Value:
    """Mirror of ``_Partial.finalize`` over SQL-computed partial fields."""
    fn = spec.function
    if spec.column.is_star:
        if fn is AggregateFunction.COUNT:
            return group_rows
        raise QueryError(f"unsupported star aggregate {fn}")
    fields = partials[spec.column]
    if fn is AggregateFunction.COUNT:
        return fields["count"]
    if fn is AggregateFunction.COUNT_DISTINCT:
        return fields["distinct"]
    if fields["ncount"] == 0:
        return None
    if fn is AggregateFunction.SUM:
        return fields["total"]
    if fn is AggregateFunction.AVG:
        return fields["total"] / fields["ncount"]
    if fn is AggregateFunction.MIN:
        return fields["minimum"]
    if fn is AggregateFunction.MAX:
        return fields["maximum"]
    raise QueryError(f"unsupported basis aggregate {fn}")


class SqlAdapterBase(StorageAdapter):
    """Template for adapters that push execution into a SQL engine.

    Subclasses provide ``_connect()`` (a DB-API connection with the four
    UDFs registered). Everything else — statement generation, paged
    fetching, partial finalization, cardinality pushdown — is shared.
    """

    #: Rows fetched per page when draining cube results (keeps peak
    #: memory bounded and lets budgets stop oversized results early).
    page_size = 4096

    def __init__(self, database: "Database") -> None:
        super().__init__(database)
        # Schema-only graph: join_path() and FK adjacency, never
        # .relation() — materialization stays inside the SQL engine.
        self.join_graph = JoinGraph(database, backend=ExecutionBackend.ROW)
        self._count_memo: dict[frozenset[str], int] = {}
        self._connection = self._connect()

    def _connect(self):  # pragma: no cover - abstract hook
        raise NotImplementedError

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _execute(self, sql: str, params: tuple = ()):
        self.pushdown_queries += 1
        return self._connection.execute(sql, params)

    # -- cardinality ---------------------------------------------------

    def estimated_cardinality(self, tables: frozenset[str]) -> int:
        # Counting pushes down, so the "estimate" is exact and cheap.
        return self.exact_cardinality(tables)

    def exact_cardinality(self, tables: frozenset[str]) -> int:
        key = frozenset(tables)
        cached = self._count_memo.get(key)
        if cached is None:
            cursor = self._execute(
                f"SELECT COUNT(*) FROM {join_clause(self.join_graph, key)}"
            )
            cached = cursor.fetchone()[0]
            self._count_memo[key] = cached
        return cached

    # -- cube path -----------------------------------------------------

    def execute_cube(
        self, cube: "CubeQuery", budget: "ResourceBudget | None" = None
    ) -> CubeResult:
        plan = _CubePlan(cube, self.join_graph)
        cursor = self._execute(plan.sql, plan.params)
        return plan.decode(cube, self._pages(cursor), budget)

    def _pages(self, cursor):
        """Yield result rows in bounded pages (keyset-free cursor paging)."""
        while True:
            chunk = cursor.fetchmany(self.page_size)
            if not chunk:
                return
            yield from chunk

    # -- naive path ----------------------------------------------------

    def execute_simple(self, query: "SimpleAggregateQuery") -> SimpleResult:
        tables = self._query_tables(query)
        if query.aggregate.function.is_ratio:
            value = self._execute_ratio(query, tables)
        else:
            value = self._execute_plain(query, tables)
        return SimpleResult(value, self.exact_cardinality(tables))

    def _execute_plain(
        self, query: "SimpleAggregateQuery", tables: frozenset[str]
    ) -> Value:
        fn = query.aggregate.function
        column = query.aggregate.column
        params: list[Value] = []
        if column.is_star:
            selects = ["COUNT(*)"]
            fields = ("rows",)
        else:
            x = _column_expr(column)
            if fn is AggregateFunction.COUNT:
                selects = [f"COUNT(CASE WHEN rmiss({x}) = 0 THEN 1 END)"]
                fields = ("count",)
            elif fn is AggregateFunction.COUNT_DISTINCT:
                selects = [
                    f"COUNT(DISTINCT CASE WHEN rmiss({x}) = 0"
                    f" THEN rnorm({x}) END)"
                ]
                fields = ("distinct",)
            else:
                # The naive reference (compute_plain) sums raw coercions —
                # integer sums stay integers there, so no REAL cast here.
                selects = [f"COUNT(rnum({x}))", f"SUM(rnum({x}))"]
                fields = ("ncount", "total")
                if fn is AggregateFunction.MIN:
                    selects.append(f"MIN(rnum({x}))")
                    fields += ("minimum",)
                elif fn is AggregateFunction.MAX:
                    selects.append(f"MAX(rnum({x}))")
                    fields += ("maximum",)
        sql = (
            f"SELECT {', '.join(selects)}"
            f" FROM {join_clause(self.join_graph, tables)}"
        )
        conditions = []
        for predicate in query.all_predicates:
            condition, value = _predicate_condition(predicate)
            conditions.append(condition)
            params.append(value)
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        row = dict(zip(fields, self._execute(sql, tuple(params)).fetchone()))
        if fn is AggregateFunction.COUNT:
            return row["rows"] if column.is_star else row["count"]
        if fn is AggregateFunction.COUNT_DISTINCT:
            return row["distinct"]
        if row["ncount"] == 0:
            return None
        if fn is AggregateFunction.SUM:
            return row["total"]
        if fn is AggregateFunction.AVG:
            return row["total"] / row["ncount"]
        if fn is AggregateFunction.MIN:
            return row["minimum"]
        return row["maximum"]

    def _execute_ratio(
        self, query: "SimpleAggregateQuery", tables: frozenset[str]
    ) -> Value:
        column = query.aggregate.column
        params: list[Value] = []

        def conditional_count(predicates) -> str:
            parts = []
            for predicate in predicates:
                condition, value = _predicate_condition(predicate)
                parts.append(condition)
                params.append(value)
            if not column.is_star:
                parts.append(f"rmiss({_column_expr(column)}) = 0")
            if not parts:
                return "COUNT(*)"
            return f"COUNT(CASE WHEN {' AND '.join(parts)} THEN 1 END)"

        numerator = conditional_count(query.all_predicates)
        if query.aggregate.function is AggregateFunction.PERCENTAGE:
            denominator = conditional_count(())
        else:  # CONDITIONAL_PROBABILITY
            assert query.condition is not None
            denominator = conditional_count((query.condition,))
        sql = (
            f"SELECT {numerator}, {denominator}"
            f" FROM {join_clause(self.join_graph, tables)}"
        )
        row = self._execute(sql, tuple(params)).fetchone()
        return ratio_value(row[0], row[1])

    def _query_tables(self, query: "SimpleAggregateQuery") -> frozenset[str]:
        tables = query.referenced_tables()
        if not tables:
            tables = frozenset({self.database.single_table().name})
        return tables
