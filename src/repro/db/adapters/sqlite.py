"""SQLite pushdown adapter (stdlib-only) and out-of-core database loading.

Two modes share one adapter:

- **Loaded databases** (built from CSVs or constructed in tests) are
  copied once into an in-memory SQLite database at adapter construction;
  all joins, grouping, and aggregation then push down as SQL.
- **File-backed databases** (:func:`load_sqlite_database`) never load
  rows into Python at all. Tables are :class:`SqlBackedTable` instances
  whose ``rows`` stream from the file in keyset-paginated chunks, and the
  adapter opens the file read-only, so a claim over a 10M-row SQLite file
  verifies without materializing a single column in Python.

Cell fidelity when copying a loaded database into SQLite (``_bind_cell``):

- ``bool`` cells are stored as their ``str()`` form — the in-memory
  engine treats booleans as non-numeric strings-in-waiting, and SQLite
  would otherwise collapse them to 0/1 integers;
- ``int`` cells beyond 64 bits are stored as decimal strings (SQLite
  integers are int64); ``coerce_number`` recovers the exact value;
- ``float('nan')`` is stored as the string ``"nan"`` (SQLite stores NaN
  REALs as NULL, which would turn a present-but-non-numeric cell into a
  missing one); every engine predicate agrees on the two spellings.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
from collections.abc import Sequence
from pathlib import Path

from repro.db.adapters.base import AdapterCapabilities, register_adapter
from repro.db.adapters.sqlbase import SqlAdapterBase
from repro.db.schema import (
    Column,
    Database,
    ForeignKey,
    SchemaError,
    Table,
    infer_column_type,
)
from repro.db.sql import quote_identifier
from repro.db.values import (
    Value,
    coerce_number,
    is_missing,
    normalize_string,
    values_equal,
)

#: Rows per page when streaming a file-backed table into Python.
_ROW_PAGE = 2048

#: SQLite's signed-64-bit integer range.
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def _bind_cell(value: Value) -> Value:
    """Map an engine cell to a SQLite-storable value, preserving the
    engine's comparison/coercion semantics (see module docstring)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int) and not (_INT64_MIN <= value <= _INT64_MAX):
        return str(value)
    if isinstance(value, float) and value != value:  # NaN
        return "nan"
    return value


def _udf_num(value: Value) -> Value:
    """``rnum``: coerce_number, demoting >64-bit ints to float (SQLite
    cannot represent them; documented deviation for such extremes)."""
    number = coerce_number(value)
    if isinstance(number, int) and not (_INT64_MIN <= number <= _INT64_MAX):
        return float(number)
    return number


def register_udfs(connection: sqlite3.Connection) -> None:
    """Install the engine's scalar semantics on a SQLite connection."""
    connection.create_function(
        "rnorm", 1, normalize_string, deterministic=True
    )
    connection.create_function("rnum", 1, _udf_num, deterministic=True)
    connection.create_function(
        "rmiss", 1, lambda v: 1 if is_missing(v) else 0, deterministic=True
    )
    connection.create_function(
        "req", 2, lambda a, b: 1 if values_equal(a, b) else 0, deterministic=True
    )


@register_adapter
class SqliteAdapter(SqlAdapterBase):
    """Default SQL tier: pushes execution into stdlib ``sqlite3``."""

    name = "sqlite"
    capabilities = AdapterCapabilities(
        pushdown=True, pagination=True, estimates_cardinality=True
    )

    def _connect(self) -> sqlite3.Connection:
        path = getattr(self.database, "sqlite_path", None)
        if path is not None:
            connection = sqlite3.connect(
                f"file:{os.fspath(path)}?mode=ro",
                uri=True,
                check_same_thread=False,
            )
            register_udfs(connection)
            return connection
        connection = sqlite3.connect(":memory:", check_same_thread=False)
        register_udfs(connection)
        self._load_tables(connection)
        return connection

    def _load_tables(self, connection: sqlite3.Connection) -> None:
        for table in self.database.tables:
            name = quote_identifier(table.name)
            # Bare (typeless) columns get BLOB affinity: SQLite stores
            # every value exactly as bound, no silent text→number coercion.
            columns = ", ".join(
                quote_identifier(column.name) for column in table.columns
            )
            connection.execute(f"CREATE TABLE {name} ({columns})")
            marks = ", ".join("?" for _ in table.columns)
            connection.executemany(
                f"INSERT INTO {name} VALUES ({marks})",
                (tuple(_bind_cell(cell) for cell in row) for row in table.rows),
            )
        connection.commit()


class SqlBackedTable(Table):
    """A table whose rows live in a SQLite file, streamed on demand.

    ``rows`` is a lazy sequence: ``len()`` is a pushed-down ``COUNT(*)``
    and iteration pages through the file in keyset-paginated chunks, so
    code written against :class:`~repro.db.schema.Table` (keyword
    matching, type inference, the row/columnar adapters) still works —
    it just streams. The SQLite adapter never touches ``rows`` at all.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        sqlite_path: str | os.PathLike,
        primary_key: str | None = None,
    ) -> None:
        super().__init__(name, columns, rows=(), primary_key=primary_key)
        self.sqlite_path = os.fspath(sqlite_path)
        self.rows = _SqlRows(self.sqlite_path, name)

    def append(self, row: Sequence[Value]) -> None:
        if isinstance(getattr(self, "rows", None), _SqlRows):
            raise SchemaError(
                f"table {self.name!r} is backed by a read-only SQLite file"
            )
        super().append(row)

    def with_columns(self, columns: Sequence[Column]) -> "SqlBackedTable":
        if len(columns) != len(self.columns):
            raise SchemaError(
                f"with_columns: expected {len(self.columns)} columns, "
                f"got {len(columns)}"
            )
        return SqlBackedTable(
            self.name, columns, self.sqlite_path, primary_key=self.primary_key
        )

    def content_token(self) -> str:
        """Cheap content identity for fingerprinting: file identity plus
        size and mtime, instead of hashing millions of cells."""
        stat = os.stat(self.sqlite_path)
        digest = hashlib.sha256()
        digest.update(
            repr(
                (
                    os.path.abspath(self.sqlite_path),
                    self.name,
                    stat.st_size,
                    stat.st_mtime_ns,
                )
            ).encode()
        )
        return digest.hexdigest()


class _SqlRows(Sequence):
    """Lazy row sequence over one SQLite table (read-only)."""

    def __init__(self, path: str, table: str) -> None:
        self._path = path
        self._table = table
        self._connection: sqlite3.Connection | None = None
        self._count: int | None = None

    def _connect(self) -> sqlite3.Connection:
        if self._connection is None:
            self._connection = sqlite3.connect(
                f"file:{self._path}?mode=ro", uri=True, check_same_thread=False
            )
        return self._connection

    def __len__(self) -> int:
        if self._count is None:
            self._count = self._connect().execute(
                f"SELECT COUNT(*) FROM {quote_identifier(self._table)}"
            ).fetchone()[0]
        return self._count

    def __iter__(self):
        name = quote_identifier(self._table)
        connection = self._connect()
        try:
            # Keyset pagination: O(1) memory, no quadratic OFFSET rescans.
            last = None
            while True:
                if last is None:
                    cursor = connection.execute(
                        f"SELECT rowid, * FROM {name} "
                        f"ORDER BY rowid LIMIT {_ROW_PAGE}"
                    )
                else:
                    cursor = connection.execute(
                        f"SELECT rowid, * FROM {name} WHERE rowid > ? "
                        f"ORDER BY rowid LIMIT {_ROW_PAGE}",
                        (last,),
                    )
                chunk = cursor.fetchall()
                if not chunk:
                    return
                for row in chunk:
                    yield row[1:]
                last = chunk[-1][0]
        except sqlite3.OperationalError:
            # WITHOUT ROWID tables: fall back to a single streaming scan.
            cursor = connection.execute(f"SELECT * FROM {name}")
            while True:
                chunk = cursor.fetchmany(_ROW_PAGE)
                if not chunk:
                    return
                yield from chunk

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(index)
        row = self._connect().execute(
            f"SELECT * FROM {quote_identifier(self._table)} LIMIT 1 OFFSET ?",
            (index,),
        ).fetchone()
        return tuple(row)


def load_sqlite_database(
    path: str | os.PathLike,
    name: str | None = None,
    *,
    sample_rows: int = 1000,
) -> Database:
    """Open a SQLite file as an out-of-core :class:`Database`.

    Schema (tables, columns, single-column foreign keys) comes from
    ``sqlite_master``/``PRAGMA``; column types are inferred from a
    ``sample_rows``-row prefix sample. Rows are never loaded eagerly —
    every table is a :class:`SqlBackedTable`. The returned database
    carries ``sqlite_path``, which :class:`SqliteAdapter` detects to
    query the file directly (zero-copy pushdown).
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise SchemaError(f"no such SQLite database: {path!r}")
    connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        names = [
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' "
                "AND name NOT LIKE 'sqlite_%' ORDER BY name"
            )
        ]
        if not names:
            raise SchemaError(f"SQLite database {path!r} has no tables")
        tables = []
        for table_name in names:
            quoted = quote_identifier(table_name)
            info = connection.execute(
                f"PRAGMA table_info({quoted})"
            ).fetchall()
            sample = connection.execute(
                f"SELECT * FROM {quoted} LIMIT ?", (sample_rows,)
            ).fetchall()
            columns = [
                Column(
                    column_row[1],
                    infer_column_type(row[i] for row in sample),
                )
                for i, column_row in enumerate(info)
            ]
            pk_columns = [row[1] for row in info if row[5]]
            tables.append(
                SqlBackedTable(
                    table_name,
                    columns,
                    path,
                    primary_key=pk_columns[0] if len(pk_columns) == 1 else None,
                )
            )
        foreign_keys = []
        for table_name in names:
            quoted = quote_identifier(table_name)
            by_id: dict[int, list] = {}
            for row in connection.execute(
                f"PRAGMA foreign_key_list({quoted})"
            ):
                by_id.setdefault(row[0], []).append(row)
            for rows in by_id.values():
                if len(rows) != 1:
                    continue  # composite FKs are outside the paper's model
                _, _, target, source_column, target_column, *_ = rows[0]
                if target not in names:
                    continue
                if target_column is None:
                    # FK to the implicit primary key of the target table.
                    target_table = next(
                        t for t in tables if t.name == target
                    )
                    if target_table.primary_key is None:
                        continue
                    target_column = target_table.primary_key
                foreign_keys.append(
                    ForeignKey(table_name, source_column, target, target_column)
                )
    finally:
        connection.close()
    database = Database(
        name or Path(path).stem or "database", tables, foreign_keys
    )
    database.sqlite_path = path
    return database
