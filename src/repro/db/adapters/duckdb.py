"""DuckDB pushdown adapter (optional extra, import-gated).

Registered unconditionally so ``--backend duckdb`` is always a known
spelling; :meth:`DuckdbAdapter.available` reports whether the ``duckdb``
package is importable, and :func:`~repro.db.adapters.base.create_adapter`
raises :class:`~repro.errors.MissingDependencyError` with an install hint
when it is not. Nothing in this module touches DuckDB at import time.

Storage model: every column is VARCHAR and cells are stored as their
``str()`` form (NULLs stay NULL). The engine's scalar semantics are
normalize/coerce functions over that string form, registered as Python
UDFs with ``null_handling="special"`` so NULLs reach them; the SQL text
itself is shared verbatim with the SQLite adapter via
:class:`~repro.db.adapters.sqlbase.SqlAdapterBase`.

Documented deviations from the bit-identical SQLite tier (DuckDB scalar
UDFs require fixed result types):

- ``rnum`` returns DOUBLE, so naive-path SUM/MIN/MAX over all-integer
  columns come back as floats (equal in value);
- ``float('inf')`` cells round-trip through ``"inf"`` text, which
  ``coerce_number`` rejects — infinities count as non-numeric here.
"""

from __future__ import annotations

from repro.db.adapters.base import AdapterCapabilities, register_adapter
from repro.db.adapters.sqlbase import SqlAdapterBase
from repro.db.sql import quote_identifier
from repro.db.values import (
    Value,
    coerce_number,
    is_missing,
    normalize_string,
    values_equal,
)

try:  # pragma: no cover - exercised only where duckdb is installed
    import duckdb as _duckdb
except ImportError:  # pragma: no cover
    _duckdb = None


def _store_cell(value: Value) -> str | None:
    return None if value is None else str(value)


def _udf_norm(value: str | None) -> str:
    return normalize_string(value)


def _udf_num(value: str | None) -> float | None:
    number = coerce_number(value)
    return None if number is None else float(number)


def _udf_miss(value: str | None) -> int:
    return 1 if is_missing(value) else 0


def _udf_eq(left: str | None, right: str | None) -> int:
    return 1 if values_equal(left, right) else 0


@register_adapter
class DuckdbAdapter(SqlAdapterBase):
    """SQL pushdown into DuckDB (columnar, vectorized OLAP engine)."""

    name = "duckdb"
    capabilities = AdapterCapabilities(
        pushdown=True, pagination=True, estimates_cardinality=True
    )

    @classmethod
    def available(cls) -> bool:
        return _duckdb is not None

    def _connect(self):
        assert _duckdb is not None, "guarded by available()"
        varchar = _duckdb.typing.VARCHAR
        connection = _duckdb.connect(":memory:")
        connection.create_function(
            "rnorm", _udf_norm, [varchar], varchar, null_handling="special"
        )
        connection.create_function(
            "rnum",
            _udf_num,
            [varchar],
            _duckdb.typing.DOUBLE,
            null_handling="special",
        )
        connection.create_function(
            "rmiss",
            _udf_miss,
            [varchar],
            _duckdb.typing.BIGINT,
            null_handling="special",
        )
        connection.create_function(
            "req",
            _udf_eq,
            [varchar, varchar],
            _duckdb.typing.BIGINT,
            null_handling="special",
        )
        self._load_tables(connection)
        return connection

    def _load_tables(self, connection) -> None:
        for table in self.database.tables:
            name = quote_identifier(table.name)
            columns = ", ".join(
                f"{quote_identifier(column.name)} VARCHAR"
                for column in table.columns
            )
            connection.execute(f"CREATE TABLE {name} ({columns})")
            marks = ", ".join("?" for _ in table.columns)
            rows = [
                tuple(_store_cell(cell) for cell in row)
                for row in table.rows
            ]
            if rows:
                connection.executemany(
                    f"INSERT INTO {name} VALUES ({marks})", rows
                )
