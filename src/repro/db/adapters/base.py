"""The storage-adapter abstraction behind the query engine.

A :class:`StorageAdapter` owns everything physical about one database:
how relations are stored, how joined relations are (or are not)
materialized, and how cube/group-by and simple-aggregate execution run.
The :class:`~repro.db.engine.QueryEngine` holds exactly one adapter and
speaks to it in canonical terms — :class:`~repro.db.query.SimpleAggregateQuery`
in, :class:`~repro.db.values.Value` out; :class:`~repro.db.cube.CubeQuery`
in, :class:`~repro.db.cube.CubeResult` (``(key, Value)`` cells) out — so
every layer above the adapter (result cache, disk cube cache, audit
oracle, trust ladder) is storage-agnostic.

Adapters register themselves by name (``columnar``, ``row``, ``sqlite``,
``duckdb``); the registry is the successor of the old two-value
``ExecutionBackend`` enum as the engine's public backend surface. An
adapter may be *registered* but not *available* (DuckDB is an optional
extra); creation then raises :class:`~repro.errors.MissingDependencyError`
with an install hint instead of an ImportError at import time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, NamedTuple

from repro.db.columnar import ExecutionBackend
from repro.db.values import Value
from repro.errors import MissingDependencyError, QueryError

if TYPE_CHECKING:
    from repro.budget import ResourceBudget
    from repro.db.cube import CubeQuery, CubeResult
    from repro.db.joins import JoinGraph
    from repro.db.query import SimpleAggregateQuery
    from repro.db.schema import Database


class SimpleResult(NamedTuple):
    """One simple-aggregate answer plus the rows the adapter scanned."""

    value: Value
    rows_scanned: int


@dataclass(frozen=True)
class AdapterCapabilities:
    """What the engine (and the resource budget) may assume of an adapter.

    ``pushdown``: cube and predicate execution run inside an external SQL
    engine; the adapter never materializes the joined relation in Python.
    ``pagination``: large result spaces are fetched in keyset/cursor pages,
    so a budget can stop an oversized result mid-stream instead of after
    materialization.
    ``estimates_cardinality``: :meth:`StorageAdapter.estimated_cardinality`
    is cheap and does not materialize the join (in-memory adapters derive a
    fan-out upper bound from key multiplicities; SQL adapters push down a
    ``COUNT(*)``).
    """

    pushdown: bool = False
    pagination: bool = False
    estimates_cardinality: bool = False


class StorageAdapter(ABC):
    """Owns relation storage and execution for one database.

    Subclasses set ``name`` (the registry key and ``--backend`` value) and
    ``capabilities``, and expose a ``join_graph`` for schema-level
    join-path questions. The two mutable counters are mirrored into
    :class:`~repro.db.engine.EngineStats` by the engine after every call:

    - ``pushdown_queries``: statements executed inside an external engine;
    - ``rows_materialized``: rows of joined relations materialized as
      Python objects (the quantity out-of-core execution must keep at 0).
    """

    name: ClassVar[str]
    capabilities: ClassVar[AdapterCapabilities] = AdapterCapabilities()

    join_graph: "JoinGraph"

    def __init__(self, database: "Database") -> None:
        self.database = database
        self.pushdown_queries = 0
        self.rows_materialized = 0

    @abstractmethod
    def execute_simple(self, query: "SimpleAggregateQuery") -> SimpleResult:
        """Evaluate one Simple Aggregate Query (the naive path)."""

    @abstractmethod
    def execute_cube(
        self, cube: "CubeQuery", budget: "ResourceBudget | None" = None
    ) -> "CubeResult":
        """Execute a cube query, honoring ``budget`` during rollup."""

    @abstractmethod
    def estimated_cardinality(self, tables: frozenset[str]) -> int:
        """Upper bound on the joined relation's row count, computed
        *without* materializing it (budget admission consults this)."""

    def exact_cardinality(self, tables: frozenset[str]) -> int:
        """Exact joined row count; may be as expensive as materializing.

        The engine only falls back to this when the estimate alone would
        reject a query, so a pessimistic upper bound never causes a false
        budget rejection.
        """
        return self.estimated_cardinality(tables)

    def fingerprint(self) -> str:
        """Content fingerprint keying the disk cube-cache tier."""
        from repro.db.diskcache import fingerprint_of

        return fingerprint_of(self.database)

    def close(self) -> None:
        """Release external resources (connections, file handles)."""

    @classmethod
    def available(cls) -> bool:
        """Whether this adapter can be constructed in this environment."""
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.database.name!r})"


#: Registered adapters in registration (= preference/display) order.
_REGISTRY: dict[str, type[StorageAdapter]] = {}


def register_adapter(cls: type[StorageAdapter]) -> type[StorageAdapter]:
    """Class decorator: expose an adapter under ``cls.name``."""
    _REGISTRY[cls.name] = cls
    return cls


_BUILTIN_ORDER = ("columnar", "row", "sqlite", "duckdb")


def adapter_names() -> list[str]:
    """All registered backend names (including optional, possibly
    unavailable extras such as ``duckdb``).

    The built-ins come first in a fixed order (registration order depends
    on which module imported the package first); third-party adapters
    follow alphabetically.
    """
    _ensure_builtin()
    extras = sorted(name for name in _REGISTRY if name not in _BUILTIN_ORDER)
    return [name for name in _BUILTIN_ORDER if name in _REGISTRY] + extras


def canonical_backend_name(backend: "str | ExecutionBackend") -> str:
    """Normalize a backend spelling (enum or string) to a registry name."""
    _ensure_builtin()
    if isinstance(backend, ExecutionBackend):
        return backend.value
    name = str(backend).strip().lower()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise QueryError(f"unknown storage backend {backend!r} (known: {known})")
    return name


def adapter_class(backend: "str | ExecutionBackend") -> type[StorageAdapter]:
    """Resolve a backend name to its adapter class."""
    return _REGISTRY[canonical_backend_name(backend)]


def create_adapter(
    backend: "str | ExecutionBackend", database: "Database"
) -> StorageAdapter:
    """Instantiate the named adapter for ``database``.

    Raises :class:`~repro.errors.MissingDependencyError` for registered
    adapters whose optional dependency is absent.
    """
    cls = adapter_class(backend)
    if not cls.available():
        raise MissingDependencyError(
            f"storage backend {cls.name!r} requires an optional dependency "
            f"that is not installed (hint: pip install {cls.name})"
        )
    return cls(database)


def _ensure_builtin() -> None:
    """Import the built-in adapter modules so they self-register."""
    if "columnar" not in _REGISTRY:  # pragma: no branch - idempotent
        from repro.db.adapters import duckdb, memory, sqlite  # noqa: F401
