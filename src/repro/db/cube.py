"""``GROUP BY CUBE`` with the paper's ``InOrDefault`` literal collapsing.

One cube query computes aggregates for *every* combination of restrictions
on its dimension columns, which lets a single execution answer many query
candidates at once (paper Section 6.2). Literals with zero marginal
probability are collapsed into a default bucket before grouping — the
``InOrDefault`` rewrite — so result sets stay small while aggregates over
*unrestricted* dimensions (the ``ALL`` cells) remain exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.db.aggregates import AggregateFunction
from repro.db.columnar import ColumnarRelation, execute_cube_columnar
from repro.db.joins import JoinGraph, Relation
from repro.db.query import AggregateSpec, ColumnRef
from repro.db.schema import Database
from repro.db.values import (
    DEFAULT_LITERAL,
    Value,
    coerce_number,
    is_missing,
    normalize_string,
)
from repro.errors import QueryError


class _AllMarker:
    """Key component meaning "no restriction on this dimension"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<ALL>"

    def __reduce__(self):
        # Cell keys cross process/disk boundaries (parallel workers, the
        # disk cube cache); unpickling must yield THE singleton so identity
        # comparisons and dict lookups keep working.
        return (_restore_all, ())


def _restore_all() -> "_AllMarker":
    return ALL


#: Singleton ALL marker used in cube cell keys.
ALL = _AllMarker()

#: Hard limit on cube dimensionality; rollup cost is O(2^D) per group.
MAX_CUBE_DIMENSIONS = 10


@dataclass(frozen=True)
class CubeQuery:
    """A cube over ``dimensions`` computing several basis aggregates.

    ``literals`` maps each dimension to the normalized literals of interest;
    all other values (including NULL) collapse into the default bucket.
    Only non-ratio aggregates are allowed: ratio functions are served from
    count cells by the engine.
    """

    tables: frozenset[str]
    dimensions: tuple[ColumnRef, ...]
    literals: tuple[tuple[ColumnRef, frozenset[str]], ...]
    aggregates: tuple[AggregateSpec, ...]

    def __post_init__(self) -> None:
        if len(self.dimensions) > MAX_CUBE_DIMENSIONS:
            raise QueryError(
                f"cube with {len(self.dimensions)} dimensions exceeds the "
                f"limit of {MAX_CUBE_DIMENSIONS}"
            )
        if tuple(sorted(self.dimensions)) != self.dimensions:
            raise QueryError("cube dimensions must be sorted")
        literal_dims = tuple(dim for dim, _ in self.literals)
        if literal_dims != self.dimensions:
            raise QueryError("literals must be given per dimension, in order")
        for spec in self.aggregates:
            if spec.function.is_ratio:
                raise QueryError(
                    "cube queries compute basis aggregates only; "
                    f"got {spec.function.sql_name}"
                )

    def literal_map(self) -> dict[ColumnRef, frozenset[str]]:
        return dict(self.literals)


class _Partial:
    """Mergeable per-group accumulator for all basis aggregates of a column."""

    __slots__ = ("rows", "count", "ncount", "total", "minimum", "maximum", "distinct")

    def __init__(self) -> None:
        self.rows = 0
        self.count = 0
        self.ncount = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.distinct: set[str] = set()

    def add(self, cell: Value, is_star: bool) -> None:
        self.rows += 1
        if is_star or is_missing(cell):
            return
        self.count += 1
        self.distinct.add(normalize_string(cell))
        number = coerce_number(cell)
        if number is not None:
            self.ncount += 1
            self.total += number
            if self.minimum is None or number < self.minimum:
                self.minimum = number
            if self.maximum is None or number > self.maximum:
                self.maximum = number

    def merge(self, other: "_Partial") -> None:
        self.rows += other.rows
        self.count += other.count
        self.ncount += other.ncount
        self.total += other.total
        if other.minimum is not None:
            if self.minimum is None or other.minimum < self.minimum:
                self.minimum = other.minimum
        if other.maximum is not None:
            if self.maximum is None or other.maximum > self.maximum:
                self.maximum = other.maximum
        self.distinct |= other.distinct

    def finalize(self, spec: AggregateSpec) -> Value:
        fn = spec.function
        if fn is AggregateFunction.COUNT:
            return self.rows if spec.column.is_star else self.count
        if fn is AggregateFunction.COUNT_DISTINCT:
            return len(self.distinct)
        if self.ncount == 0:
            # No numeric cells: Sum/Avg/Min/Max are NULL.
            return None
        if fn is AggregateFunction.SUM:
            return self.total
        if fn is AggregateFunction.AVG:
            # Divide by the numeric count, matching the naive executor's
            # compute_plain (non-numeric strings are skipped, not averaged).
            return self.total / self.ncount
        if fn is AggregateFunction.MIN:
            return self.minimum
        if fn is AggregateFunction.MAX:
            return self.maximum
        raise QueryError(f"unsupported basis aggregate {fn}")


CellKey = tuple  # tuple of normalized literal | DEFAULT_LITERAL | ALL per dim


class CubeResult:
    """Finalized cube cells: ``{cell key: {aggregate spec: value}}``.

    Keys cover every subset of restricted dimensions (standard CUBE
    semantics); unrestricted dimensions carry the :data:`ALL` marker.
    """

    def __init__(
        self,
        query: CubeQuery,
        cells: dict[CellKey, dict[AggregateSpec, Value]],
        rows_scanned: int,
    ) -> None:
        self.query = query
        self.cells = cells
        self.rows_scanned = rows_scanned
        self._literals = query.literal_map()

    def value(
        self,
        spec: AggregateSpec,
        assignment: dict[ColumnRef, str],
    ) -> Value:
        """Value of ``spec`` for the cell restricting each assigned dimension
        to its (normalized) literal; unassigned dimensions are ALL.

        Raises :class:`QueryError` if an assigned literal was not part of
        the cube's literal set (such a lookup would silently alias into the
        default bucket).
        """
        key_parts: list[object] = []
        for dim in self.query.dimensions:
            if dim in assignment:
                literal = assignment[dim]
                if literal not in self._literals[dim]:
                    raise QueryError(
                        f"literal {literal!r} not covered by cube on {dim}"
                    )
                key_parts.append(literal)
            else:
                key_parts.append(ALL)
        cell = self.cells.get(tuple(key_parts))
        if cell is None:
            # Empty group: counts are 0, other aggregates NULL.
            if spec.function is AggregateFunction.COUNT:
                return 0
            if spec.function is AggregateFunction.COUNT_DISTINCT:
                return 0
            return None
        return cell.get(spec)

    def cells_for(self, spec: AggregateSpec) -> dict[CellKey, Value]:
        """All cells of one aggregate (used to populate the result cache)."""
        return {key: values[spec] for key, values in self.cells.items() if spec in values}


def execute_cube(
    database: Database,
    cube: CubeQuery,
    join_graph: JoinGraph | None = None,
    budget=None,
) -> CubeResult:
    """Execute a cube query against the (joined) base relation.

    ``budget`` (a :class:`repro.budget.ResourceBudget` or None) bounds the
    rollup: after grouping, the actual rollup work is
    ``n_groups * 2^n_dims`` merges, checked against ``max_cube_cells``
    before phase 2 runs — defense in depth behind the engine's predictive
    estimate, using real group counts instead of literal cardinalities.
    """
    graph = join_graph or JoinGraph(database)
    if cube.tables:
        relation = graph.relation(cube.tables)
    else:
        relation = graph.relation({database.single_table().name})
    return _cube_over_relation(relation, cube, budget)


def _check_rollup_budget(budget, n_groups: int, n_dims: int) -> None:
    """Refuse rollups whose (group, mask) merge count crosses the budget."""
    if budget is not None:
        budget.check_cube(n_groups * (1 << n_dims), "cube-rollup")


def _cube_over_relation(
    relation: Relation | ColumnarRelation, cube: CubeQuery, budget=None
) -> CubeResult:
    if isinstance(relation, ColumnarRelation):
        return execute_cube_columnar(relation, cube, budget)
    dim_indexes = [relation.column_index(dim) for dim in cube.dimensions]
    literal_sets = [set(literals) for _, literals in cube.literals]
    agg_columns: list[tuple[AggregateSpec, int | None]] = []
    for spec in cube.aggregates:
        if spec.column.is_star:
            agg_columns.append((spec, None))
        else:
            agg_columns.append((spec, relation.column_index(spec.column)))

    # Phase 1: accumulate per fully-specified group.
    groups: dict[CellKey, list[_Partial]] = {}
    for row in relation.rows:
        key_parts = []
        for index, literals in zip(dim_indexes, literal_sets):
            bucket = normalize_string(row[index])
            key_parts.append(bucket if bucket in literals else DEFAULT_LITERAL)
        key = tuple(key_parts)
        partials = groups.get(key)
        if partials is None:
            partials = [_Partial() for _ in agg_columns]
            groups[key] = partials
        for partial, (spec, column_index) in zip(partials, agg_columns):
            cell = None if column_index is None else row[column_index]
            partial.add(cell, column_index is None)

    # Phase 2: roll up to every subset of dimensions.
    n_dims = len(cube.dimensions)
    _check_rollup_budget(budget, len(groups), n_dims)
    rolled: dict[CellKey, list[_Partial]] = {}
    masks: list[tuple[int, ...]] = []
    for size in range(n_dims + 1):
        masks.extend(combinations(range(n_dims), size))
    for key, partials in groups.items():
        for mask in masks:
            kept = set(mask)
            masked = tuple(
                key[i] if i in kept else ALL for i in range(n_dims)
            )
            existing = rolled.get(masked)
            if existing is None:
                copies = [_Partial() for _ in agg_columns]
                for copy, partial in zip(copies, partials):
                    copy.merge(partial)
                rolled[masked] = copies
            else:
                for accumulated, partial in zip(existing, partials):
                    accumulated.merge(partial)

    # Phase 3: finalize.
    cells: dict[CellKey, dict[AggregateSpec, Value]] = {}
    for key, partials in rolled.items():
        cells[key] = {
            spec: partial.finalize(spec)
            for partial, (spec, _) in zip(partials, agg_columns)
        }
    return CubeResult(cube, cells, rows_scanned=len(relation))
