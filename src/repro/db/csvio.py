"""CSV loading with type inference.

The paper's data sets are mostly ``.csv`` files; the authors removed stray
free-text comment lines but otherwise used the raw data (Appendix B). We
mirror that: a tolerant reader that skips blank/comment lines, infers column
types, and converts numeric-looking cells.

Inputs are not trusted: the service layer feeds inline tables straight
from client requests through :func:`load_csv_text`, so the reader bounds
rows, columns, and field size (:class:`CsvLimits`) and converts *every*
malformed-input failure into :class:`~repro.errors.CsvFormatError` with a
machine-readable ``reason`` — hostile CSV yields a structured error, not
a traceback or an OOM.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path

from repro.db.schema import Column, ColumnType, Table, infer_column_type
from repro.db.values import Value, coerce_number, is_missing
from repro.errors import CsvFormatError


@dataclass(frozen=True)
class CsvLimits:
    """Hard bounds on one CSV source (header row included).

    The defaults are generous safety nets sized for the paper's corpora;
    the service layer passes tighter limits for untrusted inline tables.
    """

    max_rows: int = 1_000_000
    max_columns: int = 1_000
    max_field_bytes: int = 131_072

    def __post_init__(self) -> None:
        for name in ("max_rows", "max_columns", "max_field_bytes"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")


#: Library-wide default bounds (see :class:`CsvLimits`).
DEFAULT_CSV_LIMITS = CsvLimits()


def load_csv(
    path: str | Path,
    table_name: str | None = None,
    limits: CsvLimits = DEFAULT_CSV_LIMITS,
) -> Table:
    """Load a CSV file into a :class:`Table`, inferring column types."""
    path = Path(path)
    name = table_name or path.stem.lower().replace("-", "_").replace(" ", "_")
    try:
        text = path.read_text(encoding="utf-8-sig")
    except OSError as exc:
        # reason "unreadable_file" marks an environment problem (the
        # service maps it to 422), not malformed client content (400).
        raise CsvFormatError(
            f"cannot read {path}: {exc}", reason="unreadable_file"
        ) from exc
    return load_csv_text(text, name, limits)


def load_csv_text(
    text: str,
    table_name: str,
    limits: CsvLimits = DEFAULT_CSV_LIMITS,
) -> Table:
    """Load CSV content from a string (used by the corpus, service, tests)."""
    rows = _read_rows(text, table_name, limits)
    if not rows:
        raise CsvFormatError(f"table {table_name!r}: no header row found")
    header = [_clean_header(cell, i) for i, cell in enumerate(rows[0])]
    if len(set(header)) != len(header):
        # Table() would reject this as a SchemaError; hostile input must
        # stay inside the CsvFormatError contract.
        raise CsvFormatError(
            f"table {table_name!r}: duplicate column names in header",
            reason="duplicate_columns",
        )
    width = len(header)
    body: list[list[Value]] = []
    for raw in rows[1:]:
        if all(not cell.strip() for cell in raw):
            continue
        cells = list(raw[:width]) + [""] * (width - len(raw))
        body.append([_clean_cell(cell) for cell in cells])
    columns = []
    for index, column_name in enumerate(header):
        values = [row[index] for row in body]
        columns.append(Column(column_name, infer_column_type(values)))
    typed_body = [
        tuple(_apply_type(row[i], columns[i].type) for i in range(width))
        for row in body
    ]
    return Table(table_name, columns, typed_body)


def _read_rows(
    text: str, table_name: str, limits: CsvLimits
) -> list[list[str]]:
    lines = []
    for line in text.splitlines():
        if line.lstrip().startswith("#"):
            continue
        lines.append(line)
    if not lines:
        raise CsvFormatError(
            f"table {table_name!r}: empty CSV input", reason="empty_input"
        )
    reader = csv.reader(io.StringIO("\n".join(lines)))
    rows: list[list[str]] = []
    # The quick length test makes the exact byte count a cold path: a
    # UTF-8 character is at most 4 bytes, so short fields never encode.
    quick_field_chars = limits.max_field_bytes // 4
    try:
        for row in reader:
            if not row:
                continue
            if len(row) > limits.max_columns:
                raise CsvFormatError(
                    f"table {table_name!r}: row {len(rows) + 1} has "
                    f"{len(row)} fields, over the limit of "
                    f"{limits.max_columns}",
                    reason="too_many_columns",
                )
            for cell in row:
                if (
                    len(cell) > quick_field_chars
                    and len(cell.encode("utf-8")) > limits.max_field_bytes
                ):
                    raise CsvFormatError(
                        f"table {table_name!r}: row {len(rows) + 1} has a "
                        f"field over the limit of "
                        f"{limits.max_field_bytes} bytes",
                        reason="field_too_large",
                    )
            rows.append(row)
            if len(rows) > limits.max_rows + 1:  # header + data rows
                raise CsvFormatError(
                    f"table {table_name!r}: over the limit of "
                    f"{limits.max_rows} data rows",
                    reason="too_many_rows",
                )
    except csv.Error as exc:
        # Includes fields over csv.field_size_limit (131072 chars) and
        # structurally broken quoting: never let _csv.Error escape.
        raise CsvFormatError(f"table {table_name!r}: {exc}") from exc
    return rows


def _clean_header(cell: str, index: int) -> str:
    name = cell.strip()
    return name if name else f"column_{index + 1}"


def _clean_cell(cell: str) -> Value:
    stripped = cell.strip()
    return stripped if stripped else None


def _apply_type(value: Value, column_type: ColumnType) -> Value:
    if is_missing(value):
        return None
    if column_type is ColumnType.NUMERIC:
        number = coerce_number(value)
        return number if number is not None else None
    return value
