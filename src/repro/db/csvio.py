"""CSV loading with type inference.

The paper's data sets are mostly ``.csv`` files; the authors removed stray
free-text comment lines but otherwise used the raw data (Appendix B). We
mirror that: a tolerant reader that skips blank/comment lines, infers column
types, and converts numeric-looking cells.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.db.schema import Column, ColumnType, Table, infer_column_type
from repro.db.values import Value, coerce_number, is_missing
from repro.errors import CsvFormatError


def load_csv(path: str | Path, table_name: str | None = None) -> Table:
    """Load a CSV file into a :class:`Table`, inferring column types."""
    path = Path(path)
    name = table_name or path.stem.lower().replace("-", "_").replace(" ", "_")
    try:
        text = path.read_text(encoding="utf-8-sig")
    except OSError as exc:
        raise CsvFormatError(f"cannot read {path}: {exc}") from exc
    return load_csv_text(text, name)


def load_csv_text(text: str, table_name: str) -> Table:
    """Load CSV content from a string (used by the corpus and tests)."""
    rows = _read_rows(text, table_name)
    if not rows:
        raise CsvFormatError(f"table {table_name!r}: no header row found")
    header = [_clean_header(cell, i) for i, cell in enumerate(rows[0])]
    width = len(header)
    body: list[list[Value]] = []
    for raw in rows[1:]:
        if all(not cell.strip() for cell in raw):
            continue
        cells = list(raw[:width]) + [""] * (width - len(raw))
        body.append([_clean_cell(cell) for cell in cells])
    columns = []
    for index, column_name in enumerate(header):
        values = [row[index] for row in body]
        columns.append(Column(column_name, infer_column_type(values)))
    typed_body = [
        tuple(_apply_type(row[i], columns[i].type) for i in range(width))
        for row in body
    ]
    return Table(table_name, columns, typed_body)


def _read_rows(text: str, table_name: str) -> list[list[str]]:
    lines = []
    for line in text.splitlines():
        if line.lstrip().startswith("#"):
            continue
        lines.append(line)
    if not lines:
        raise CsvFormatError(f"table {table_name!r}: empty CSV input")
    reader = csv.reader(io.StringIO("\n".join(lines)))
    try:
        return [row for row in reader if row]
    except csv.Error as exc:
        raise CsvFormatError(f"table {table_name!r}: {exc}") from exc


def _clean_header(cell: str, index: int) -> str:
    name = cell.strip()
    return name if name else f"column_{index + 1}"


def _clean_cell(cell: str) -> Value:
    stripped = cell.strip()
    return stripped if stripped else None


def _apply_type(value: Value, column_type: ColumnType) -> Value:
    if is_missing(value):
        return None
    if column_type is ColumnType.NUMERIC:
        number = coerce_number(value)
        return number if number is not None else None
    return value
