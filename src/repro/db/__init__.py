"""In-memory relational engine (Postgres substitute).

This subpackage provides everything AggChecker needs from a database system:

- typed :class:`~repro.db.schema.Column`/:class:`~repro.db.schema.Table`
  definitions assembled into a :class:`~repro.db.schema.Database` with
  primary-key/foreign-key constraints,
- CSV loading with type inference (:mod:`repro.db.csvio`) and data
  dictionaries (:mod:`repro.db.datadict`),
- join-path discovery over acyclic schema graphs (:mod:`repro.db.joins`),
- the paper's *Simple Aggregate Query* model (:mod:`repro.db.query`) with
  SQL rendering and parsing (:mod:`repro.db.sql`),
- a direct executor (:mod:`repro.db.executor`), a ``GROUP BY CUBE`` operator
  with ``InOrDefault`` literal collapsing (:mod:`repro.db.cube`),
- pluggable storage adapters (:mod:`repro.db.adapters`) — in-memory
  columnar/row execution plus SQL pushdown into SQLite (stdlib) or DuckDB
  (optional), including out-of-core SQLite-file databases,
- and a batch :class:`~repro.db.engine.QueryEngine` implementing the paper's
  query merging and result caching (Section 6) with execution statistics.
"""

from repro.db.adapters import (
    AdapterCapabilities,
    SqlBackedTable,
    StorageAdapter,
    adapter_names,
    canonical_backend_name,
    create_adapter,
    load_sqlite_database,
    register_adapter,
)
from repro.db.aggregates import AggregateFunction
from repro.db.columnar import ColumnarRelation, ExecutionBackend
from repro.db.csvio import load_csv, load_csv_text
from repro.db.cube import CubeQuery, CubeResult, execute_cube
from repro.db.diskcache import DiskCubeCache, database_fingerprint, fingerprint_of
from repro.db.engine import (
    CubeCoverStrategy,
    EngineConfig,
    EngineStats,
    ExecutionMode,
    QueryEngine,
)
from repro.db.executor import execute_query
from repro.db.joins import JoinGraph, JoinPath
from repro.db.predicates import Predicate
from repro.db.query import AggregateSpec, ColumnRef, SimpleAggregateQuery, STAR
from repro.db.schema import Column, ColumnType, Database, ForeignKey, Table
from repro.db.sql import (
    parse_query,
    quote_identifier,
    render_sql,
    render_sql_parameterized,
)

__all__ = [
    "AdapterCapabilities",
    "AggregateFunction",
    "AggregateSpec",
    "Column",
    "ColumnRef",
    "ColumnType",
    "ColumnarRelation",
    "CubeCoverStrategy",
    "CubeQuery",
    "CubeResult",
    "Database",
    "DiskCubeCache",
    "EngineConfig",
    "EngineStats",
    "ExecutionBackend",
    "ExecutionMode",
    "ForeignKey",
    "JoinGraph",
    "JoinPath",
    "Predicate",
    "QueryEngine",
    "STAR",
    "SimpleAggregateQuery",
    "SqlBackedTable",
    "StorageAdapter",
    "Table",
    "adapter_names",
    "canonical_backend_name",
    "create_adapter",
    "database_fingerprint",
    "fingerprint_of",
    "execute_cube",
    "execute_query",
    "load_csv",
    "load_csv_text",
    "load_sqlite_database",
    "parse_query",
    "quote_identifier",
    "register_adapter",
    "render_sql",
    "render_sql_parameterized",
]
