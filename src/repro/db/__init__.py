"""In-memory relational engine (Postgres substitute).

This subpackage provides everything AggChecker needs from a database system:

- typed :class:`~repro.db.schema.Column`/:class:`~repro.db.schema.Table`
  definitions assembled into a :class:`~repro.db.schema.Database` with
  primary-key/foreign-key constraints,
- CSV loading with type inference (:mod:`repro.db.csvio`) and data
  dictionaries (:mod:`repro.db.datadict`),
- join-path discovery over acyclic schema graphs (:mod:`repro.db.joins`),
- the paper's *Simple Aggregate Query* model (:mod:`repro.db.query`) with
  SQL rendering and parsing (:mod:`repro.db.sql`),
- a direct executor (:mod:`repro.db.executor`), a ``GROUP BY CUBE`` operator
  with ``InOrDefault`` literal collapsing (:mod:`repro.db.cube`),
- and a batch :class:`~repro.db.engine.QueryEngine` implementing the paper's
  query merging and result caching (Section 6) with execution statistics.
"""

from repro.db.aggregates import AggregateFunction
from repro.db.columnar import ColumnarRelation, ExecutionBackend
from repro.db.csvio import load_csv, load_csv_text
from repro.db.cube import CubeQuery, CubeResult, execute_cube
from repro.db.diskcache import DiskCubeCache, database_fingerprint, fingerprint_of
from repro.db.engine import (
    CubeCoverStrategy,
    EngineStats,
    ExecutionMode,
    QueryEngine,
)
from repro.db.executor import execute_query
from repro.db.joins import JoinGraph, JoinPath
from repro.db.predicates import Predicate
from repro.db.query import AggregateSpec, ColumnRef, SimpleAggregateQuery, STAR
from repro.db.schema import Column, ColumnType, Database, ForeignKey, Table
from repro.db.sql import parse_query, render_sql

__all__ = [
    "AggregateFunction",
    "AggregateSpec",
    "Column",
    "ColumnRef",
    "ColumnType",
    "ColumnarRelation",
    "CubeCoverStrategy",
    "CubeQuery",
    "CubeResult",
    "Database",
    "DiskCubeCache",
    "EngineStats",
    "ExecutionBackend",
    "ExecutionMode",
    "ForeignKey",
    "JoinGraph",
    "JoinPath",
    "Predicate",
    "QueryEngine",
    "STAR",
    "SimpleAggregateQuery",
    "Table",
    "database_fingerprint",
    "fingerprint_of",
    "execute_cube",
    "execute_query",
    "load_csv",
    "load_csv_text",
    "parse_query",
    "render_sql",
]
