"""SQL rendering, parsing, and natural-language description of claim queries.

Ground-truth annotations in the corpus are written as paper-style SQL
(``SELECT Count(*) FROM t WHERE a = 'x' AND b = 'y'``); the parser turns
them back into canonical :class:`SimpleAggregateQuery` objects. The
natural-language description mirrors the AggChecker UI's hover text
(paper Figure 3(b)).
"""

from __future__ import annotations

import re

from repro.db.aggregates import SQL_NAMES, AggregateFunction
from repro.db.predicates import Predicate
from repro.db.query import AggregateSpec, ColumnRef, STAR, SimpleAggregateQuery
from repro.db.schema import Database
from repro.db.values import Value, coerce_number
from repro.errors import SqlParseError

_QUERY_RE = re.compile(
    r"^\s*SELECT\s+(?P<fn>[A-Za-z_]+)\s*\(\s*(?P<arg>\*|[\w.]+)\s*\)\s*"
    r"FROM\s+(?P<from>.+?)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_PREDICATE_RE = re.compile(
    r"^\s*(?P<col>[\w.]+)\s*=\s*(?P<val>'(?:[^']|'')*'|[-\w.%$]+)\s*$",
)


def render_sql(query: SimpleAggregateQuery) -> str:
    """Render a query in the paper's SQL style (condition predicate first).

    This is the *display/annotation* form: literals are inlined (with
    ``''`` escaping) and identifiers are bare, exactly as the corpus
    ground-truth files write them. Never feed this string to a real SQL
    engine — use :func:`render_sql_parameterized` for executable SQL.
    """
    tables = sorted(query.referenced_tables()) or ["T"]
    from_clause = " JOIN ".join(tables)
    select = f"SELECT {query.aggregate.function.sql_name}({_render_column(query.aggregate.column)})"
    parts = [select, f"FROM {from_clause}"]
    predicates = query.all_predicates
    if predicates:
        rendered = " AND ".join(
            f"{_render_column(p.column)} = {_render_value(p.value)}"
            for p in predicates
        )
        parts.append(f"WHERE {rendered}")
    return " ".join(parts)


def quote_identifier(name: str) -> str:
    """Quote a table or column name for executable SQL (``"`` doubling).

    Shared by every SQL storage adapter: scraped CSV headers routinely
    contain spaces, quotes, and keywords, so identifiers are always
    quoted rather than validated.
    """
    if "\x00" in name:
        raise SqlParseError(f"identifier contains NUL byte: {name!r}")
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def render_sql_parameterized(
    query: SimpleAggregateQuery,
) -> tuple[str, tuple[Value, ...]]:
    """Render a query as executable SQL with ``?`` placeholders.

    Returns ``(sql, params)`` in qmark style (shared by the SQLite and
    DuckDB adapters). Unlike :func:`render_sql`, identifiers are quoted
    and literals travel out-of-band as bind parameters, so hostile
    values in claims or scraped data cannot change the statement.
    """
    tables = sorted(query.referenced_tables()) or ["T"]
    from_clause = " JOIN ".join(quote_identifier(table) for table in tables)
    column = query.aggregate.column
    arg = "*" if column.is_star else quote_identifier(column.column)
    parts = [
        f"SELECT {query.aggregate.function.sql_name}({arg})",
        f"FROM {from_clause}",
    ]
    params: list[Value] = []
    predicates = query.all_predicates
    if predicates:
        clauses = []
        for predicate in predicates:
            clauses.append(f"{quote_identifier(predicate.column.column)} = ?")
            params.append(predicate.value)
        parts.append("WHERE " + " AND ".join(clauses))
    return " ".join(parts), tuple(params)


def parse_query(sql: str, database: Database) -> SimpleAggregateQuery:
    """Parse paper-style SQL into a canonical Simple Aggregate Query."""
    match = _QUERY_RE.match(sql)
    if match is None:
        raise SqlParseError(f"not a Simple Aggregate Query: {sql!r}")
    fn_name = match.group("fn").lower()
    function = SQL_NAMES.get(fn_name)
    if function is None:
        raise SqlParseError(f"unknown aggregation function {match.group('fn')!r}")
    from_tables = _parse_from(match.group("from"), database)
    column = _resolve_aggregate_column(
        match.group("arg"), function, from_tables, database
    )
    predicates = _parse_predicates(match.group("where"), from_tables, database)
    if function is AggregateFunction.CONDITIONAL_PROBABILITY:
        if not predicates:
            raise SqlParseError("ConditionalProbability requires predicates")
        condition, *event = predicates
        return SimpleAggregateQuery(
            AggregateSpec(function, column), tuple(event), condition
        )
    return SimpleAggregateQuery(AggregateSpec(function, column), tuple(predicates))


def describe_query(query: SimpleAggregateQuery) -> str:
    """Natural-language description of a query (UI hover text)."""
    fn = query.aggregate.function
    column = query.aggregate.column
    subject = "rows" if column.is_star else f"'{column.column}' values"
    head = {
        AggregateFunction.COUNT: f"the number of {subject}",
        AggregateFunction.COUNT_DISTINCT: f"the number of distinct {subject}",
        AggregateFunction.SUM: f"the sum of {subject}",
        AggregateFunction.AVG: f"the average of {subject}",
        AggregateFunction.MIN: f"the minimum of {subject}",
        AggregateFunction.MAX: f"the maximum of {subject}",
        AggregateFunction.PERCENTAGE: f"the percentage of {subject}",
        AggregateFunction.CONDITIONAL_PROBABILITY: f"the probability of {subject}",
    }[fn]
    clauses = [
        f"'{p.column.column}' is '{p.value}'" for p in query.predicates
    ]
    text = head
    if clauses:
        text += " where " + " and ".join(clauses)
    if query.condition is not None:
        text += (
            f" given that '{query.condition.column.column}' is "
            f"'{query.condition.value}'"
        )
    return text


def _render_column(column: ColumnRef) -> str:
    if column.is_star:
        return "*"
    return column.column


def _render_value(value: Value) -> str:
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _parse_from(from_clause: str, database: Database) -> list[str]:
    text = re.sub(r"\bE-JOIN\b|\bJOIN\b|,", " ", from_clause, flags=re.IGNORECASE)
    tables = [token for token in text.split() if token]
    for name in tables:
        if not database.has_table(name):
            raise SqlParseError(f"unknown table {name!r} in FROM clause")
    if not tables:
        raise SqlParseError("empty FROM clause")
    return tables


def _resolve_aggregate_column(
    arg: str,
    function: AggregateFunction,
    from_tables: list[str],
    database: Database,
) -> ColumnRef:
    if arg == "*":
        # Single-table databases use the canonical table-less star so that
        # parsed queries compare equal to generated candidates.
        if len(database.tables) == 1:
            return STAR
        # Multi-table: bind the star to the first FROM table (determines
        # which rows Count(*) counts when predicates alone fix the join).
        return ColumnRef(from_tables[0], "*")
    return _resolve_column(arg, from_tables, database)


def _resolve_column(
    name: str, from_tables: list[str], database: Database
) -> ColumnRef:
    if "." in name:
        table, _, column = name.partition(".")
        database.table(table).column(column)
        return ColumnRef(table, column)
    candidates = [
        table_name
        for table_name in from_tables
        if database.table(table_name).has_column(name)
    ]
    if not candidates:
        candidates = [
            table.name for table in database.tables if table.has_column(name)
        ]
    if not candidates:
        raise SqlParseError(f"column {name!r} not found in any table")
    if len(candidates) > 1:
        raise SqlParseError(
            f"column {name!r} is ambiguous across tables {candidates}"
        )
    return ColumnRef(candidates[0], name)


def _parse_predicates(
    where: str | None, from_tables: list[str], database: Database
) -> list[Predicate]:
    if not where:
        return []
    parts = _split_conjunction(where)
    predicates = []
    for part in parts:
        match = _PREDICATE_RE.match(part)
        if match is None:
            raise SqlParseError(f"not a unary equality predicate: {part!r}")
        column = _resolve_column(match.group("col"), from_tables, database)
        predicates.append(Predicate(column, _parse_value(match.group("val"))))
    return predicates


def _split_conjunction(where: str) -> list[str]:
    """Split on AND outside of quoted strings."""
    parts: list[str] = []
    current: list[str] = []
    in_quote = False
    tokens = re.split(r"(\s+[Aa][Nn][Dd]\s+|')", where)
    for token in tokens:
        if token == "'":
            in_quote = not in_quote
            current.append(token)
        elif not in_quote and re.fullmatch(r"\s+[Aa][Nn][Dd]\s+", token or ""):
            parts.append("".join(current))
            current = []
        else:
            current.append(token or "")
    parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _parse_value(text: str) -> Value:
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1].replace("''", "'")
    number = coerce_number(text)
    if number is not None:
        return number
    return text
