"""Data dictionary parsing.

A data dictionary maps column names to free-text descriptions (paper
Section 4.2: "If a data dictionary is provided, we add for each column the
data dictionary description to its associated keywords"). We support the
common two-column CSV format ``column,description`` and a simple
``column: description`` line format.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.db.schema import Column, Database, Table
from repro.errors import DataDictionaryError


def parse_data_dictionary(text: str) -> dict[str, str]:
    """Parse dictionary text into a {column_name: description} mapping."""
    stripped = text.strip()
    if not stripped:
        raise DataDictionaryError("empty data dictionary")
    if _looks_like_csv(stripped):
        return _parse_csv(stripped)
    return _parse_lines(stripped)


def load_data_dictionary(path: str | Path) -> dict[str, str]:
    """Read and parse a data dictionary file."""
    try:
        text = Path(path).read_text(encoding="utf-8-sig")
    except OSError as exc:
        raise DataDictionaryError(f"cannot read {path}: {exc}") from exc
    return parse_data_dictionary(text)


def apply_data_dictionary(table: Table, dictionary: dict[str, str]) -> Table:
    """Return a copy of ``table`` with column descriptions filled in.

    Lookup is case-insensitive; unknown dictionary entries are ignored (real
    dictionaries routinely describe columns that were dropped from the data).
    """
    lowered = {name.strip().lower(): desc for name, desc in dictionary.items()}
    columns = []
    for column in table.columns:
        description = lowered.get(column.name.strip().lower(), column.description)
        columns.append(Column(column.name, column.type, description))
    # with_columns keeps the row storage: a plain Table shares its row
    # list, a SQL-file-backed table stays lazy (no materialization).
    return table.with_columns(columns)


def apply_to_database(database: Database, dictionary: dict[str, str]) -> Database:
    """Apply one dictionary to every table of a database."""
    tables = [apply_data_dictionary(table, dictionary) for table in database.tables]
    return Database(database.name, tables, database.foreign_keys)


def _looks_like_csv(text: str) -> bool:
    first = text.splitlines()[0]
    return "," in first and ":" not in first.split(",")[0]


def _parse_csv(text: str) -> dict[str, str]:
    reader = csv.reader(io.StringIO(text))
    try:
        rows = [
            row for row in reader if row and any(cell.strip() for cell in row)
        ]
    except csv.Error as exc:
        # Fields over csv.field_size_limit or broken quoting: surface the
        # structured error, never a raw _csv.Error traceback.
        raise DataDictionaryError(f"data dictionary: {exc}") from exc
    if not rows:
        raise DataDictionaryError("data dictionary has no rows")
    start = 0
    head = [cell.strip().lower() for cell in rows[0]]
    if head[:1] == ["column"] or head[:1] == ["name"] or head[:1] == ["field"]:
        start = 1
    mapping: dict[str, str] = {}
    for row in rows[start:]:
        if len(row) < 2:
            continue
        name = row[0].strip()
        description = ",".join(cell.strip() for cell in row[1:] if cell.strip())
        if name:
            mapping[name] = description
    if not mapping:
        raise DataDictionaryError("data dictionary contains no usable entries")
    return mapping


def _parse_lines(text: str) -> dict[str, str]:
    mapping: dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#") or ":" not in line:
            continue
        name, _, description = line.partition(":")
        if name.strip():
            mapping[name.strip()] = description.strip()
    if not mapping:
        raise DataDictionaryError("data dictionary contains no usable entries")
    return mapping
