"""Cell values and type coercion for the in-memory engine.

A cell is one of: ``None`` (SQL NULL), ``str``, ``int``, or ``float``.
Numeric columns may mix ``int`` and ``float``. String comparison is
case-insensitive (newspaper text rarely matches database casing), which
mirrors how the paper matches claim keywords against database literals.
"""

from __future__ import annotations

import math
from typing import Any

Value = None | str | int | float

#: Sentinel used by the cube operator's ``InOrDefault`` rewrite for literals
#: with zero marginal probability (paper Section 6.2). Using a dedicated
#: object keeps it distinct from every real cell value, including None.
DEFAULT_LITERAL = "\x00<other>"


def is_missing(value: Value) -> bool:
    """Return True for SQL NULL or an empty/whitespace-only string."""
    if value is None:
        return True
    if isinstance(value, str):
        return not value.strip()
    return False


def is_numeric(value: Value) -> bool:
    """Return True if the value is a usable number (not NULL, not NaN)."""
    if isinstance(value, bool):
        return False
    if isinstance(value, int):
        return True
    if isinstance(value, float):
        return not math.isnan(value)
    return False


def coerce_number(value: Value) -> float | int | None:
    """Best-effort conversion of a cell to a number, else None.

    Handles thousands separators, currency symbols, percent signs and
    surrounding whitespace, which are all common in scraped CSV files.
    """
    if is_numeric(value):
        return value  # type: ignore[return-value]
    if not isinstance(value, str):
        return None
    text = value.strip().replace(",", "")
    if not text:
        return None
    if text.startswith("$"):
        text = text[1:]
    if text.endswith("%"):
        text = text[:-1]
    negative = False
    if text.startswith("(") and text.endswith(")"):
        negative = True
        text = text[1:-1]
    try:
        number = int(text)
    except ValueError:
        try:
            number = float(text)
        except ValueError:
            return None
        if math.isnan(number) or math.isinf(number):
            return None
    return -number if negative else number


def normalize_string(value: Value) -> str:
    """Canonical form used for equality predicates: lowercase, stripped."""
    if value is None:
        return ""
    return str(value).strip().lower()


def values_equal(left: Value, right: Value) -> bool:
    """Equality used by unary predicates.

    Numbers compare numerically (``3 == 3.0``); everything else compares via
    :func:`normalize_string`. NULL equals nothing, not even NULL, matching
    SQL semantics for ``=``.
    """
    if left is None or right is None:
        return False
    left_num = coerce_number(left) if not isinstance(left, str) else None
    right_num = coerce_number(right) if not isinstance(right, str) else None
    if left_num is not None and right_num is not None:
        return left_num == right_num
    return normalize_string(left) == normalize_string(right)


def value_sort_key(value: Value) -> tuple[int, Any]:
    """Total order over mixed-type cells (NULL < numbers < strings)."""
    if value is None:
        return (0, 0)
    if is_numeric(value):
        return (1, value)
    return (2, normalize_string(value))
