"""Columnar execution backend: dictionary-encoded relations.

The row-wise engine scans Python tuples one cell at a time and calls
:func:`~repro.db.values.normalize_string` / :func:`~repro.db.values.coerce_number`
on every cell of every pass. This module performs that work exactly once per
*distinct* cell value: each column is dictionary-encoded into an integer code
array (code 0 is reserved for missing cells — NULL and blank strings both
normalize to ``""``), and the dictionary carries the normalized string and the
numeric coercion per code. The hot operations then run over integer arrays:

- equi-joins become hash joins on key codes (:func:`build_columnar_relation`),
- cube execution becomes one vectorized pass mapping each dimension to
  per-row bucket codes, combining them into a single group id, and reducing
  COUNT/SUM/MIN/MAX/COUNT-DISTINCT per group with ``np.bincount`` and
  sorted-segment ``reduceat`` kernels (:func:`execute_cube_columnar`),
- predicate filtering becomes boolean-mask selection
  (:func:`execute_columnar_query`).

NumPy is optional: when it is absent every kernel falls back to a pure-Python
implementation over the same code arrays (still paying normalization and
numeric coercion only once per distinct value). The row-wise modules remain
the reference oracle; ``tests/db/test_columnar_oracle.py`` cross-checks the
two backends on randomized databases.

Known deliberate deviation from the row-wise oracle: cells whose *raw* value
is an infinite float are treated as non-numeric here (their normalized string
``"inf"`` does not coerce), while the row-wise ``_Partial`` accumulates the
raw ``inf``. No realistic CSV input produces float infinities.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable, Sequence
from itertools import combinations

try:  # pragma: no cover - exercised via monkeypatching in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.db.predicates import Predicate
from repro.db.refs import ColumnRef
from repro.db.schema import Database, Table
from repro.db.values import (
    DEFAULT_LITERAL,
    Value,
    coerce_number,
    is_numeric,
    normalize_string,
)
from repro.errors import JoinPathError, QueryError


def numpy_available() -> bool:
    """True when the vectorized kernels can run (used by benchmarks/tests)."""
    return _np is not None


class ExecutionBackend(enum.Enum):
    """Physical representation the engine evaluates queries against.

    ``ROW`` is the original tuple-at-a-time implementation (the reference
    oracle); ``COLUMNAR`` is the dictionary-encoded backend of this module,
    vectorized with NumPy when available and pure Python otherwise.
    """

    ROW = "row"
    COLUMNAR = "columnar"


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


class ColumnDictionary:
    """Per-column dictionary of normalized cell strings.

    Code 0 is reserved for the missing bucket: NULLs and blank strings both
    normalize to ``""``, and nothing else does, so ``code == 0`` is exactly
    :func:`~repro.db.values.is_missing`. ``numbers[code]`` caches the numeric
    coercion of the first raw cell seen for the code (cells sharing a
    normalized string coerce identically, modulo the ``inf`` caveat above).
    """

    __slots__ = ("values", "index", "numbers", "_numbers_arr", "_numeric_arr")

    def __init__(self) -> None:
        self.values: list[str] = [""]
        self.index: dict[str, int] = {"": 0}
        self.numbers: list[float | int | None] = [None]
        self._numbers_arr = None
        self._numeric_arr = None

    def __len__(self) -> int:
        return len(self.values)

    def intern(self, cell: Value) -> int:
        key = normalize_string(cell)
        code = self.index.get(key)
        if code is None:
            code = len(self.values)
            self.values.append(key)
            self.index[key] = code
            self.numbers.append(coerce_number(cell))
            self._numbers_arr = None
            self._numeric_arr = None
        return code

    def code_of(self, normalized: str) -> int | None:
        """Code of a normalized string, or None if absent from the data."""
        return self.index.get(normalized)

    @property
    def numbers_arr(self):
        """float64 per code (NaN where the code is not numeric)."""
        if self._numbers_arr is None:
            self._numbers_arr = _np.array(
                [float("nan") if n is None else float(n) for n in self.numbers],
                dtype=_np.float64,
            )
        return self._numbers_arr

    @property
    def numeric_arr(self):
        """bool per code: does the code coerce to a usable number?"""
        if self._numeric_arr is None:
            self._numeric_arr = _np.array(
                [n is not None for n in self.numbers], dtype=bool
            )
        return self._numeric_arr


class ColumnVector:
    """One encoded column: code per cell plus raw-level masks.

    ``none_mask`` (cell ``is None``) feeds join NULL-skipping, and
    ``raw_numbers`` (the cell itself when it is a non-string usable number,
    NaN otherwise) feeds :func:`~repro.db.values.values_equal`'s numeric
    comparison path for predicates with non-string values.
    """

    __slots__ = ("dictionary", "codes", "none_mask", "raw_numbers", "vectorized")

    def __init__(self, dictionary, codes, none_mask, raw_numbers, vectorized):
        self.dictionary = dictionary
        self.codes = codes
        self.none_mask = none_mask
        self.raw_numbers = raw_numbers
        self.vectorized = vectorized

    def take(self, indices) -> "ColumnVector":
        """Gather rows (the output of a join step)."""
        if self.vectorized:
            return ColumnVector(
                self.dictionary,
                self.codes[indices],
                self.none_mask[indices],
                self.raw_numbers[indices],
                True,
            )
        return ColumnVector(
            self.dictionary,
            [self.codes[i] for i in indices],
            [self.none_mask[i] for i in indices],
            [self.raw_numbers[i] for i in indices],
            False,
        )


def encode_column(cells: Iterable[Value]) -> ColumnVector:
    """Dictionary-encode one column of raw cells."""
    dictionary = ColumnDictionary()
    codes: list[int] = []
    none_mask: list[bool] = []
    raw_numbers: list[float] = []
    nan = float("nan")
    for cell in cells:
        codes.append(dictionary.intern(cell))
        none_mask.append(cell is None)
        raw_numbers.append(
            float(cell)
            if not isinstance(cell, str) and is_numeric(cell)
            else nan
        )
    if _np is not None:
        return ColumnVector(
            dictionary,
            _np.array(codes, dtype=_np.int64),
            _np.array(none_mask, dtype=bool),
            _np.array(raw_numbers, dtype=_np.float64),
            True,
        )
    return ColumnVector(dictionary, codes, none_mask, raw_numbers, False)


class EncodedTable:
    """All columns of one base table, encoded once and reused by every join."""

    __slots__ = ("name", "vectors")

    def __init__(self, name: str, vectors: list[ColumnVector]) -> None:
        self.name = name
        self.vectors = vectors


def encode_table(table: Table) -> EncodedTable:
    n_cols = len(table.columns)
    columns: list[list[Value]] = [[] for _ in range(n_cols)]
    for row in table.rows:
        for i in range(n_cols):
            columns[i].append(row[i])
    return EncodedTable(table.name, [encode_column(cells) for cells in columns])


class ColumnarRelation:
    """A (possibly joined) row set stored as dictionary-encoded columns.

    Mirrors the :class:`~repro.db.joins.Relation` lookup interface so the
    engine's bookkeeping (``len``, column resolution) is representation
    agnostic; the cube and executor dispatch on the concrete type.
    """

    def __init__(
        self, columns: Sequence[ColumnRef], vectors: Sequence[ColumnVector], n_rows: int
    ) -> None:
        self.columns: tuple[ColumnRef, ...] = tuple(columns)
        self._index = {column: i for i, column in enumerate(self.columns)}
        self.vectors: tuple[ColumnVector, ...] = tuple(vectors)
        self._n_rows = n_rows

    def __len__(self) -> int:
        return self._n_rows

    def column_index(self, column: ColumnRef) -> int:
        try:
            return self._index[column]
        except KeyError:
            raise JoinPathError(f"column {column} not in relation") from None

    def has_column(self, column: ColumnRef) -> bool:
        return column in self._index

    def vector(self, column: ColumnRef) -> ColumnVector:
        return self.vectors[self.column_index(column)]


# ----------------------------------------------------------------------
# Hash join on key codes
# ----------------------------------------------------------------------


def _code_remap(build_dict: ColumnDictionary, probe_dict: ColumnDictionary):
    """Map build-side codes into the probe dictionary's code space (-1: absent)."""
    if build_dict is probe_dict:
        return None
    remap = [probe_dict.index.get(v, -1) for v in build_dict.values]
    return _np.array(remap, dtype=_np.int64) if _np is not None else remap


def _join_numpy(probe_codes, probe_none, build_codes, build_none, remap):
    """Match rows on equal key codes; returns (probe row ids, build row ids).

    Output order matches the row-wise nested-loop join: probe-major, build
    rows in original order within each key group (stable sort).
    """
    build_keys = build_codes if remap is None else remap[build_codes]
    build_valid = ~build_none & (build_keys >= 0)
    build_rows = _np.flatnonzero(build_valid)
    keys_build = build_keys[build_rows]
    order = _np.argsort(keys_build, kind="stable")
    keys_build = keys_build[order]
    build_rows = build_rows[order]
    probe_rows = _np.flatnonzero(~probe_none)
    keys_probe = probe_codes[probe_rows]
    starts = _np.searchsorted(keys_build, keys_probe, side="left")
    ends = _np.searchsorted(keys_build, keys_probe, side="right")
    counts = ends - starts
    total = int(counts.sum())
    probe_sel = _np.repeat(probe_rows, counts)
    offsets = _np.repeat(_np.cumsum(counts) - counts, counts)
    flat = _np.arange(total, dtype=_np.int64) - offsets + _np.repeat(starts, counts)
    build_sel = build_rows[flat]
    return probe_sel, build_sel


def _join_python(probe_codes, probe_none, build_codes, build_none, remap):
    buckets: dict[int, list[int]] = {}
    for row, code in enumerate(build_codes):
        if build_none[row]:
            continue
        key = code if remap is None else remap[code]
        if key < 0:
            continue
        buckets.setdefault(int(key), []).append(row)
    probe_sel: list[int] = []
    build_sel: list[int] = []
    for row, code in enumerate(probe_codes):
        if probe_none[row]:
            continue
        for match in buckets.get(int(code), ()):
            probe_sel.append(row)
            build_sel.append(match)
    return probe_sel, build_sel


def _take_indices(indices, selection):
    if _np is not None and not isinstance(indices, list):
        return indices[selection]
    return [indices[i] for i in selection]


def build_columnar_relation(
    database: Database,
    path,  # JoinPath (not imported to avoid a cycle with repro.db.joins)
    encoded_of: Callable[[str], EncodedTable],
) -> ColumnarRelation:
    """Materialize the equi-join over ``path`` as a columnar relation.

    Follows the same edge order and join semantics as the row-wise
    ``JoinGraph._build_relation``: NULL key cells never match, keys compare
    by normalized string (here: by dictionary code), and column order is the
    concatenation of each table's columns in join order.
    """
    first = database.table(path.tables[0])
    encoded = encoded_of(first.name)
    column_refs: list[ColumnRef] = [
        ColumnRef(first.name, column.name) for column in first.columns
    ]
    # Per output column: which per-table row-index array and source vector.
    sources: list[tuple[int, ColumnVector]] = [(0, v) for v in encoded.vectors]
    if _np is not None:
        indices = [_np.arange(len(first), dtype=_np.int64)]
    else:
        indices = [list(range(len(first)))]
    joined = {first.name}
    pending = list(path.edges)
    while pending:
        edge = next(
            (
                fk
                for fk in pending
                if fk.source_table in joined or fk.target_table in joined
            ),
            None,
        )
        if edge is None:
            raise JoinPathError("disconnected join tree")
        pending.remove(edge)
        if edge.source_table in joined:
            existing_col = ColumnRef(edge.source_table, edge.source_column)
            new_table = database.table(edge.target_table)
            new_key = edge.target_column
        else:
            existing_col = ColumnRef(edge.target_table, edge.target_column)
            new_table = database.table(edge.source_table)
            new_key = edge.source_column
        slot, probe_vector = sources[column_refs.index(existing_col)]
        probe_codes = _take_indices(probe_vector.codes, indices[slot])
        probe_none = _take_indices(probe_vector.none_mask, indices[slot])
        new_encoded = encoded_of(new_table.name)
        build_vector = new_encoded.vectors[new_table.column_index(new_key)]
        remap = _code_remap(build_vector.dictionary, probe_vector.dictionary)
        join = _join_numpy if _np is not None else _join_python
        probe_sel, build_sel = join(
            probe_codes, probe_none, build_vector.codes, build_vector.none_mask, remap
        )
        indices = [_take_indices(ix, probe_sel) for ix in indices]
        indices.append(build_sel)
        new_slot = len(indices) - 1
        column_refs.extend(
            ColumnRef(new_table.name, column.name) for column in new_table.columns
        )
        sources.extend((new_slot, v) for v in new_encoded.vectors)
        joined.add(new_table.name)
    vectors = [vector.take(indices[slot]) for slot, vector in sources]
    return ColumnarRelation(column_refs, vectors, len(indices[0]))


# ----------------------------------------------------------------------
# Predicate masks (vectorized WHERE evaluation)
# ----------------------------------------------------------------------


def _predicate_mask(relation: ColumnarRelation, predicate: Predicate):
    """Boolean row mask replicating ``values_equal(cell, predicate.value)``.

    String predicate values always compare by normalized string (code
    equality); non-string values compare numerically against non-string
    numeric cells and by normalized string against everything else. NULL
    cells never match.
    """
    vector = relation.vector(predicate.column)
    value = predicate.value
    code = vector.dictionary.code_of(normalize_string(value))
    if _np is not None and vector.vectorized:
        codes = vector.codes
        not_none = ~vector.none_mask
        code_mask = (
            (codes == code) & not_none
            if code is not None
            else _np.zeros(len(relation), dtype=bool)
        )
        if isinstance(value, str) or coerce_number(value) is None:
            return code_mask
        raw_numeric = ~_np.isnan(vector.raw_numbers)
        numeric_mask = raw_numeric & (vector.raw_numbers == float(coerce_number(value)))
        return numeric_mask | (code_mask & ~raw_numeric)
    value_number = None if isinstance(value, str) else coerce_number(value)
    mask = []
    for c, none, raw in zip(vector.codes, vector.none_mask, vector.raw_numbers):
        if none:
            mask.append(False)
        elif value_number is not None and raw == raw:  # raw is not NaN
            mask.append(raw == float(value_number))
        else:
            mask.append(code is not None and c == code)
    return mask


def _combine_masks(relation: ColumnarRelation, predicates: Sequence[Predicate]):
    """AND of all predicate masks; None means "all rows"."""
    mask = None
    for predicate in predicates:
        pmask = _predicate_mask(relation, predicate)
        if mask is None:
            mask = pmask
        elif _np is not None and not isinstance(mask, list):
            mask &= pmask
        else:
            mask = [a and b for a, b in zip(mask, pmask)]
    return mask


def _select_codes(vector: ColumnVector, mask):
    if _np is not None and vector.vectorized:
        return vector.codes if mask is None else vector.codes[mask]
    if mask is None:
        return vector.codes
    return [c for c, keep in zip(vector.codes, mask) if keep]


def count_matching_columnar(
    relation: ColumnarRelation,
    aggregate_column: ColumnRef,
    predicates: Sequence[Predicate],
) -> int:
    """Columnar twin of :func:`repro.db.executor.count_matching`."""
    mask = _combine_masks(relation, predicates)
    if aggregate_column.is_star:
        if mask is None:
            return len(relation)
        return int(mask.sum()) if not isinstance(mask, list) else sum(mask)
    codes = _select_codes(relation.vector(aggregate_column), mask)
    if _np is not None and not isinstance(codes, list):
        return int((codes != 0).sum())
    return sum(1 for c in codes if c != 0)


def execute_columnar_query(relation: ColumnarRelation, query) -> Value:
    """Evaluate one SimpleAggregateQuery by boolean-mask selection.

    Replicates ``compute_plain`` semantics (NULLs skipped, numeric
    aggregates over coercible cells only, Avg divides by the *numeric*
    count) and the footnote-1 ratio definitions.
    """
    from repro.db.aggregates import AggregateFunction, ratio_value

    fn = query.aggregate.function
    column = query.aggregate.column
    if fn.is_ratio:
        numerator = count_matching_columnar(relation, column, query.all_predicates)
        if fn is AggregateFunction.PERCENTAGE:
            denominator = count_matching_columnar(relation, column, ())
        else:  # CONDITIONAL_PROBABILITY
            assert query.condition is not None
            denominator = count_matching_columnar(
                relation, column, (query.condition,)
            )
        return ratio_value(numerator, denominator)

    if fn is AggregateFunction.COUNT:
        return count_matching_columnar(relation, column, query.all_predicates)
    mask = _combine_masks(relation, query.all_predicates)
    vector = relation.vector(column)
    codes = _select_codes(vector, mask)
    if fn is AggregateFunction.COUNT_DISTINCT:
        if _np is not None and not isinstance(codes, list):
            distinct = _np.unique(codes)
            return int(len(distinct) - (1 if len(distinct) and distinct[0] == 0 else 0))
        return len({c for c in codes if c != 0})
    # Numeric aggregates over the coercible cells of the selection.
    if _np is not None and not isinstance(codes, list):
        numeric = vector.dictionary.numeric_arr[codes]
        values = vector.dictionary.numbers_arr[codes][numeric]
        if len(values) == 0:
            return None
        if fn is AggregateFunction.SUM:
            return float(values.sum())
        if fn is AggregateFunction.AVG:
            return float(values.sum()) / len(values)
        if fn is AggregateFunction.MIN:
            return float(values.min())
        if fn is AggregateFunction.MAX:
            return float(values.max())
        raise QueryError(f"unsupported aggregate {fn}")
    numbers = vector.dictionary.numbers
    values = [numbers[c] for c in codes if numbers[c] is not None]
    if not values:
        return None
    if fn is AggregateFunction.SUM:
        return float(sum(values))
    if fn is AggregateFunction.AVG:
        return float(sum(values)) / len(values)
    if fn is AggregateFunction.MIN:
        return float(min(values))
    if fn is AggregateFunction.MAX:
        return float(max(values))
    raise QueryError(f"unsupported aggregate {fn}")


# ----------------------------------------------------------------------
# Vectorized cube execution
# ----------------------------------------------------------------------


class _GroupAcc:
    """Mergeable per-cell accumulator used by the rollup phase.

    The scalar fields mirror the row-wise ``_Partial``; ``distinct`` holds
    code collections (NumPy arrays or sets) that are unioned lazily at
    finalization.
    """

    __slots__ = ("rows", "count", "total", "ncount", "minimum", "maximum", "distinct")

    def __init__(self, track_distinct: bool) -> None:
        self.rows = 0
        self.count = 0
        self.total = 0.0
        self.ncount = 0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.distinct: list | None = [] if track_distinct else None

    def absorb(self, stats: "_ColumnStats", group: int) -> None:
        self.rows += stats.rows[group]
        if stats.star:
            return
        self.count += stats.count[group]
        self.total += stats.total[group]
        self.ncount += stats.ncount[group]
        if stats.ncount[group]:
            minimum = stats.minimum[group]
            maximum = stats.maximum[group]
            if self.minimum is None or minimum < self.minimum:
                self.minimum = minimum
            if self.maximum is None or maximum > self.maximum:
                self.maximum = maximum
        if self.distinct is not None:
            codes = stats.distinct[group]
            if len(codes):
                self.distinct.append(codes)

    def distinct_count(self) -> int:
        if not self.distinct:
            return 0
        if _np is not None and not isinstance(self.distinct[0], (set, frozenset)):
            if len(self.distinct) == 1:
                return int(len(self.distinct[0]))
            return int(len(_np.unique(_np.concatenate(self.distinct))))
        union: set[int] = set()
        for part in self.distinct:
            union |= set(part)
        return len(union)

    def finalize(self, spec) -> Value:
        """Same semantics as the row-wise ``_Partial.finalize``."""
        from repro.db.aggregates import AggregateFunction

        fn = spec.function
        if fn is AggregateFunction.COUNT:
            return int(self.rows if spec.column.is_star else self.count)
        if fn is AggregateFunction.COUNT_DISTINCT:
            return self.distinct_count()
        if self.ncount == 0:
            # No numeric cells: Sum/Avg/Min/Max are NULL.
            return None
        if fn is AggregateFunction.SUM:
            return float(self.total)
        if fn is AggregateFunction.AVG:
            # Divide by the numeric count (matches compute_plain).
            return float(self.total) / int(self.ncount)
        if fn is AggregateFunction.MIN:
            return float(self.minimum)
        if fn is AggregateFunction.MAX:
            return float(self.maximum)
        raise QueryError(f"unsupported basis aggregate {fn}")


class _ColumnStats:
    """Per-group reductions of one aggregation column (phase 1 output)."""

    __slots__ = ("star", "rows", "count", "total", "ncount", "minimum", "maximum", "distinct")

    def __init__(self, n_groups: int, star: bool, track_distinct: bool) -> None:
        self.star = star
        self.rows = [0] * n_groups
        self.count = [0] * n_groups
        self.total = [0.0] * n_groups
        self.ncount = [0] * n_groups
        self.minimum = [0.0] * n_groups
        self.maximum = [0.0] * n_groups
        self.distinct = (
            [set() for _ in range(n_groups)] if track_distinct else None
        )


def _group_rows(relation: ColumnarRelation, cube):
    """Phase 0: one combined group id per row, compacted after each dimension.

    Returns ``(inverse, group_keys)`` where ``inverse`` assigns each row its
    compact group index and ``group_keys[g]`` is the tuple of bucket labels
    (literal string or ``DEFAULT_LITERAL``) of group ``g``. Compacting after
    each dimension keeps combined ids bounded by ``n_groups * radix`` and
    immune to radix overflow.
    """
    n_rows = len(relation)
    vectorized = _np is not None
    if n_rows == 0:
        # No rows: no groups at all (matches the row-wise phase 1).
        return (_np.zeros(0, dtype=_np.int64) if vectorized else []), []
    if vectorized:
        inverse = _np.zeros(n_rows, dtype=_np.int64)
    else:
        inverse = [0] * n_rows
    group_keys: list[tuple[str, ...]] = [()]
    for dim, literals in cube.literals:
        vector = relation.vector(dim)
        dictionary = vector.dictionary
        bucket_values = [DEFAULT_LITERAL]
        lut = [0] * len(dictionary)
        for literal in sorted(literals):
            code = dictionary.code_of(literal)
            if code is None:
                continue  # literal never occurs: only the default bucket sees it
            lut[code] = len(bucket_values)
            bucket_values.append(literal)
        radix = len(bucket_values)
        if vectorized:
            buckets = _np.array(lut, dtype=_np.int64)[vector.codes]
            combined = inverse * radix + buckets
            uniq, inverse = _np.unique(combined, return_inverse=True)
            uniq_list = uniq.tolist()
        else:
            combined = [g * radix + lut[c] for g, c in zip(inverse, vector.codes)]
            uniq_list = sorted(set(combined))
            position = {value: i for i, value in enumerate(uniq_list)}
            inverse = [position[value] for value in combined]
        group_keys = [
            group_keys[value // radix] + (bucket_values[value % radix],)
            for value in uniq_list
        ]
    return inverse, group_keys


def _column_stats_numpy(
    relation, inverse, n_groups: int, column: ColumnRef | None, track_distinct: bool
) -> _ColumnStats:
    stats = _ColumnStats(n_groups, star=column is None, track_distinct=False)
    stats.rows = _np.bincount(inverse, minlength=n_groups)
    if column is None:
        return stats
    vector = relation.vector(column)
    codes = vector.codes
    non_missing = codes != 0
    stats.count = _np.bincount(inverse[non_missing], minlength=n_groups)
    numeric = vector.dictionary.numeric_arr[codes]
    numeric_inverse = inverse[numeric]
    values = vector.dictionary.numbers_arr[codes][numeric]
    stats.ncount = _np.bincount(numeric_inverse, minlength=n_groups)
    stats.total = _np.bincount(numeric_inverse, weights=values, minlength=n_groups)
    stats.minimum = _np.zeros(n_groups, dtype=_np.float64)
    stats.maximum = _np.zeros(n_groups, dtype=_np.float64)
    if len(numeric_inverse):
        order = _np.argsort(numeric_inverse, kind="stable")
        sorted_groups = numeric_inverse[order]
        sorted_values = values[order]
        bounds = _np.flatnonzero(
            _np.concatenate(([True], sorted_groups[1:] != sorted_groups[:-1]))
        )
        group_ids = sorted_groups[bounds]
        stats.minimum[group_ids] = _np.minimum.reduceat(sorted_values, bounds)
        stats.maximum[group_ids] = _np.maximum.reduceat(sorted_values, bounds)
    if track_distinct:
        # Distinct (group, code) pairs; split into per-group code arrays.
        pairs = _np.unique(inverse[non_missing] * len(vector.dictionary) + codes[non_missing])
        pair_groups = pairs // len(vector.dictionary)
        pair_codes = pairs % len(vector.dictionary)
        stats.distinct = [pair_codes[0:0]] * n_groups
        if len(pairs):
            bounds = _np.flatnonzero(
                _np.concatenate(([True], pair_groups[1:] != pair_groups[:-1]))
            )
            for start, end, group in zip(
                bounds, list(bounds[1:]) + [len(pairs)], pair_groups[bounds]
            ):
                stats.distinct[int(group)] = pair_codes[start:end]
    return stats


def _column_stats_python(
    relation, inverse, n_groups: int, column: ColumnRef | None, track_distinct: bool
) -> _ColumnStats:
    stats = _ColumnStats(n_groups, star=column is None, track_distinct=track_distinct)
    for group in inverse:
        stats.rows[group] += 1
    if column is None:
        return stats
    vector = relation.vector(column)
    numbers = vector.dictionary.numbers
    count = stats.count
    total = stats.total
    ncount = stats.ncount
    minimum = stats.minimum
    maximum = stats.maximum
    distinct = stats.distinct
    for group, code in zip(inverse, vector.codes):
        if code == 0:
            continue
        count[group] += 1
        if distinct is not None:
            distinct[group].add(code)
        number = numbers[code]
        if number is not None:
            total[group] += number
            if ncount[group] == 0 or number < minimum[group]:
                minimum[group] = number
            if ncount[group] == 0 or number > maximum[group]:
                maximum[group] = number
            ncount[group] += 1
    return stats


def execute_cube_columnar(relation: ColumnarRelation, cube, budget=None):
    """Vectorized twin of the row-wise ``_cube_over_relation``.

    Phase 1 reduces every basis aggregate per fully-specified group with
    array kernels; phase 2 rolls the (few) groups up to every dimension
    subset in Python; phase 3 finalizes into the standard
    :class:`~repro.db.cube.CubeResult` cell dictionary. ``budget``
    (optional :class:`repro.budget.ResourceBudget`) bounds the rollup
    work — ``n_groups * 2^n_dims`` merges — before phase 2 starts, using
    the real group count rather than the engine's literal-based estimate.
    """
    from repro.db.aggregates import AggregateFunction
    from repro.db.cube import ALL, CubeResult, _check_rollup_budget

    inverse, group_keys = _group_rows(relation, cube)
    n_groups = len(group_keys)
    _check_rollup_budget(budget, n_groups, len(cube.dimensions))

    # One stat bundle per distinct aggregation column ('*' columns share one).
    bundle_keys: list[ColumnRef | None] = []
    spec_bundle: dict = {}
    for spec in cube.aggregates:
        key = None if spec.column.is_star else spec.column
        if key not in spec_bundle:
            spec_bundle[key] = len(bundle_keys)
            bundle_keys.append(key)
        # COUNT_DISTINCT on any spec of this column requires distinct codes.
    needs_distinct = {
        None if spec.column.is_star else spec.column
        for spec in cube.aggregates
        if spec.function is AggregateFunction.COUNT_DISTINCT
    }
    column_stats = _column_stats_numpy if _np is not None else _column_stats_python
    bundles = [
        column_stats(relation, inverse, n_groups, key, key in needs_distinct)
        for key in bundle_keys
    ]
    track_distinct = [key in needs_distinct for key in bundle_keys]

    # Phase 2: roll up to every subset of dimensions (mirrors row-wise).
    n_dims = len(cube.dimensions)
    masks: list[frozenset[int]] = []
    for size in range(n_dims + 1):
        masks.extend(frozenset(m) for m in combinations(range(n_dims), size))
    rolled: dict[tuple, list[_GroupAcc]] = {}
    for group in range(n_groups):
        full_key = group_keys[group]
        for kept in masks:
            key = tuple(
                full_key[i] if i in kept else ALL for i in range(n_dims)
            )
            accs = rolled.get(key)
            if accs is None:
                accs = [_GroupAcc(track) for track in track_distinct]
                rolled[key] = accs
            for acc, bundle in zip(accs, bundles):
                acc.absorb(bundle, group)

    # Phase 3: finalize.
    cells: dict[tuple, dict] = {}
    for key, accs in rolled.items():
        cells[key] = {
            spec: accs[spec_bundle[None if spec.column.is_star else spec.column]].finalize(spec)
            for spec in cube.aggregates
        }
    return CubeResult(cube, cells, rows_scanned=len(relation))
