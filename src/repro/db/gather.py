"""Zero-materialization evaluation of factorized candidate spaces.

The per-query evaluation path materializes a ``SimpleAggregateQuery``
object for every candidate of every claim, hashes it through sets and
dicts, and rebuilds a predicate dict plus a cell-key tuple per query —
work that dominates warm-cache corpus runs once physical cube execution
is cached away. This module answers the *factorized* candidate space
directly: the paper's observation that "one cube query can serve the
whole cross product" extends naturally to the answering side, because a
candidate's cell key depends only on its predicate subset, not on the
(function x column x subset) triple itself.

Per (tables, dims, spec) group the kernels therefore:

1. build one cube cell key per *distinct predicate subset* used in the
   group (``SpaceEncoding.cell_key`` reads the per-dimension literal-code
   matrix computed at ``build_candidates`` time),
2. look every subset key up in the cached cell table exactly once,
   interning the resulting value into a compact per-space
   :class:`ValueTable`,
3. fan the per-subset value ids out to all candidates with one integer
   gather (NumPy fancy indexing, with a pure-Python fallback mirroring
   :mod:`repro.db.columnar`).

Ratio functions become two lookups plus a division per *distinct*
(numerator, denominator) pair: Percentage divides by the all-``ALL``
cell, Conditional Probability by the condition-only cell.

Results live in :class:`SpaceResults`: an ``int32`` value-id per
candidate (-1 = not evaluated) plus the value table — the array currency
that :meth:`EvaluationOutcome.from_value_ids` and the EM loop carry
across iterations instead of ``dict[SimpleAggregateQuery, Value]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

try:  # pragma: no cover - exercised via monkeypatching in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.db.aggregates import ratio_value
from repro.db.values import Value

if TYPE_CHECKING:  # CandidateSpace is duck-typed to keep db free of model
    from repro.db.cache import CacheEntry
    from repro.db.query import AggregateSpec, ColumnRef


#: Candidate "function kinds" shared with the space encoding: how a
#: candidate's value derives from its basis-aggregate cells.
KIND_PLAIN = 0  # the basis cell itself
KIND_PERCENTAGE = 1  # basis count / all-ALL count
KIND_CONDITIONAL = 2  # basis count / condition-only count


def numpy_available() -> bool:
    """True when the vectorized gather kernels can run."""
    return _np is not None


# ----------------------------------------------------------------------
# Small array helpers (NumPy when available, pure Python otherwise)
# ----------------------------------------------------------------------


def full_mask(n: int) -> Any:
    """An all-True candidate mask of length ``n``."""
    if _np is not None:
        return _np.ones(n, dtype=bool)
    return [True] * n


def flatnonzero(mask: Any) -> Any:
    """Indices of the True entries of a boolean mask."""
    if _np is not None:
        return _np.flatnonzero(_np.asarray(mask))
    return [i for i, value in enumerate(mask) if value]


def unique_values(array: Any) -> list[int]:
    """Sorted distinct ints of an integer array."""
    if _np is not None:
        return [int(v) for v in _np.unique(_np.asarray(array))]
    return sorted({int(v) for v in array})


def select_where(values: Any, keys: Any, key: int) -> Any:
    """``values[keys == key]`` for parallel integer arrays."""
    if _np is not None:
        values = _np.asarray(values)
        return values[_np.asarray(keys) == key]
    return [v for v, k in zip(values, keys) if int(k) == key]


def map_ints(values: Any, mapping: dict[int, int], size: int) -> Any:
    """``mapping[v]`` per element, via a dense LUT when vectorized."""
    if _np is not None:
        lut = _np.full(size, -1, dtype=_np.int64)
        for key, value in mapping.items():
            lut[key] = value
        return lut[_np.asarray(values)]
    return [mapping[int(v)] for v in values]


def as_int_list(array: Any) -> list[int]:
    """Plain Python ints of an integer array (for per-element loops)."""
    if _np is not None and not isinstance(array, list):
        return [int(v) for v in _np.asarray(array).tolist()]
    return [int(v) for v in array]


# ----------------------------------------------------------------------
# Value interning and per-space results
# ----------------------------------------------------------------------


class ValueTable:
    """Distinct evaluation results of one space, interned to small ids.

    Keys include the value's type so ``3`` and ``3.0`` stay distinct (the
    per-query oracle preserves the exact cell objects; so does this).
    """

    __slots__ = ("values", "_ids")

    def __init__(self) -> None:
        self.values: list[Value] = []
        self._ids: dict[tuple[type, Value], int] = {}

    def __len__(self) -> int:
        return len(self.values)

    def intern(self, value: Value) -> int:
        key = (value.__class__, value)
        vid = self._ids.get(key)
        if vid is None:
            vid = len(self.values)
            self._ids[key] = vid
            self.values.append(value)
        return vid


class SpaceResults:
    """Evaluation results aligned with one candidate space.

    ``value_ids[i]`` is the id of candidate ``i``'s result in ``table``
    (-1 = not evaluated yet). Instances persist across EM iterations as
    the array-shaped replacement for the oracle path's result dict; the
    engine fills newly scoped candidates in place.
    """

    __slots__ = ("value_ids", "table")

    def __init__(self, n_candidates: int, table: ValueTable | None = None) -> None:
        self.table = table if table is not None else ValueTable()
        if _np is not None:
            self.value_ids = _np.full(n_candidates, -1, dtype=_np.int32)
        else:
            self.value_ids = [-1] * n_candidates

    @classmethod
    def for_space(cls, space) -> "SpaceResults":
        return cls(len(space))

    def __len__(self) -> int:
        return len(self.value_ids)

    def evaluated_mask(self) -> Any:
        """Boolean array: which candidates have a result."""
        if _np is not None and not isinstance(self.value_ids, list):
            return self.value_ids >= 0
        return [vid >= 0 for vid in self.value_ids]

    def any_evaluated(self) -> bool:
        if _np is not None and not isinstance(self.value_ids, list):
            return bool((self.value_ids >= 0).any())
        return any(vid >= 0 for vid in self.value_ids)

    def has_value_at(self, position: int) -> bool:
        return int(self.value_ids[position]) >= 0

    def value_at(self, position: int) -> Value:
        """Result of candidate ``position`` (None when not evaluated)."""
        vid = int(self.value_ids[position])
        return self.table.values[vid] if vid >= 0 else None

    def set_value(self, position: int, value: Value) -> None:
        self.value_ids[position] = self.table.intern(value)


@dataclass
class SpaceEvalRequest:
    """One claim's space plus the candidates to evaluate this round.

    ``mask`` selects candidates (bool per candidate); ``results`` is
    filled in place so carried instances accumulate across EM iterations.
    """

    space: Any  # CandidateSpace (duck-typed; see module docstring)
    mask: Any  # bool array
    results: SpaceResults


# ----------------------------------------------------------------------
# Gather kernels
# ----------------------------------------------------------------------


def answer_candidates(
    results: SpaceResults,
    space,
    positions: Any,
    dims: "tuple[ColumnRef, ...]",
    entries: "dict[AggregateSpec, CacheEntry]",
    budget=None,
) -> None:
    """Answer every candidate at ``positions`` from cached cube cells.

    ``positions`` index into ``space``; all of them share one base
    relation and one covering dimension set, whose cells (one
    :class:`~repro.db.cache.CacheEntry` per basis aggregate) are in
    ``entries``. Writes value ids into ``results`` in place. ``budget``
    (optional :class:`repro.budget.ResourceBudget`) re-checks the
    candidate limit for callers that gather without going through
    ``QueryEngine.evaluate_spaces`` (which already bounds the batch).
    """
    if budget is not None:
        budget.check_candidates(len(positions), "gather")
    if _np is not None:
        _answer_numpy(results, space, positions, dims, entries)
    else:
        _answer_python(results, space, positions, dims, entries)


def _answer_numpy(results, space, positions, dims, entries) -> None:
    enc = space.encoding()
    positions = _np.asarray(positions)
    value_ids = results.value_ids
    table = results.table

    subset_ids = _np.asarray(space.subset_index)[positions]
    used, sub_inv = _np.unique(subset_ids, return_inverse=True)
    keys = [enc.cell_key(int(s), dims) for s in used]

    spec_ids = _np.asarray(enc.basis_spec_id)[positions]
    kinds = _np.asarray(enc.fn_kind)[_np.asarray(space.fn_index)[positions]]
    cond_ids = _np.asarray(enc.cond_pair_id)[positions]

    unique_specs = _np.unique(spec_ids)
    for spec_local in unique_specs:
        spec = enc.basis_specs[int(spec_local)]
        entry = entries[spec]
        cells_get = entry.cells.get
        empty = entry.empty_value()
        if len(unique_specs) == 1:
            sub_sel = sub_inv
            kind_sel = kinds
            pos_sel = positions
            pair_all = cond_ids
        else:
            in_spec = spec_ids == spec_local
            sub_sel = sub_inv[in_spec]
            kind_sel = kinds[in_spec]
            pos_sel = positions[in_spec]
            pair_all = cond_ids[in_spec]

        # One cell lookup per distinct subset this spec touches.
        needed = _np.unique(sub_sel)
        cell_values: list[Value] = [None] * len(used)
        for u in needed.tolist():
            cell_values[u] = cells_get(keys[u], empty)

        plain = kind_sel == KIND_PLAIN
        all_plain = bool(plain.all())
        if all_plain or plain.any():
            # Intern only subsets that plain candidates actually use, so
            # the carried ValueTable never accumulates unused values.
            subset_list = (
                needed if all_plain else _np.unique(sub_sel[plain])
            ).tolist()
            dense = _np.full(len(used), -1, dtype=_np.int32)
            intern = table.intern
            for u in subset_list:
                dense[u] = intern(cell_values[u])
            if all_plain:
                value_ids[pos_sel] = dense[sub_sel]
                continue
            value_ids[pos_sel[plain]] = dense[sub_sel[plain]]

        pct = kind_sel == KIND_PERCENTAGE
        if pct.any():
            denominator = cells_get(tuple(_all_key(dims)), empty)
            subset_list = (
                needed if bool(pct.all()) else _np.unique(sub_sel[pct])
            ).tolist()
            dense = _np.full(len(used), -1, dtype=_np.int32)
            intern = table.intern
            for u in subset_list:
                dense[u] = intern(ratio_value(cell_values[u], denominator))
            value_ids[pos_sel[pct]] = dense[sub_sel[pct]]

        cond = kind_sel == KIND_CONDITIONAL
        if cond.any():
            pair_sel = pair_all[cond]
            denominator_of: dict[int, Value] = {}
            for p in _np.unique(pair_sel).tolist():
                denominator_of[p] = cells_get(enc.cond_key(p, dims), empty)
            # One division per distinct (subset, condition) combination.
            radix = int(pair_sel.max()) + 1
            combos = sub_sel[cond].astype(_np.int64) * radix + pair_sel
            ucombo, combo_inv = _np.unique(combos, return_inverse=True)
            combo_vids = _np.empty(len(ucombo), dtype=_np.int32)
            intern = table.intern
            for index, code in enumerate(ucombo.tolist()):
                u, p = divmod(int(code), radix)
                combo_vids[index] = intern(
                    ratio_value(cell_values[u], denominator_of[p])
                )
            value_ids[pos_sel[cond]] = combo_vids[combo_inv]


def _answer_python(results, space, positions, dims, entries) -> None:
    enc = space.encoding()
    value_ids = results.value_ids
    table = results.table
    subset_index = space.subset_index
    fn_index = space.fn_index
    basis_spec_id = enc.basis_spec_id
    fn_kind = enc.fn_kind
    cond_pair_id = enc.cond_pair_id

    key_of: dict[int, tuple] = {}
    memo: dict[tuple[int, int, int], int] = {}  # (spec, subset, pair) -> vid
    for position in as_int_list(positions):
        si = int(subset_index[position])
        spec_id = int(basis_spec_id[position])
        kind = int(fn_kind[int(fn_index[position])])
        pair = int(cond_pair_id[position]) if kind == KIND_CONDITIONAL else -1
        memo_key = (spec_id, si, pair if kind == KIND_CONDITIONAL else -kind - 1)
        vid = memo.get(memo_key)
        if vid is None:
            entry = entries[enc.basis_specs[spec_id]]
            empty = entry.empty_value()
            key = key_of.get(si)
            if key is None:
                key = key_of[si] = enc.cell_key(si, dims)
            numerator = entry.cells.get(key, empty)
            if kind == KIND_PLAIN:
                value = numerator
            elif kind == KIND_PERCENTAGE:
                denominator = entry.cells.get(tuple(_all_key(dims)), empty)
                value = ratio_value(numerator, denominator)
            else:
                denominator = entry.cells.get(enc.cond_key(pair, dims), empty)
                value = ratio_value(numerator, denominator)
            vid = table.intern(value)
            memo[memo_key] = vid
        value_ids[position] = vid


def _all_key(dims: Sequence) -> list:
    from repro.db.cube import ALL

    return [ALL for _ in dims]
