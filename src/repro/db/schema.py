"""Schema objects: columns, tables, foreign keys, databases.

The paper assumes a relational database whose tables are connected by
primary-key/foreign-key constraints forming an *acyclic* schema graph
(Section 6.3). :class:`Database` validates that property on construction.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.db.values import Value, coerce_number, is_missing, is_numeric
from repro.errors import (
    CyclicSchemaError,
    SchemaError,
    UnknownColumnError,
    UnknownTableError,
)


class ColumnType(enum.Enum):
    """Coarse column types; only numeric columns qualify as aggregation
    columns (paper Section 4.2)."""

    STRING = "string"
    NUMERIC = "numeric"


@dataclass(frozen=True)
class Column:
    """A named, typed column, optionally described by a data dictionary."""

    name: str
    type: ColumnType = ColumnType.STRING
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


class Table:
    """A named table holding rows as tuples in column order."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        rows: Iterable[Sequence[Value]] = (),
        primary_key: str | None = None,
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._index = {column.name: i for i, column in enumerate(columns)}
        self.rows: list[tuple[Value, ...]] = []
        for row in rows:
            self.append(row)
        if primary_key is not None and primary_key not in self._index:
            raise UnknownColumnError(name, primary_key)
        self.primary_key = primary_key

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.columns)} cols, {len(self)} rows)"

    def append(self, row: Sequence[Value]) -> None:
        """Append one row, padding/validating against the column count."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row width {len(row)} != {len(self.columns)} "
                f"for table {self.name!r}"
            )
        self.rows.append(tuple(row))

    def has_column(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def column_values(self, name: str) -> Iterator[Value]:
        """Yield the cells of one column across all rows."""
        index = self.column_index(name)
        for row in self.rows:
            yield row[index]

    def numeric_columns(self) -> list[Column]:
        return [c for c in self.columns if c.type is ColumnType.NUMERIC]

    def with_columns(self, columns: Sequence[Column]) -> "Table":
        """Clone this table with replaced column metadata, sharing row
        storage. Storage-backed subclasses override this so metadata
        updates (data dictionaries) never force row materialization."""
        if len(columns) != len(self.columns):
            raise SchemaError(
                f"with_columns: expected {len(self.columns)} columns, "
                f"got {len(columns)}"
            )
        clone = Table(self.name, columns, primary_key=self.primary_key)
        clone.rows = self.rows
        return clone

    def distinct_values(self, name: str, limit: int | None = None) -> list[Value]:
        """Distinct non-missing values of a column in first-seen order."""
        seen: dict[str, Value] = {}
        index = self.column_index(name)
        for row in self.rows:
            cell = row[index]
            if is_missing(cell):
                continue
            key = str(cell).strip().lower()
            if key not in seen:
                seen[key] = cell
                if limit is not None and len(seen) >= limit:
                    break
        return list(seen.values())


@dataclass(frozen=True)
class ForeignKey:
    """``source.column`` references ``target.column`` (a primary key)."""

    source_table: str
    source_column: str
    target_table: str
    target_column: str

    def __str__(self) -> str:
        return (
            f"{self.source_table}.{self.source_column} -> "
            f"{self.target_table}.{self.target_column}"
        )


class Database:
    """A set of tables plus foreign keys forming an acyclic schema graph."""

    def __init__(
        self,
        name: str,
        tables: Sequence[Table],
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> None:
        if not name:
            raise SchemaError("database name must be non-empty")
        if not tables:
            raise SchemaError(f"database {name!r} must have at least one table")
        table_names = [table.name for table in tables]
        if len(set(table_names)) != len(table_names):
            raise SchemaError(f"database {name!r} has duplicate table names")
        self.name = name
        self.tables: tuple[Table, ...] = tuple(tables)
        self._tables = {table.name: table for table in tables}
        for fk in foreign_keys:
            self._validate_foreign_key(fk)
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        self._check_acyclic()

    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        source = self.table(fk.source_table)
        target = self.table(fk.target_table)
        source.column(fk.source_column)
        target.column(fk.target_column)

    def _check_acyclic(self) -> None:
        """Reject cyclic schema graphs (undirected cycles break join-path
        uniqueness, which Section 6.3 relies on)."""
        adjacency: dict[str, set[str]] = {t.name: set() for t in self.tables}
        for fk in self.foreign_keys:
            if fk.source_table == fk.target_table:
                raise CyclicSchemaError(f"self-referencing foreign key: {fk}")
            if fk.target_table in adjacency[fk.source_table]:
                raise CyclicSchemaError(
                    f"parallel foreign keys between {fk.source_table!r} "
                    f"and {fk.target_table!r}"
                )
            adjacency[fk.source_table].add(fk.target_table)
            adjacency[fk.target_table].add(fk.source_table)
        seen: set[str] = set()
        for start in adjacency:
            if start in seen:
                continue
            stack = [(start, "")]
            while stack:
                node, parent = stack.pop()
                if node in seen:
                    raise CyclicSchemaError(
                        f"schema graph of database {self.name!r} is cyclic"
                    )
                seen.add(node)
                stack.extend(
                    (neighbor, node)
                    for neighbor in adjacency[node]
                    if neighbor != parent
                )

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={[t.name for t in self.tables]})"

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def single_table(self) -> Table:
        """Convenience for the common one-table case."""
        if len(self.tables) != 1:
            raise SchemaError(
                f"database {self.name!r} has {len(self.tables)} tables; "
                "single_table() requires exactly one"
            )
        return self.tables[0]

    def total_rows(self) -> int:
        return sum(len(table) for table in self.tables)


def infer_column_type(values: Iterable[Value], threshold: float = 0.9) -> ColumnType:
    """Infer NUMERIC when at least ``threshold`` of non-missing cells parse
    as numbers (scraped CSVs often contain a few stray strings)."""
    total = 0
    numeric = 0
    for value in values:
        if is_missing(value):
            continue
        total += 1
        if is_numeric(value) or coerce_number(value) is not None:
            numeric += 1
    if total == 0:
        return ColumnType.STRING
    return ColumnType.NUMERIC if numeric / total >= threshold else ColumnType.STRING
