"""Aggregation functions supported by Simple Aggregate Queries.

The paper supports Count, Count Distinct, Sum, Average, Min, Max,
Percentage, and Conditional Probability (Section 2). The two ratio
functions are defined in terms of counts over different predicate subsets
(footnote 1), which is what lets the cube operator serve them from basis
counts.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from repro.db.values import Value, coerce_number, is_missing, normalize_string


class AggregateFunction(enum.Enum):
    """SQL aggregation functions recognized in claims."""

    COUNT = "count"
    COUNT_DISTINCT = "count_distinct"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"
    PERCENTAGE = "percentage"
    CONDITIONAL_PROBABILITY = "conditional_probability"

    @property
    def is_ratio(self) -> bool:
        """Ratio functions divide counts of two predicate subsets."""
        return self in (
            AggregateFunction.PERCENTAGE,
            AggregateFunction.CONDITIONAL_PROBABILITY,
        )

    @property
    def needs_numeric_column(self) -> bool:
        """Sum/Avg/Min/Max require a numeric aggregation column."""
        return self in (
            AggregateFunction.SUM,
            AggregateFunction.AVG,
            AggregateFunction.MIN,
            AggregateFunction.MAX,
        )

    @property
    def sql_name(self) -> str:
        return {
            AggregateFunction.COUNT: "Count",
            AggregateFunction.COUNT_DISTINCT: "CountDistinct",
            AggregateFunction.SUM: "Sum",
            AggregateFunction.AVG: "Avg",
            AggregateFunction.MIN: "Min",
            AggregateFunction.MAX: "Max",
            AggregateFunction.PERCENTAGE: "Percentage",
            AggregateFunction.CONDITIONAL_PROBABILITY: "ConditionalProbability",
        }[self]


#: Parse map from SQL spellings (lowercased) to functions.
SQL_NAMES: dict[str, AggregateFunction] = {
    "count": AggregateFunction.COUNT,
    "countdistinct": AggregateFunction.COUNT_DISTINCT,
    "count_distinct": AggregateFunction.COUNT_DISTINCT,
    "sum": AggregateFunction.SUM,
    "avg": AggregateFunction.AVG,
    "average": AggregateFunction.AVG,
    "min": AggregateFunction.MIN,
    "max": AggregateFunction.MAX,
    "percentage": AggregateFunction.PERCENTAGE,
    "percent": AggregateFunction.PERCENTAGE,
    "conditionalprobability": AggregateFunction.CONDITIONAL_PROBABILITY,
    "conditional_probability": AggregateFunction.CONDITIONAL_PROBABILITY,
}


def compute_plain(fn: AggregateFunction, cells: Iterable[Value]) -> Value:
    """Evaluate a non-ratio aggregate over the cells of one column.

    Follows SQL semantics: NULLs are skipped; Sum/Min/Max/Avg of an empty
    input are NULL; Count of an empty input is 0. Non-numeric strings in a
    numeric aggregate are skipped (scraped data hygiene).
    """
    if fn is AggregateFunction.COUNT:
        return sum(1 for cell in cells if not is_missing(cell))
    if fn is AggregateFunction.COUNT_DISTINCT:
        distinct = {
            normalize_string(cell) for cell in cells if not is_missing(cell)
        }
        return len(distinct)
    numbers = []
    for cell in cells:
        if is_missing(cell):
            continue
        number = coerce_number(cell)
        if number is not None:
            numbers.append(number)
    if not numbers:
        return None
    if fn is AggregateFunction.SUM:
        return sum(numbers)
    if fn is AggregateFunction.AVG:
        return sum(numbers) / len(numbers)
    if fn is AggregateFunction.MIN:
        return min(numbers)
    if fn is AggregateFunction.MAX:
        return max(numbers)
    raise ValueError(f"compute_plain does not handle ratio function {fn}")


def ratio_value(numerator: Value, denominator: Value) -> Value:
    """Percentage-style ratio of two counts; NULL when undefined."""
    if not isinstance(numerator, (int, float)):
        return None
    if not isinstance(denominator, (int, float)) or denominator == 0:
        return None
    return 100.0 * numerator / denominator
