"""Batch query engine with merging and caching (paper Section 6).

Three execution modes reproduce the ladder of Table 6:

- ``NAIVE``: every candidate query is executed separately.
- ``MERGED``: candidates sharing a base relation are answered from shared
  cube queries (``InOrDefault`` + ``GROUP BY CUBE``), but nothing persists
  across :meth:`QueryEngine.evaluate` calls.
- ``MERGED_CACHED``: cube cells additionally persist in a
  :class:`~repro.db.cache.ResultCache` across claims and EM iterations.
"""

from __future__ import annotations

import enum
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING

from repro.db.aggregates import AggregateFunction, ratio_value
from repro.db.cache import ResultCache
from repro.db.columnar import ExecutionBackend
from repro.db.cube import ALL, CubeQuery, CubeResult, execute_cube
from repro.db.executor import execute_query
from repro.db.joins import JoinGraph
from repro.db.query import AggregateSpec, ColumnRef, SimpleAggregateQuery, STAR
from repro.db.schema import Database
from repro.db.values import Value

if TYPE_CHECKING:  # runtime import would be circular via repro.db.cache users
    from repro.db.diskcache import DiskCubeCache


class ExecutionMode(enum.Enum):
    """How batches of candidate queries are evaluated."""

    NAIVE = "naive"
    MERGED = "merged"
    MERGED_CACHED = "merged_cached"


class CubeCoverStrategy(enum.Enum):
    """How cube dimension sets are chosen to cover candidate predicates.

    ``EXACT`` builds one cube per maximal predicate-column set observed in
    the batch (smaller sets reuse a covering superset). ``PAPER`` follows
    Section 6.3 literally: dimension subsets of size ``nG(x) = max(m, x-1)``
    over the batch's predicate-column scope, which creates deliberate
    overlap between cubes to widen cache reuse. PAPER falls back to EXACT
    when ``nG`` would exceed the cube dimension limit (wide scopes make
    2^nG rollups intractable — the paper's scope threshold prevents the
    same blow-up).
    """

    EXACT = "exact"
    PAPER = "paper"


@dataclass
class EngineStats:
    """Counters for the processing experiments (Table 6).

    All fields must be additive counters: :meth:`merge`, :meth:`diff`, and
    :meth:`reset` operate field-wise over ``dataclasses.fields``, so a new
    counter added here is automatically aggregated everywhere stats are
    pooled (corpus totals, parallel-shard merging, per-document deltas).
    """

    queries_requested: int = 0
    physical_queries: int = 0
    cube_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    rows_scanned: int = 0
    query_seconds: float = 0.0

    def reset(self) -> None:
        for spec in fields(self):
            setattr(self, spec.name, spec.default)

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Accumulate another stats object into this one, field-wise."""
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return self

    def __iadd__(self, other: "EngineStats") -> "EngineStats":
        return self.merge(other)

    def copy(self) -> "EngineStats":
        return replace(self)

    def diff(self, baseline: "EngineStats") -> "EngineStats":
        """Field-wise ``self - baseline`` (e.g. per-document deltas of a
        long-lived engine's cumulative counters)."""
        return EngineStats(
            **{
                spec.name: getattr(self, spec.name) - getattr(baseline, spec.name)
                for spec in fields(self)
            }
        )

    def cache_hit_rate(self) -> float:
        """In-memory cube-cache hit rate (0.0 when nothing was looked up)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def disk_hit_rate(self) -> float:
        """Disk-tier cube-cache hit rate (0.0 when nothing was looked up)."""
        total = self.disk_hits + self.disk_misses
        return self.disk_hits / total if total else 0.0


def _basis_spec(query: SimpleAggregateQuery) -> AggregateSpec:
    """The cube-computable aggregate backing a candidate query.

    Ratio functions are derived from counts of the same column (footnote 1
    of the paper), everything else is computed directly.
    """
    spec = query.aggregate
    if spec.function.is_ratio:
        return AggregateSpec(AggregateFunction.COUNT, spec.column)
    return spec


class QueryEngine:
    """Evaluates batches of Simple Aggregate Queries against one database."""

    def __init__(
        self,
        database: Database,
        mode: ExecutionMode = ExecutionMode.MERGED_CACHED,
        cover_strategy: CubeCoverStrategy = CubeCoverStrategy.EXACT,
        paper_max_predicates: int = 3,
        backend: ExecutionBackend = ExecutionBackend.COLUMNAR,
        disk_cache: "DiskCubeCache | None" = None,
    ) -> None:
        self.database = database
        self.mode = mode
        self.cover_strategy = cover_strategy
        self.paper_max_predicates = paper_max_predicates
        self.backend = backend
        self.join_graph = JoinGraph(database, backend=backend)
        self.cache = ResultCache()
        self.disk_cache = disk_cache
        self._db_fingerprint: str | None = None
        self.stats = EngineStats()

    @property
    def database_fingerprint(self) -> str:
        """Content fingerprint of the engine's database (computed once).

        Keys the disk-cache tier: any change to the underlying data (e.g.
        an edited source CSV reloaded into a new database) yields a new
        fingerprint and therefore cold disk-cache keys — stale cube cells
        are never served.
        """
        if self._db_fingerprint is None:
            from repro.db.diskcache import database_fingerprint

            self._db_fingerprint = database_fingerprint(self.database)
        return self._db_fingerprint

    def evaluate_one(self, query: SimpleAggregateQuery) -> Value:
        """Evaluate a single query (always the naive path)."""
        self.stats.queries_requested += 1
        return self._execute_naive(query)

    def evaluate(
        self, queries: Iterable[SimpleAggregateQuery]
    ) -> dict[SimpleAggregateQuery, Value]:
        """Evaluate a batch, sharing work according to the engine mode."""
        batch = list(dict.fromkeys(queries))
        self.stats.queries_requested += len(batch)
        if self.mode is ExecutionMode.NAIVE:
            return {query: self._execute_naive(query) for query in batch}
        cache = self.cache if self.mode is ExecutionMode.MERGED_CACHED else ResultCache()
        return self._evaluate_merged(batch, cache)

    # ------------------------------------------------------------------
    # Naive path
    # ------------------------------------------------------------------

    def _execute_naive(self, query: SimpleAggregateQuery) -> Value:
        start = time.perf_counter()
        result = execute_query(self.database, query, self.join_graph)
        self.stats.query_seconds += time.perf_counter() - start
        self.stats.physical_queries += 1
        tables = self._query_tables(query)
        self.stats.rows_scanned += len(self.join_graph.relation(tables))
        return result

    # ------------------------------------------------------------------
    # Merged path
    # ------------------------------------------------------------------

    def _evaluate_merged(
        self,
        batch: Sequence[SimpleAggregateQuery],
        cache: ResultCache,
    ) -> dict[SimpleAggregateQuery, Value]:
        # Literals of interest per column: union across the whole batch
        # (the paper generates cells for all literals with non-zero marginal
        # probability for *any* claim, Section 6.3).
        literal_union: dict[ColumnRef, set[str]] = {}
        for query in batch:
            for predicate in query.all_predicates:
                literal_union.setdefault(predicate.column, set()).add(
                    predicate.normalized_value
                )

        # Group queries by base relation, then choose covering dim sets.
        by_tables: dict[frozenset[str], list[SimpleAggregateQuery]] = {}
        for query in batch:
            by_tables.setdefault(self._query_tables(query), []).append(query)

        results: dict[SimpleAggregateQuery, Value] = {}
        for tables, group in by_tables.items():
            self._evaluate_group(tables, group, literal_union, cache, results)
        return results

    def _evaluate_group(
        self,
        tables: frozenset[str],
        group: Sequence[SimpleAggregateQuery],
        literal_union: dict[ColumnRef, set[str]],
        cache: ResultCache,
        results: dict[SimpleAggregateQuery, Value],
    ) -> None:
        assignment_of = self._cover_dim_sets(group)

        queries_by_dims: dict[frozenset[ColumnRef], list[SimpleAggregateQuery]] = {}
        for query in group:
            dims = assignment_of[frozenset(query.predicate_columns)]
            queries_by_dims.setdefault(dims, []).append(query)

        for dims, queries in queries_by_dims.items():
            ordered_dims = tuple(sorted(dims))
            literal_map = {
                dim: frozenset(literal_union.get(dim, set()))
                for dim in ordered_dims
            }
            specs = {_basis_spec(query) for query in queries}
            cells_by_spec = self._cells_for(
                tables, ordered_dims, literal_map, specs, cache
            )
            for query in queries:
                results[query] = self._answer(query, ordered_dims, cells_by_spec)

    def _cover_dim_sets(
        self, group: Sequence[SimpleAggregateQuery]
    ) -> dict[frozenset[ColumnRef], frozenset[ColumnRef]]:
        """Map each query's predicate-column set to a covering dim set."""
        column_sets = sorted(
            {frozenset(q.predicate_columns) for q in group},
            key=lambda s: (-len(s), sorted(str(c) for c in s)),
        )
        if self.cover_strategy is CubeCoverStrategy.PAPER:
            paper = self._paper_cover(column_sets)
            if paper is not None:
                return paper
        # EXACT: largest-first; smaller sets reuse a chosen superset.
        chosen: list[frozenset[ColumnRef]] = []
        assignment: dict[frozenset[ColumnRef], frozenset[ColumnRef]] = {}
        for column_set in column_sets:
            cover = next((c for c in chosen if column_set <= c), None)
            if cover is None:
                chosen.append(column_set)
                cover = column_set
            assignment[column_set] = cover
        return assignment

    def _paper_cover(
        self, column_sets: list[frozenset[ColumnRef]]
    ) -> dict[frozenset[ColumnRef], frozenset[ColumnRef]] | None:
        """Section 6.3 cover: subsets of the scope of size nG(x)=max(m,x-1).

        Returns None (caller falls back to EXACT) when nG exceeds the cube
        dimension limit or the subset family would be too large.
        """
        from itertools import combinations

        from repro.db.cube import MAX_CUBE_DIMENSIONS

        scope = sorted({column for s in column_sets for column in s})
        if not scope:
            return {frozenset(): frozenset()}
        m = min(
            max(len(s) for s in column_sets) or 1, self.paper_max_predicates
        )
        n_dims = max(m, len(scope) - 1)
        if n_dims > MAX_CUBE_DIMENSIONS or n_dims >= len(scope):
            if len(scope) <= MAX_CUBE_DIMENSIONS:
                full = frozenset(scope)
                return {s: full for s in column_sets}
            return None
        dim_sets = [frozenset(c) for c in combinations(scope, n_dims)]
        if len(dim_sets) > 64:
            return None
        assignment: dict[frozenset[ColumnRef], frozenset[ColumnRef]] = {}
        for column_set in column_sets:
            cover = next((d for d in dim_sets if column_set <= d), None)
            if cover is None:
                return None  # a query exceeds nG predicates: fall back
            assignment[column_set] = cover
        return assignment

    def _cells_for(
        self,
        tables: frozenset[str],
        dims: tuple[ColumnRef, ...],
        literal_map: dict[ColumnRef, frozenset[str]],
        specs: set[AggregateSpec],
        cache: ResultCache,
    ) -> dict[AggregateSpec, dict]:
        cells_by_spec: dict[AggregateSpec, dict] = {}
        missing: list[AggregateSpec] = []
        # Accumulate hit/miss *deltas*: in MERGED mode a fresh ResultCache is
        # created per evaluate() call, so copying the cache's own counters
        # would clobber the cumulative engine stats every batch.
        hits_before = cache.stats.hits
        misses_before = cache.stats.misses
        for spec in sorted(specs, key=str):
            entry = cache.get(tables, spec, dims, literal_map)
            if entry is None and self.disk_cache is not None:
                entry = self._load_from_disk(
                    cache, tables, spec, dims, literal_map
                )
            if entry is not None:
                cells_by_spec[spec] = entry.cells
            else:
                missing.append(spec)
        self.stats.cache_hits += cache.stats.hits - hits_before
        self.stats.cache_misses += cache.stats.misses - misses_before
        if missing:
            cube = CubeQuery(
                tables=tables,
                dimensions=dims,
                literals=tuple((dim, literal_map[dim]) for dim in dims),
                aggregates=tuple(missing),
            )
            start = time.perf_counter()
            result = execute_cube(self.database, cube, self.join_graph)
            self.stats.query_seconds += time.perf_counter() - start
            self.stats.cube_queries += 1
            self.stats.physical_queries += 1
            self.stats.rows_scanned += result.rows_scanned
            for spec in missing:
                cells = result.cells_for(spec)
                entry = cache.put(tables, spec, dims, literal_map, cells)
                cells_by_spec[spec] = entry.cells
                if self.disk_cache is not None:
                    self.disk_cache.store(
                        self.database_fingerprint,
                        self.backend.value,
                        tables,
                        spec,
                        dims,
                        entry.literals,
                        entry.cells,
                    )
        return cells_by_spec

    def _load_from_disk(
        self,
        cache: ResultCache,
        tables: frozenset[str],
        spec: AggregateSpec,
        dims: tuple[ColumnRef, ...],
        literal_map: dict[ColumnRef, frozenset[str]],
    ):
        """Second-tier lookup: seed the in-memory cache from disk."""
        loaded = self.disk_cache.load(
            self.database_fingerprint,
            self.backend.value,
            tables,
            spec,
            dims,
            literal_map,
        )
        if loaded is None:
            self.stats.disk_misses += 1
            return None
        self.stats.disk_hits += 1
        literals, cells = loaded
        return cache.put(
            tables,
            spec,
            dims,
            {dim: frozenset(values) for dim, values in literals.items()},
            cells,
        )

    def _answer(
        self,
        query: SimpleAggregateQuery,
        dims: tuple[ColumnRef, ...],
        cells_by_spec: dict[AggregateSpec, dict],
    ) -> Value:
        spec = _basis_spec(query)
        cells = cells_by_spec[spec]
        assignment = {
            predicate.column: predicate.normalized_value
            for predicate in query.all_predicates
        }
        numerator = self._cell_value(cells, dims, assignment, spec)
        fn = query.aggregate.function
        if not fn.is_ratio:
            return numerator
        if fn is AggregateFunction.PERCENTAGE:
            denominator = self._cell_value(cells, dims, {}, spec)
        else:  # CONDITIONAL_PROBABILITY
            assert query.condition is not None
            condition_only = {
                query.condition.column: query.condition.normalized_value
            }
            denominator = self._cell_value(cells, dims, condition_only, spec)
        return ratio_value(numerator, denominator)

    def _cell_value(
        self,
        cells: dict,
        dims: tuple[ColumnRef, ...],
        assignment: dict[ColumnRef, str],
        spec: AggregateSpec,
    ) -> Value:
        key = tuple(assignment.get(dim, ALL) for dim in dims)
        if key in cells:
            return cells[key]
        # Empty group: counts are 0, other aggregates NULL.
        if spec.function in (
            AggregateFunction.COUNT,
            AggregateFunction.COUNT_DISTINCT,
        ):
            return 0
        return None

    def _query_tables(self, query: SimpleAggregateQuery) -> frozenset[str]:
        tables = query.referenced_tables()
        if not tables:
            tables = frozenset({self.database.single_table().name})
        return tables
