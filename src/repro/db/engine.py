"""Batch query engine with merging and caching (paper Section 6).

Three execution modes reproduce the ladder of Table 6:

- ``NAIVE``: every candidate query is executed separately.
- ``MERGED``: candidates sharing a base relation are answered from shared
  cube queries (``InOrDefault`` + ``GROUP BY CUBE``), but nothing persists
  across :meth:`QueryEngine.evaluate` calls.
- ``MERGED_CACHED``: cube cells additionally persist in a
  :class:`~repro.db.cache.ResultCache` across claims and EM iterations.
"""

from __future__ import annotations

import enum
import os
import time
import warnings
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING

from repro import faults
from repro.budget import estimate_cube_cells
from repro.db.adapters.base import (
    StorageAdapter,
    canonical_backend_name,
    create_adapter,
)
from repro.db.aggregates import AggregateFunction, ratio_value
from repro.db.cache import CacheEntry, ResultCache
from repro.db.columnar import ExecutionBackend
from repro.db.cube import ALL, CubeQuery
from repro.db.gather import (
    SpaceEvalRequest,
    SpaceResults,
    answer_candidates,
    as_int_list,
    flatnonzero,
    full_mask,
    map_ints,
    select_where,
    unique_values,
)
from repro.db.query import AggregateSpec, ColumnRef, SimpleAggregateQuery, STAR
from repro.db.schema import Database
from repro.db.values import Value
from repro.errors import BudgetExceeded, InjectedFault

if TYPE_CHECKING:  # runtime import would be circular via repro.db.cache users
    from repro.budget import ResourceBudget
    from repro.db.diskcache import DiskCubeCache
    from repro.deadline import Deadline


class ExecutionMode(enum.Enum):
    """How batches of candidate queries are evaluated."""

    NAIVE = "naive"
    MERGED = "merged"
    MERGED_CACHED = "merged_cached"


class CubeCoverStrategy(enum.Enum):
    """How cube dimension sets are chosen to cover candidate predicates.

    ``EXACT`` builds one cube per maximal predicate-column set observed in
    the batch (smaller sets reuse a covering superset). ``PAPER`` follows
    Section 6.3 literally: dimension subsets of size ``nG(x) = max(m, x-1)``
    over the batch's predicate-column scope, which creates deliberate
    overlap between cubes to widen cache reuse. PAPER falls back to EXACT
    when ``nG`` would exceed the cube dimension limit (wide scopes make
    2^nG rollups intractable — the paper's scope threshold prevents the
    same blow-up).
    """

    EXACT = "exact"
    PAPER = "paper"


@dataclass(frozen=True)
class EngineConfig:
    """Everything needed to construct a :class:`QueryEngine`.

    One frozen value threads from :class:`~repro.core.config.AggCheckerConfig`
    through the CLI and service layer down to engine construction, replacing
    the old kwarg sprawl (``mode=..., backend=..., disk_cache=...``). Derive
    variants with :func:`dataclasses.replace`.
    """

    #: Batch evaluation strategy (Table 6 ladder).
    mode: ExecutionMode = ExecutionMode.MERGED_CACHED
    #: How covering cube dimension sets are chosen.
    cover_strategy: CubeCoverStrategy = CubeCoverStrategy.EXACT
    #: ``m`` in the paper's nG(x) = max(m, x-1) cover rule.
    paper_max_predicates: int = 3
    #: Storage-adapter name (``columnar``, ``row``, ``sqlite``,
    #: ``duckdb``, or any :func:`~repro.db.adapters.register_adapter`-ed
    #: extra). Accepts a legacy ``ExecutionBackend`` enum member and
    #: normalizes it to its registry name.
    backend: str = "columnar"
    #: Directory for the persistent cube-cell disk cache (None disables
    #: the disk tier). The engine constructs its own
    #: :class:`~repro.db.diskcache.DiskCubeCache` over this directory;
    #: sharing the directory between engines/processes is safe (entries
    #: are content-fingerprint keyed).
    cache_dir: "str | os.PathLike | None" = None
    #: Skip the disk tier for databases smaller than this many total rows
    #: (None = always use it when ``cache_dir`` is set).
    disk_cache_min_rows: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "backend", canonical_backend_name(self.backend)
        )
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", os.fspath(self.cache_dir))


#: Sentinel distinguishing "not passed" from an explicit None in the
#: deprecated QueryEngine keyword shims.
_UNSET = object()


@dataclass
class EngineStats:
    """Counters for the processing experiments (Table 6).

    All fields must be additive counters: :meth:`merge`, :meth:`diff`, and
    :meth:`reset` operate field-wise over ``dataclasses.fields``, so a new
    counter added here is automatically aggregated everywhere stats are
    pooled (corpus totals, parallel-shard merging, per-document deltas).
    """

    #: Logical evaluation requests. The per-query path counts distinct
    #: queries after cross-claim dedup; the factorized space path counts
    #: per candidate per claim (a query shared by two claims counts
    #: twice) — materializing queries just to dedup a counter would
    #: defeat the zero-materialization path.
    queries_requested: int = 0
    physical_queries: int = 0
    cube_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    rows_scanned: int = 0
    query_seconds: float = 0.0
    #: Candidates answered by the factorized cell-gather path (no
    #: per-candidate query objects were materialized for these).
    gathered_candidates: int = 0
    #: Corrupt disk-cache entries quarantined (recomputed on the spot).
    disk_corrupt: int = 0
    #: Times the disk tier was skipped because the database fell under
    #: ``disk_cache_min_rows`` (recomputing tiny cubes beats the disk
    #: round-trip; the decision is counted, not silent).
    disk_skipped_small: int = 0
    #: Documents whose inference fell back to a shrunken evaluation scope
    #: after the claim deadline expired (degradation-ladder rung 2).
    deadline_degraded: int = 0
    #: Documents whose inference skipped query execution entirely after
    #: even the shrunken scope missed its deadline (rung 3).
    deadline_exec_skipped: int = 0
    #: Claims reported as unverifiable because the deadline expired
    #: before inference could run at all (rung 4).
    deadline_unverifiable: int = 0
    #: Space-budget refusals in the engine: estimated cube cells, join
    #: rows, or candidate counts crossed a limit and the execution was
    #: refused *before* materializing (see :mod:`repro.budget`).
    budget_rejections: int = 0
    #: Documents whose inference fell back to a shrunken evaluation scope
    #: after a space budget was exceeded (same ladder rung 2 as deadline).
    budget_degraded: int = 0
    #: Documents whose inference skipped query execution entirely after
    #: even the shrunken scope exceeded a space budget (rung 3).
    budget_exec_skipped: int = 0
    #: Claims reported as unverifiable because a space budget was
    #: exceeded before inference could run at all (rung 4).
    budget_unverifiable: int = 0
    #: Acked verdicts re-verified by the shadow auditor against the
    #: NAIVE/row-wise oracle with every cache tier bypassed.
    audit_checks: int = 0
    #: Audited verdicts whose served payload diverged from the oracle's.
    audit_divergences: int = 0
    #: Poisoned incremental-memo entries replaced with the oracle verdict
    #: after a divergence (the self-healing half of the audit loop).
    audit_repairs: int = 0
    #: Disk cube-cache cells recomputed and compared bit-exact by the
    #: online scrubber or ``repro scrub``.
    audit_cell_scrubs: int = 0
    #: Scrubbed cells that failed the bit-identity comparison and were
    #: quarantined (``*.corrupt``).
    audit_cell_mismatches: int = 0
    #: Statements the storage adapter pushed down into an external SQL
    #: engine (SQLite/DuckDB). 0 for in-memory adapters.
    pushdown_queries: int = 0
    #: Rows of joined relations materialized as Python objects by the
    #: storage adapter. Pushdown adapters keep this at 0 — the counter
    #: out-of-core verification must hold flat.
    rows_materialized: int = 0

    def reset(self) -> None:
        for spec in fields(self):
            setattr(self, spec.name, spec.default)

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Accumulate another stats object into this one, field-wise."""
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return self

    def __iadd__(self, other: "EngineStats") -> "EngineStats":
        return self.merge(other)

    def copy(self) -> "EngineStats":
        return replace(self)

    def diff(self, baseline: "EngineStats") -> "EngineStats":
        """Field-wise ``self - baseline`` (e.g. per-document deltas of a
        long-lived engine's cumulative counters)."""
        return EngineStats(
            **{
                spec.name: getattr(self, spec.name) - getattr(baseline, spec.name)
                for spec in fields(self)
            }
        )

    def cache_hit_rate(self) -> float:
        """In-memory cube-cache hit rate (0.0 when nothing was looked up)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def disk_hit_rate(self) -> float:
        """Disk-tier cube-cache hit rate (0.0 when nothing was looked up)."""
        total = self.disk_hits + self.disk_misses
        return self.disk_hits / total if total else 0.0


def _basis_spec(query: SimpleAggregateQuery) -> AggregateSpec:
    """The cube-computable aggregate backing a candidate query.

    Ratio functions are derived from counts of the same column (footnote 1
    of the paper), everything else is computed directly.
    """
    spec = query.aggregate
    if spec.function.is_ratio:
        return AggregateSpec(AggregateFunction.COUNT, spec.column)
    return spec


class QueryEngine:
    """Evaluates batches of Simple Aggregate Queries against one database.

    Construction takes an :class:`EngineConfig` (``QueryEngine(db)`` or
    ``QueryEngine(db, EngineConfig(backend="sqlite"))``). The pre-adapter
    keyword signature (``mode=``, ``backend=``, ``disk_cache=``, ...) still
    works but emits :class:`DeprecationWarning`; a bare ``ExecutionMode``
    second positional argument is likewise shimmed.
    """

    def __init__(
        self,
        database: Database,
        config: "EngineConfig | ExecutionMode | None" = None,
        *,
        mode=_UNSET,
        cover_strategy=_UNSET,
        paper_max_predicates=_UNSET,
        backend=_UNSET,
        disk_cache=_UNSET,
        disk_cache_min_rows=_UNSET,
    ) -> None:
        positional_mode = _UNSET
        if isinstance(config, ExecutionMode):
            if mode is not _UNSET:
                raise TypeError("mode given both positionally and by keyword")
            # Documented sugar, not a deprecated kwarg: QueryEngine(db,
            # ExecutionMode.NAIVE) reads naturally and does not warn.
            positional_mode = config
            config = None
        overrides = {
            name: value
            for name, value in (
                ("mode", mode),
                ("cover_strategy", cover_strategy),
                ("paper_max_predicates", paper_max_predicates),
                ("backend", backend),
                ("disk_cache_min_rows", disk_cache_min_rows),
            )
            if value is not _UNSET
        }
        if overrides or disk_cache is not _UNSET:
            warnings.warn(
                "passing QueryEngine settings as keyword arguments is "
                "deprecated; construct an EngineConfig and pass it as the "
                "second argument (disk_cache= is replaced by "
                "EngineConfig.cache_dir)",
                DeprecationWarning,
                stacklevel=2,
            )
        if positional_mode is not _UNSET:
            overrides.setdefault("mode", positional_mode)
        base = config if config is not None else EngineConfig()
        self.config = replace(base, **overrides) if overrides else base

        self.database = database
        self.mode = self.config.mode
        self.cover_strategy = self.config.cover_strategy
        self.paper_max_predicates = self.config.paper_max_predicates
        self.adapter: StorageAdapter = create_adapter(
            self.config.backend, database
        )
        #: Canonical storage-backend name; keys the disk cube-cache tier.
        self.backend = self.adapter.name
        self.join_graph = self.adapter.join_graph

        if disk_cache is _UNSET or disk_cache is None:
            disk_cache = None
            if self.config.cache_dir is not None:
                from repro.db.diskcache import DiskCubeCache

                disk_cache = DiskCubeCache(self.config.cache_dir)
        # Tiny databases recompute a cube faster than a disk round-trip
        # (the 0.62x warm-cache regression in BENCH_pipeline.json): below
        # the row threshold the disk tier is skipped outright, counted so
        # operators can see the decision.
        skipped_small = (
            disk_cache is not None
            and self.config.disk_cache_min_rows is not None
            and database.total_rows() < self.config.disk_cache_min_rows
        )
        if skipped_small:
            disk_cache.stats.skipped_small += 1
            disk_cache = None
        self.cache = ResultCache()
        self.disk_cache = disk_cache
        self._db_fingerprint: str | None = None
        self.stats = EngineStats()
        if skipped_small:
            self.stats.disk_skipped_small += 1
        # Adapter-counter values already mirrored into EngineStats (the
        # delta-sync pattern of ``_disk_corrupt_seen``).
        self._adapter_pushdown_seen = 0
        self._adapter_materialized_seen = 0
        #: Cooperative execution budget (see :mod:`repro.deadline`): when
        #: set, checked immediately before every physical cube or query
        #: execution — the expensive, unbounded work. The checker installs
        #: it around inference and clears it in a ``finally``.
        self.deadline: "Deadline | None" = None
        #: Cooperative space budget (see :mod:`repro.budget`): when set,
        #: the engine refuses to materialize joins, cubes, or candidate
        #: spaces whose estimated size crosses a limit, raising
        #: :class:`~repro.errors.BudgetExceeded` for the checker's
        #: degradation ladder. Installed/cleared alongside ``deadline``.
        self.budget: "ResourceBudget | None" = None
        # Disk-cache corrupt counter seen at construction: the cache
        # object may be shared, so this engine mirrors only *new*
        # corruption into its own EngineStats.
        self._disk_corrupt_seen = (
            disk_cache.stats.corrupt if disk_cache is not None else 0
        )

    @property
    def database_fingerprint(self) -> str:
        """Content fingerprint of the engine's database (computed once).

        Keys the disk-cache tier: any change to the underlying data (e.g.
        an edited source CSV reloaded into a new database) yields a new
        fingerprint and therefore cold disk-cache keys — stale cube cells
        are never served. Shared (memoized) with the service layer's
        checker pool and incremental tier via
        :func:`repro.db.diskcache.fingerprint_of`.
        """
        if self._db_fingerprint is None:
            self._db_fingerprint = self.adapter.fingerprint()
        return self._db_fingerprint

    def close(self) -> None:
        """Release adapter resources (SQL connections, file handles)."""
        self.adapter.close()

    def _sync_adapter_counters(self) -> None:
        """Mirror adapter-owned counters into EngineStats (delta-wise;
        the adapter may outlive several stats resets)."""
        pushed = self.adapter.pushdown_queries
        if pushed > self._adapter_pushdown_seen:
            self.stats.pushdown_queries += pushed - self._adapter_pushdown_seen
            self._adapter_pushdown_seen = pushed
        materialized = self.adapter.rows_materialized
        if materialized > self._adapter_materialized_seen:
            self.stats.rows_materialized += (
                materialized - self._adapter_materialized_seen
            )
            self._adapter_materialized_seen = materialized

    def evaluate_one(self, query: SimpleAggregateQuery) -> Value:
        """Evaluate a single query (always the naive path)."""
        self.stats.queries_requested += 1
        return self._execute_naive(query)

    def evaluate(
        self, queries: Iterable[SimpleAggregateQuery]
    ) -> dict[SimpleAggregateQuery, Value]:
        """Evaluate a batch, sharing work according to the engine mode."""
        batch = list(dict.fromkeys(queries))
        self.stats.queries_requested += len(batch)
        if self.mode is ExecutionMode.NAIVE:
            return {query: self._execute_naive(query) for query in batch}
        cache = self.cache if self.mode is ExecutionMode.MERGED_CACHED else ResultCache()
        return self._evaluate_merged(batch, cache)

    # ------------------------------------------------------------------
    # Factorized space path (zero materialization)
    # ------------------------------------------------------------------

    def evaluate_space(self, space, mask=None) -> SpaceResults:
        """Answer one claim's factorized candidate space.

        ``mask`` selects candidates (bool per candidate; None = the whole
        space). No ``SimpleAggregateQuery`` objects are built on this path
        (except in NAIVE mode, the per-query reference): candidates are
        answered from cube cells by integer gather, and the returned
        :class:`~repro.db.gather.SpaceResults` carries one compact value
        id per candidate.
        """
        results = SpaceResults.for_space(space)
        if mask is None:
            mask = full_mask(len(space))
        self.evaluate_spaces([SpaceEvalRequest(space, mask, results)])
        return results

    def evaluate_spaces(self, requests: Sequence[SpaceEvalRequest]) -> None:
        """Batch-answer several candidate spaces, sharing cube work.

        The batch is decomposed exactly like :meth:`evaluate` — literals
        pooled across the whole batch, candidates grouped by base-relation
        table set, covering cube dimension sets chosen per group — so the
        physical work (cube queries, cache traffic) is identical to the
        per-query path. Each request's ``results`` is filled in place.
        """
        active: list[tuple[SpaceEvalRequest, object]] = []
        total = 0
        for request in requests:
            positions = flatnonzero(request.mask)
            if len(positions) == 0:
                continue
            total += len(positions)
            active.append((request, positions))
        self.stats.queries_requested += total
        if not active:
            return
        self._check_candidates_budget(total)

        if self.mode is ExecutionMode.NAIVE:
            self._evaluate_spaces_naive(active)
            return
        cache = self.cache if self.mode is ExecutionMode.MERGED_CACHED else ResultCache()

        # Literals of interest per column: union across the whole batch
        # (paper Section 6.3 pools literals over all claims).
        literal_union: dict[ColumnRef, set[str]] = {}
        for request, positions in active:
            encoding = request.space.encoding()
            encoding.add_literals(
                request.space.subset_index[positions], literal_union
            )

        # Group candidate slices by base-relation table set.
        table_groups: dict[frozenset[str], list] = {}
        for request, positions in active:
            encoding = request.space.encoding()
            table_ids = encoding.tables_id[positions]
            for tid in unique_values(table_ids):
                tables = encoding.table_sets[tid]
                if not tables:
                    tables = frozenset({self.database.single_table().name})
                table_groups.setdefault(tables, []).append(
                    (request, select_where(positions, table_ids, tid), encoding)
                )

        for tables, slices in table_groups.items():
            self._evaluate_space_group(tables, slices, literal_union, cache)

    def _evaluate_spaces_naive(self, active) -> None:
        """NAIVE-mode reference: one physical query per distinct candidate."""
        missing = object()
        memo: dict[SimpleAggregateQuery, Value] = {}
        for request, positions in active:
            results = request.results
            for position in as_int_list(positions):
                query = request.space.query_at(position)
                value = memo.get(query, missing)
                if value is missing:
                    value = self._execute_naive(query)
                    memo[query] = value
                results.set_value(position, value)

    def _evaluate_space_group(
        self,
        tables: frozenset[str],
        slices: list,
        literal_union: dict[ColumnRef, set[str]],
        cache: ResultCache,
    ) -> None:
        """Answer all candidate slices sharing one base relation."""
        column_sets: set[frozenset[ColumnRef]] = set()
        for request, positions, encoding in slices:
            column_sets.update(
                encoding.column_sets_used(request.space.subset_index[positions])
            )
        assignment = self._cover_assignment(column_sets)

        dims_groups: dict[frozenset[ColumnRef], list] = {}
        for request, positions, encoding in slices:
            subset_ids = request.space.subset_index[positions]
            dims_of = {
                si: assignment[encoding.subset_col_sets[si]]
                for si in unique_values(subset_ids)
            }
            distinct = list(dict.fromkeys(dims_of.values()))
            if len(distinct) == 1:
                dims_groups.setdefault(distinct[0], []).append(
                    (request, positions, encoding)
                )
                continue
            dim_id_of = {dims: index for index, dims in enumerate(distinct)}
            subset_dim = {si: dim_id_of[dims] for si, dims in dims_of.items()}
            candidate_dim = map_ints(
                subset_ids, subset_dim, len(request.space.subsets)
            )
            for dims in distinct:
                sub_positions = select_where(
                    positions, candidate_dim, dim_id_of[dims]
                )
                dims_groups.setdefault(dims, []).append(
                    (request, sub_positions, encoding)
                )

        for dims, group_slices in dims_groups.items():
            ordered_dims = tuple(sorted(dims))
            literal_map = {
                dim: frozenset(literal_union.get(dim, set()))
                for dim in ordered_dims
            }
            specs = set()
            for request, positions, encoding in group_slices:
                specs.update(
                    encoding.basis_specs[sid]
                    for sid in unique_values(encoding.basis_spec_id[positions])
                )
            entries = self._cells_for(
                tables, ordered_dims, literal_map, specs, cache
            )
            for request, positions, encoding in group_slices:
                answer_candidates(
                    request.results,
                    request.space,
                    positions,
                    ordered_dims,
                    entries,
                    budget=self.budget,
                )
                self.stats.gathered_candidates += len(positions)

    # ------------------------------------------------------------------
    # Naive path
    # ------------------------------------------------------------------

    def _execute_naive(self, query: SimpleAggregateQuery) -> Value:
        if self.deadline is not None:
            self.deadline.check("query-exec")
        tables = self._query_tables(query)
        self._check_relation_budget(tables, "query-exec")
        start = time.perf_counter()
        result = self.adapter.execute_simple(query)
        self.stats.query_seconds += time.perf_counter() - start
        self.stats.physical_queries += 1
        self.stats.rows_scanned += result.rows_scanned
        self._sync_adapter_counters()
        return result.value

    # ------------------------------------------------------------------
    # Merged path
    # ------------------------------------------------------------------

    def _evaluate_merged(
        self,
        batch: Sequence[SimpleAggregateQuery],
        cache: ResultCache,
    ) -> dict[SimpleAggregateQuery, Value]:
        # Literals of interest per column: union across the whole batch
        # (the paper generates cells for all literals with non-zero marginal
        # probability for *any* claim, Section 6.3).
        literal_union: dict[ColumnRef, set[str]] = {}
        for query in batch:
            for predicate in query.all_predicates:
                literal_union.setdefault(predicate.column, set()).add(
                    predicate.normalized_value
                )

        # Group queries by base relation, then choose covering dim sets.
        by_tables: dict[frozenset[str], list[SimpleAggregateQuery]] = {}
        for query in batch:
            by_tables.setdefault(self._query_tables(query), []).append(query)

        results: dict[SimpleAggregateQuery, Value] = {}
        for tables, group in by_tables.items():
            self._evaluate_group(tables, group, literal_union, cache, results)
        return results

    def _evaluate_group(
        self,
        tables: frozenset[str],
        group: Sequence[SimpleAggregateQuery],
        literal_union: dict[ColumnRef, set[str]],
        cache: ResultCache,
        results: dict[SimpleAggregateQuery, Value],
    ) -> None:
        assignment_of = self._cover_dim_sets(group)

        queries_by_dims: dict[frozenset[ColumnRef], list[SimpleAggregateQuery]] = {}
        for query in group:
            dims = assignment_of[frozenset(query.predicate_columns)]
            queries_by_dims.setdefault(dims, []).append(query)

        for dims, queries in queries_by_dims.items():
            ordered_dims = tuple(sorted(dims))
            literal_map = {
                dim: frozenset(literal_union.get(dim, set()))
                for dim in ordered_dims
            }
            specs = {_basis_spec(query) for query in queries}
            entries = self._cells_for(
                tables, ordered_dims, literal_map, specs, cache
            )
            for query in queries:
                results[query] = self._answer(query, ordered_dims, entries)

    def _cover_dim_sets(
        self, group: Sequence[SimpleAggregateQuery]
    ) -> dict[frozenset[ColumnRef], frozenset[ColumnRef]]:
        """Map each query's predicate-column set to a covering dim set."""
        return self._cover_assignment(
            frozenset(q.predicate_columns) for q in group
        )

    def _cover_assignment(
        self, column_sets: Iterable[frozenset[ColumnRef]]
    ) -> dict[frozenset[ColumnRef], frozenset[ColumnRef]]:
        """Choose covering cube dimension sets for predicate-column sets."""
        column_sets = sorted(
            set(column_sets),
            key=lambda s: (-len(s), sorted(str(c) for c in s)),
        )
        if self.cover_strategy is CubeCoverStrategy.PAPER:
            paper = self._paper_cover(column_sets)
            if paper is not None:
                return paper
        # EXACT: largest-first; smaller sets reuse a chosen superset.
        chosen: list[frozenset[ColumnRef]] = []
        assignment: dict[frozenset[ColumnRef], frozenset[ColumnRef]] = {}
        for column_set in column_sets:
            cover = next((c for c in chosen if column_set <= c), None)
            if cover is None:
                chosen.append(column_set)
                cover = column_set
            assignment[column_set] = cover
        return assignment

    def _paper_cover(
        self, column_sets: list[frozenset[ColumnRef]]
    ) -> dict[frozenset[ColumnRef], frozenset[ColumnRef]] | None:
        """Section 6.3 cover: subsets of the scope of size nG(x)=max(m,x-1).

        Returns None (caller falls back to EXACT) when nG exceeds the cube
        dimension limit or the subset family would be too large.
        """
        from itertools import combinations

        from repro.db.cube import MAX_CUBE_DIMENSIONS

        scope = sorted({column for s in column_sets for column in s})
        if not scope:
            return {frozenset(): frozenset()}
        m = min(
            max(len(s) for s in column_sets) or 1, self.paper_max_predicates
        )
        n_dims = max(m, len(scope) - 1)
        if n_dims > MAX_CUBE_DIMENSIONS or n_dims >= len(scope):
            if len(scope) <= MAX_CUBE_DIMENSIONS:
                full = frozenset(scope)
                return {s: full for s in column_sets}
            return None
        dim_sets = [frozenset(c) for c in combinations(scope, n_dims)]
        if len(dim_sets) > 64:
            return None
        assignment: dict[frozenset[ColumnRef], frozenset[ColumnRef]] = {}
        for column_set in column_sets:
            cover = next((d for d in dim_sets if column_set <= d), None)
            if cover is None:
                return None  # a query exceeds nG predicates: fall back
            assignment[column_set] = cover
        return assignment

    def _cells_for(
        self,
        tables: frozenset[str],
        dims: tuple[ColumnRef, ...],
        literal_map: dict[ColumnRef, frozenset[str]],
        specs: set[AggregateSpec],
        cache: ResultCache,
    ) -> dict[AggregateSpec, CacheEntry]:
        entries: dict[AggregateSpec, CacheEntry] = {}
        missing: list[AggregateSpec] = []
        # Accumulate hit/miss *deltas*: in MERGED mode a fresh ResultCache is
        # created per evaluate() call, so copying the cache's own counters
        # would clobber the cumulative engine stats every batch.
        hits_before = cache.stats.hits
        misses_before = cache.stats.misses
        for spec in sorted(specs, key=str):
            entry = cache.get(tables, spec, dims, literal_map)
            if entry is None and self.disk_cache is not None:
                entry = self._load_from_disk(
                    cache, tables, spec, dims, literal_map
                )
            if entry is not None:
                entries[spec] = entry
            else:
                missing.append(spec)
        self.stats.cache_hits += cache.stats.hits - hits_before
        self.stats.cache_misses += cache.stats.misses - misses_before
        if missing:
            if self.deadline is not None:
                self.deadline.check("cube-exec")
            self._check_cube_budget(tables, dims, literal_map)
            self._check_relation_budget(tables, "cube-exec")
            cube = CubeQuery(
                tables=tables,
                dimensions=dims,
                literals=tuple((dim, literal_map[dim]) for dim in dims),
                aggregates=tuple(missing),
            )
            start = time.perf_counter()
            result = self.adapter.execute_cube(cube, budget=self.budget)
            self.stats.query_seconds += time.perf_counter() - start
            self.stats.cube_queries += 1
            self.stats.physical_queries += 1
            self.stats.rows_scanned += result.rows_scanned
            self._sync_adapter_counters()
            for spec in missing:
                cells = result.cells_for(spec)
                entry = cache.put(tables, spec, dims, literal_map, cells)
                entries[spec] = entry
                if self.disk_cache is not None:
                    self.disk_cache.store(
                        self.database_fingerprint,
                        self.backend,
                        tables,
                        spec,
                        dims,
                        entry.literals,
                        entry.cells,
                    )
            self._sync_disk_corrupt()
        return entries

    # ------------------------------------------------------------------
    # Resource-budget guards (see repro.budget)
    # ------------------------------------------------------------------

    def _check_candidates_budget(self, total: int) -> None:
        """Refuse candidate spaces larger than the installed budget."""
        if self.budget is None:
            return
        try:
            self.budget.check_candidates(total, "candidates")
        except BudgetExceeded:
            self.stats.budget_rejections += 1
            raise

    def _check_cube_budget(
        self,
        tables: frozenset[str],
        dims: tuple[ColumnRef, ...],
        literal_map: dict[ColumnRef, frozenset[str]],
    ) -> None:
        """Refuse cubes whose *estimated* rolled-up size crosses the budget.

        The estimate (product of per-dimension literal cardinalities + 2,
        see :func:`repro.budget.estimate_cube_cells`) is computed before a
        single row is touched, so an intractable cube is never built. When
        a cube-cell budget is actually installed, the adapter's predictive
        join-cardinality estimate tightens the bound (cells cannot exceed
        base groups, which cannot exceed relation rows). The
        ``budget.estimate`` fire point lets the chaos harness simulate an
        over-budget estimate without constructing a hostile database.
        """
        estimated_rows = None
        if self.budget is not None and self.budget.max_cube_cells is not None:
            estimated_rows = self.adapter.estimated_cardinality(tables)
            self._sync_adapter_counters()
        estimate = estimate_cube_cells(
            dims, literal_map, estimated_rows=estimated_rows
        )
        try:
            faults.fire(
                "budget.estimate", ",".join(sorted(tables)), estimate
            )
        except InjectedFault as fault:
            self.stats.budget_rejections += 1
            raise BudgetExceeded(
                "cube_cells", "cube-exec", 0, estimate
            ) from fault
        if self.budget is None:
            return
        try:
            self.budget.check_cube(estimate, "cube-exec")
        except BudgetExceeded:
            self.stats.budget_rejections += 1
            raise

    def _check_relation_budget(
        self, tables: frozenset[str], stage: str
    ) -> None:
        """Bound the relation backing a query or cube, predictively.

        ``max_rows`` budgets Python-side *materialization*, so the check
        consults the adapter's capabilities: a pushdown adapter never pulls
        the relation into Python (it streams paginated cells, bounded by
        ``check_cube`` during rollup), which is exactly what makes
        out-of-core verification work — a 10M-row SQLite file verifies
        under a tiny ``max_rows_materialized``. For in-memory adapters the
        relation *is* the materialization, so the engine first checks the
        adapter's *estimated* cardinality — a join-fan-out upper bound
        computed without materializing anything — and only when that
        pessimistic bound would reject does it pay for the exact count (at
        worst the one materialization it was about to do anyway), so an
        over-estimate never causes a false rejection and an actually
        oversized join is refused before any Python-side materialization.
        """
        if self.budget is None or self.budget.max_rows is None:
            return
        if self.adapter.capabilities.pushdown:
            return
        try:
            self.budget.check_rows(
                self.adapter.estimated_cardinality(tables), stage
            )
        except BudgetExceeded:
            try:
                self.budget.check_rows(
                    self.adapter.exact_cardinality(tables), stage
                )
            except BudgetExceeded:
                self.stats.budget_rejections += 1
                raise
        finally:
            self._sync_adapter_counters()

    def _sync_disk_corrupt(self) -> None:
        """Mirror newly-quarantined disk-cache entries into EngineStats."""
        if self.disk_cache is None:
            return
        seen = self.disk_cache.stats.corrupt
        if seen > self._disk_corrupt_seen:
            self.stats.disk_corrupt += seen - self._disk_corrupt_seen
            self._disk_corrupt_seen = seen

    def _load_from_disk(
        self,
        cache: ResultCache,
        tables: frozenset[str],
        spec: AggregateSpec,
        dims: tuple[ColumnRef, ...],
        literal_map: dict[ColumnRef, frozenset[str]],
    ):
        """Second-tier lookup: seed the in-memory cache from disk."""
        loaded = self.disk_cache.load(
            self.database_fingerprint,
            self.backend,
            tables,
            spec,
            dims,
            literal_map,
        )
        self._sync_disk_corrupt()
        if loaded is None:
            self.stats.disk_misses += 1
            return None
        self.stats.disk_hits += 1
        literals, cells = loaded
        return cache.put(
            tables,
            spec,
            dims,
            {dim: frozenset(values) for dim, values in literals.items()},
            cells,
        )

    def _answer(
        self,
        query: SimpleAggregateQuery,
        dims: tuple[ColumnRef, ...],
        entries: dict[AggregateSpec, CacheEntry],
    ) -> Value:
        entry = entries[_basis_spec(query)]
        assignment = {
            predicate.column: predicate.normalized_value
            for predicate in query.all_predicates
        }
        numerator = self._cell_value(entry, dims, assignment)
        fn = query.aggregate.function
        if not fn.is_ratio:
            return numerator
        if fn is AggregateFunction.PERCENTAGE:
            denominator = self._cell_value(entry, dims, {})
        else:  # CONDITIONAL_PROBABILITY
            assert query.condition is not None
            condition_only = {
                query.condition.column: query.condition.normalized_value
            }
            denominator = self._cell_value(entry, dims, condition_only)
        return ratio_value(numerator, denominator)

    def _cell_value(
        self,
        entry: CacheEntry,
        dims: tuple[ColumnRef, ...],
        assignment: dict[ColumnRef, str],
    ) -> Value:
        # Empty groups resolve through the entry: counts 0, others NULL.
        return entry.lookup(tuple(assignment.get(dim, ALL) for dim in dims))

    def _query_tables(self, query: SimpleAggregateQuery) -> frozenset[str]:
        tables = query.referenced_tables()
        if not tables:
            tables = frozenset({self.database.single_table().name})
        return tables
