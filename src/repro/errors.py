"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base type. Substrate-specific subclasses carry enough context to
diagnose misuse (unknown columns, cyclic schemas, malformed queries, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """Invalid schema definition (duplicate names, bad references, ...)."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the database."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in its table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column: {table!r}.{column!r}")
        self.table = table
        self.column = column


class CyclicSchemaError(SchemaError):
    """The foreign-key graph contains a cycle (paper assumes acyclicity)."""


class JoinPathError(ReproError):
    """No foreign-key join path connects the requested tables."""


class QueryError(ReproError):
    """Malformed Simple Aggregate Query."""


class SqlParseError(QueryError):
    """The SQL text could not be parsed as a Simple Aggregate Query."""


class CsvFormatError(ReproError):
    """A CSV source could not be loaded into a table."""


class DataDictionaryError(ReproError):
    """A data dictionary file could not be parsed."""


class DocumentError(ReproError):
    """Malformed input document (bad HTML nesting, empty text, ...)."""


class CorpusError(ReproError):
    """Corpus generation failed or was configured inconsistently."""


class CheckerError(ReproError):
    """The AggChecker pipeline was driven incorrectly."""


class MissingDependencyError(ReproError):
    """An optional third-party dependency is required for this feature."""


class DeadlineExceeded(ReproError):
    """A claim-execution deadline expired at a pipeline stage boundary.

    Carries the stage where the budget ran out; the checker catches this
    to walk its degradation ladder instead of failing the document.
    """

    def __init__(self, stage: str, budget_seconds: float) -> None:
        super().__init__(
            f"deadline of {budget_seconds:.3f}s exceeded at stage {stage!r}"
        )
        self.stage = stage
        self.budget_seconds = budget_seconds


class InjectedFault(ReproError):
    """Raised by an armed fault-injection point (testing only)."""

    def __init__(self, point: str, key: str) -> None:
        super().__init__(f"injected fault at {point!r} (key {key!r})")
        self.point = point
        self.key = key


class CheckpointError(ReproError):
    """A corpus-run checkpoint could not be loaded or does not match."""


class RateLimitedError(ReproError):
    """A client exceeded its token-bucket rate limit (maps to HTTP 429)."""

    def __init__(self, client: str, retry_after_seconds: float) -> None:
        super().__init__(
            f"client {client!r} is rate limited; retry in "
            f"~{retry_after_seconds:.1f}s"
        )
        self.client = client
        self.retry_after_seconds = retry_after_seconds


class QueueFullError(ReproError):
    """The durable job queue is at capacity (maps to HTTP 429).

    Carries a depth-aware ``retry_after_seconds`` estimate that the HTTP
    front end surfaces as a ``Retry-After`` header.
    """

    def __init__(self, capacity: int, retry_after_seconds: float) -> None:
        super().__init__(
            f"job queue is at capacity ({capacity}); retry in "
            f"~{retry_after_seconds:.0f}s"
        )
        self.capacity = capacity
        self.retry_after_seconds = retry_after_seconds
