"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base type. Substrate-specific subclasses carry enough context to
diagnose misuse (unknown columns, cyclic schemas, malformed queries, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """Invalid schema definition (duplicate names, bad references, ...)."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the database."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in its table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column: {table!r}.{column!r}")
        self.table = table
        self.column = column


class CyclicSchemaError(SchemaError):
    """The foreign-key graph contains a cycle (paper assumes acyclicity)."""


class JoinPathError(ReproError):
    """No foreign-key join path connects the requested tables."""


class QueryError(ReproError):
    """Malformed Simple Aggregate Query."""


class SqlParseError(QueryError):
    """The SQL text could not be parsed as a Simple Aggregate Query."""


class CsvFormatError(ReproError):
    """A CSV source could not be loaded into a table.

    ``reason`` is a stable machine-readable code (``csv_format``,
    ``too_many_rows``, ``too_many_columns``, ``field_too_large``, ...)
    that the service layer surfaces in structured 400 responses.
    """

    def __init__(self, message: str, reason: str = "csv_format") -> None:
        super().__init__(message)
        self.reason = reason


class DataDictionaryError(ReproError):
    """A data dictionary file could not be parsed."""


class DocumentError(ReproError):
    """Malformed input document (bad HTML nesting, empty text, ...)."""


class CorpusError(ReproError):
    """Corpus generation failed or was configured inconsistently."""


class CheckerError(ReproError):
    """The AggChecker pipeline was driven incorrectly."""


class MissingDependencyError(ReproError):
    """An optional third-party dependency is required for this feature."""


class DeadlineExceeded(ReproError):
    """A claim-execution deadline expired at a pipeline stage boundary.

    Carries the stage where the budget ran out; the checker catches this
    to walk its degradation ladder instead of failing the document.
    """

    def __init__(self, stage: str, budget_seconds: float) -> None:
        super().__init__(
            f"deadline of {budget_seconds:.3f}s exceeded at stage {stage!r}"
        )
        self.stage = stage
        self.budget_seconds = budget_seconds


class BudgetExceeded(ReproError):
    """A space budget would be exceeded at a pipeline stage boundary.

    Unlike :class:`DeadlineExceeded` (which fires *after* time is spent),
    this fires *before* materialization: the engine estimates the size of
    a cube result, join, or candidate space and refuses to build it when
    the estimate crosses the configured limit. The checker catches this
    to walk the same degradation ladder as deadline expiry.
    """

    def __init__(
        self, kind: str, stage: str, limit: int, estimate: int
    ) -> None:
        super().__init__(
            f"{kind} budget of {limit} exceeded at stage {stage!r} "
            f"(estimated {estimate})"
        )
        self.kind = kind
        self.stage = stage
        self.limit = limit
        self.estimate = estimate


class AdmissionRejectedError(ReproError):
    """A request's estimated cost exceeds the admission limit (HTTP 413).

    Raised by the queue service *before* work reaches the durable queue:
    cost = tables x rows x claims, a deliberately coarse upper bound on
    the work a request can demand. Carries the machine-readable pieces
    the HTTP front end surfaces in its JSON error body.
    """

    def __init__(self, cost: int, max_cost: int) -> None:
        super().__init__(
            f"estimated request cost {cost} exceeds admission limit "
            f"{max_cost}"
        )
        self.cost = cost
        self.max_cost = max_cost


class InjectedFault(ReproError):
    """Raised by an armed fault-injection point (testing only)."""

    def __init__(self, point: str, key: str) -> None:
        super().__init__(f"injected fault at {point!r} (key {key!r})")
        self.point = point
        self.key = key


class CheckpointError(ReproError):
    """A corpus-run checkpoint could not be loaded or does not match."""


class RateLimitedError(ReproError):
    """A client exceeded its token-bucket rate limit (maps to HTTP 429)."""

    def __init__(self, client: str, retry_after_seconds: float) -> None:
        super().__init__(
            f"client {client!r} is rate limited; retry in "
            f"~{retry_after_seconds:.1f}s"
        )
        self.client = client
        self.retry_after_seconds = retry_after_seconds


class StreamInterruptedError(ReproError):
    """An NDJSON response stream ended before its terminal event.

    The wire protocol is HTTP/1.0 with close-delimited bodies, so a
    server crash mid-stream is indistinguishable from normal end-of-body
    at the socket layer; completeness is judged by content — the last
    event must be a ``summary`` (or a request-level ``error``). Carries
    the events received so far so callers can salvage partial verdicts.
    """

    def __init__(self, message: str, events: list | None = None) -> None:
        super().__init__(message)
        self.events = events if events is not None else []


class QueueFullError(ReproError):
    """The durable job queue is at capacity (maps to HTTP 429).

    Carries a depth-aware ``retry_after_seconds`` estimate that the HTTP
    front end surfaces as a ``Retry-After`` header.
    """

    def __init__(self, capacity: int, retry_after_seconds: float) -> None:
        super().__init__(
            f"job queue is at capacity ({capacity}); retry in "
            f"~{retry_after_seconds:.0f}s"
        )
        self.capacity = capacity
        self.retry_after_seconds = retry_after_seconds
