"""Interactive verification session (paper Figure 3, Table 3).

After automated checking, users resolve each claim by accepting the top
suggestion (1 click), picking among the top-5 (2 clicks), the top-10
(3 clicks), or assembling a custom query from fragments. The session
records which feature resolved each claim — the distribution reported in
the paper's Table 3 — and exposes it to the user-study simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.checker import CheckReport
from repro.db.query import SimpleAggregateQuery
from repro.db.sql import describe_query
from repro.db.values import Value
from repro.nlp.numbers import rounds_to
from repro.text.claims import Claim
from repro.errors import CheckerError


class ResolutionFeature(enum.Enum):
    """Which UI feature resolved a claim (Table 3 columns)."""

    TOP_1 = "top-1"
    TOP_5 = "top-5"
    TOP_10 = "top-10"
    CUSTOM = "custom"

    @property
    def clicks(self) -> int:
        return {
            ResolutionFeature.TOP_1: 1,
            ResolutionFeature.TOP_5: 2,
            ResolutionFeature.TOP_10: 3,
            ResolutionFeature.CUSTOM: 5,
        }[self]


@dataclass
class Resolution:
    """A user's final decision for one claim."""

    claim: Claim
    query: SimpleAggregateQuery
    result: Value
    feature: ResolutionFeature
    claim_is_correct: bool


class InteractiveSession:
    """Drives corrective actions over a :class:`CheckReport`.

    ``engine`` is needed only to evaluate custom queries that fall outside
    the already-evaluated candidate scope; ``AggChecker.interactive`` wires
    its own engine in.
    """

    def __init__(self, report: CheckReport, engine=None) -> None:
        self.report = report
        self.engine = engine
        self._resolutions: dict[tuple[str, int], Resolution] = {}

    def _distribution_of(self, claim: Claim):
        distribution = self.report.verdict_for(claim).distribution
        if distribution is None:
            raise CheckerError(
                "claim timed out during verification (unverifiable verdict "
                "carries no candidate distribution); re-check without a "
                "deadline to interact with it"
            )
        return distribution

    # -- inspection ------------------------------------------------------

    def suggestions(
        self, claim: Claim, k: int = 5
    ) -> list[tuple[SimpleAggregateQuery, str, float]]:
        """Top-k candidates with natural-language descriptions."""
        distribution = self._distribution_of(claim)
        return [
            (query, describe_query(query), probability)
            for query, probability in distribution.top_queries(k)
        ]

    def pending(self) -> list[Claim]:
        return [
            claim
            for claim in self.report.claims
            if claim.key() not in self._resolutions
        ]

    def resolutions(self) -> list[Resolution]:
        return list(self._resolutions.values())

    # -- corrective actions ------------------------------------------------

    def accept_top(self, claim: Claim) -> Resolution:
        """Accept the system's most likely query (1 click)."""
        return self.select_rank(claim, 1)

    def select_rank(self, claim: Claim, rank: int) -> Resolution:
        """Pick the rank-th candidate (rank 1 = top suggestion)."""
        distribution = self._distribution_of(claim)
        top = distribution.top_queries(rank)
        if len(top) < rank:
            raise CheckerError(
                f"claim has only {len(top)} candidates; rank {rank} unavailable"
            )
        query = top[rank - 1][0]
        if rank <= 1:
            feature = ResolutionFeature.TOP_1
        elif rank <= 5:
            feature = ResolutionFeature.TOP_5
        else:
            feature = ResolutionFeature.TOP_10
        return self._resolve(claim, query, feature)

    def set_custom(self, claim: Claim, query: SimpleAggregateQuery) -> Resolution:
        """Assemble a query by hand from fragments (Figure 3(d))."""
        return self._resolve(claim, query, ResolutionFeature.CUSTOM)

    def _resolve(
        self, claim: Claim, query: SimpleAggregateQuery, feature: ResolutionFeature
    ) -> Resolution:
        distribution = self._distribution_of(claim)
        # On the factorized evaluation path this consults the claim's own
        # candidate results; queries outside the claim's space (e.g.
        # another claim's candidate) fall through to the engine below.
        evaluated = (
            distribution.outcome is not None
            and distribution.outcome.is_evaluated(distribution.space, query)
        )
        if evaluated:
            result = distribution.result_of(query)
        else:
            # Custom queries outside the evaluated scope run directly.
            if self.engine is None:
                raise CheckerError(
                    "evaluating a custom query requires an engine; "
                    "create the session via AggChecker.interactive()"
                )
            result = self.engine.evaluate_one(query)
        resolution = Resolution(
            claim=claim,
            query=query,
            result=result,
            feature=feature,
            claim_is_correct=rounds_to(result, claim.claimed_value),
        )
        self._resolutions[claim.key()] = resolution
        return resolution
