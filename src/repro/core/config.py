"""Top-level AggChecker configuration.

One frozen object bundles every knob of the pipeline; the ablation harness
derives variants from the default via :func:`dataclasses.replace`.

Engine construction knobs (execution mode, storage backend, disk-cache
directory, space/time budgets' companion ``disk_cache_min_rows``) live in
one nested :class:`~repro.db.engine.EngineConfig` under ``engine``; the
old flat fields (``execution_mode=``, ``backend=``, ``cache_dir=``,
``disk_cache_min_rows=``) are kept as deprecated constructor shims and
read-only properties so existing call sites keep working while emitting
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from repro.db.engine import EngineConfig, ExecutionBackend, ExecutionMode
from repro.fragments.extract import ExtractionConfig
from repro.matching.context import ContextConfig
from repro.model.candidates import CandidateConfig
from repro.model.em import EmConfig
from repro.text.claims import ClaimDetectionConfig

#: Sentinel distinguishing "not passed" from an explicit None in the
#: deprecated flat-field constructor shims.
_UNSET = object()


@dataclass(frozen=True)
class AggCheckerConfig:
    """All pipeline knobs with the paper's default settings."""

    #: Keyword-context sources (Algorithm 2 / Table 5 block 1).
    context: ContextConfig = field(default_factory=ContextConfig)
    #: Fragment extraction (synonyms, distinct-value caps).
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    #: Claim detection heuristics.
    claim_detection: ClaimDetectionConfig = field(
        default_factory=ClaimDetectionConfig
    )
    #: Candidate-space bounds (max predicates per claim, subset cap).
    candidates: CandidateConfig = field(default_factory=CandidateConfig)
    #: Probabilistic model / EM settings (pT, iterations, ablations).
    em: EmConfig = field(default_factory=EmConfig)
    #: "# Hits": predicate fragments retrieved per claim (Table 5 block 3).
    predicate_hits: int = 20
    #: Aggregation-column fragments retrieved per claim (Figure 13 right).
    column_hits: int = 10
    #: Query-engine construction: execution mode (Table 6 ladder), storage
    #: backend (``columnar``/``row``/``sqlite``/``duckdb``), cube disk
    #: cache. Derive variants with :meth:`with_engine`.
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Share predicate fragments across the document's claims (paper
    #: Section 6.3 pools literals "for any claim in the document").
    pool_predicates: bool = True
    #: Score all of a document's claim contexts against the compiled
    #: fragment index in one vectorized pass per category (bit-identical
    #: to the per-claim oracle, which False falls back to).
    batch_matching: bool = True
    #: Wall-clock execution budget per claim, in seconds (None = no
    #: deadline). A document gets ``claim_deadline * n_claims`` (claims
    #: are verified jointly); when it expires the checker degrades
    #: stepwise — shrink the evaluation scope, then skip query execution,
    #: then report claims unverifiable — instead of hanging (see
    #: ARCHITECTURE.md, "Failure domains & degradation ladder").
    claim_deadline: float | None = None
    #: Space budget: maximum rows a materialized relation (join result)
    #: may hold before the engine executes over it (None = unlimited).
    #: Exceeding it walks the same degradation ladder as deadline expiry.
    max_rows_materialized: int | None = None
    #: Space budget: maximum *estimated* rolled-up cube cells. The engine
    #: bounds a cube's result before executing it (see
    #: :func:`repro.budget.estimate_cube_cells`) and refuses to execute
    #: cubes over the limit (None = unlimited).
    max_cube_cells: int | None = None
    #: Space budget: maximum candidate (query, claim) pairs evaluated for
    #: one claim's candidate space (None = unlimited).
    max_candidates: int | None = None

    def with_engine(self, **changes) -> "AggCheckerConfig":
        """Variant with engine-construction knobs replaced (e.g.
        ``config.with_engine(backend="sqlite", cache_dir=path)``)."""
        return replace(self, engine=replace(self.engine, **changes))

    def with_em(self, **changes) -> "AggCheckerConfig":
        return replace(self, em=replace(self.em, **changes))

    def with_context(self, **changes) -> "AggCheckerConfig":
        return replace(self, context=replace(self.context, **changes))


# Write-side compatibility: the old flat engine kwargs remain accepted by
# the constructor (with a DeprecationWarning) via a wrapper around the
# generated ``__init__``. They are deliberately NOT dataclass ``InitVar``s:
# ``dataclasses.replace`` re-reads InitVar-with-default values through
# ``getattr`` and would echo the *old* engine's flat values back into the
# constructor, clobbering an explicit ``engine=`` replacement (this is how
# ``with_engine`` would silently become a no-op). A plain keyword shim is
# invisible to ``replace``.
_dataclass_init = AggCheckerConfig.__init__


def _compat_init(
    self,
    *args,
    execution_mode=_UNSET,
    backend=_UNSET,
    cache_dir=_UNSET,
    disk_cache_min_rows=_UNSET,
    **kwargs,
):
    _dataclass_init(self, *args, **kwargs)
    overrides = {
        name: value
        for name, value in (
            ("mode", execution_mode),
            ("backend", backend),
            ("cache_dir", cache_dir),
            ("disk_cache_min_rows", disk_cache_min_rows),
        )
        if value is not _UNSET
    }
    if overrides:
        warnings.warn(
            "AggCheckerConfig(execution_mode=/backend=/cache_dir=/"
            "disk_cache_min_rows=) is deprecated; pass "
            "engine=EngineConfig(...) or use with_engine()",
            DeprecationWarning,
            stacklevel=2,
        )
        object.__setattr__(self, "engine", replace(self.engine, **overrides))


_compat_init.__wrapped__ = _dataclass_init
AggCheckerConfig.__init__ = _compat_init

# Read-side compatibility: the old flat fields remain readable (now
# properties over the nested EngineConfig). Assigned after class creation
# so the dataclass machinery does not treat them as fields; note
# ``config.backend`` is now the canonical backend *name* string, not an
# ExecutionBackend enum member.
AggCheckerConfig.execution_mode = property(lambda self: self.engine.mode)
AggCheckerConfig.backend = property(lambda self: self.engine.backend)
AggCheckerConfig.cache_dir = property(lambda self: self.engine.cache_dir)
AggCheckerConfig.disk_cache_min_rows = property(
    lambda self: self.engine.disk_cache_min_rows
)

__all__ = [
    "AggCheckerConfig",
    "EngineConfig",
    "ExecutionBackend",
    "ExecutionMode",
]
