"""Top-level AggChecker configuration.

One frozen object bundles every knob of the pipeline; the ablation harness
derives variants from the default via :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.db.engine import ExecutionBackend, ExecutionMode
from repro.fragments.extract import ExtractionConfig
from repro.matching.context import ContextConfig
from repro.model.candidates import CandidateConfig
from repro.model.em import EmConfig
from repro.text.claims import ClaimDetectionConfig


@dataclass(frozen=True)
class AggCheckerConfig:
    """All pipeline knobs with the paper's default settings."""

    #: Keyword-context sources (Algorithm 2 / Table 5 block 1).
    context: ContextConfig = field(default_factory=ContextConfig)
    #: Fragment extraction (synonyms, distinct-value caps).
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    #: Claim detection heuristics.
    claim_detection: ClaimDetectionConfig = field(
        default_factory=ClaimDetectionConfig
    )
    #: Candidate-space bounds (max predicates per claim, subset cap).
    candidates: CandidateConfig = field(default_factory=CandidateConfig)
    #: Probabilistic model / EM settings (pT, iterations, ablations).
    em: EmConfig = field(default_factory=EmConfig)
    #: "# Hits": predicate fragments retrieved per claim (Table 5 block 3).
    predicate_hits: int = 20
    #: Aggregation-column fragments retrieved per claim (Figure 13 right).
    column_hits: int = 10
    #: Query-engine execution strategy (Table 6 ladder).
    execution_mode: ExecutionMode = ExecutionMode.MERGED_CACHED
    #: Physical engine backend: dictionary-encoded columnar (default,
    #: vectorized with NumPy when available) or the row-wise oracle.
    backend: ExecutionBackend = ExecutionBackend.COLUMNAR
    #: Share predicate fragments across the document's claims (paper
    #: Section 6.3 pools literals "for any claim in the document").
    pool_predicates: bool = True
    #: Score all of a document's claim contexts against the compiled
    #: fragment index in one vectorized pass per category (bit-identical
    #: to the per-claim oracle, which False falls back to).
    batch_matching: bool = True
    #: Directory for the persistent cube-cell cache (None disables the
    #: disk tier). Safe to share between concurrent workers and across
    #: runs: entries are keyed by database *content* fingerprint, so data
    #: edits invalidate automatically.
    cache_dir: str | None = None
    #: Skip the disk cube-cache tier for databases with fewer total rows
    #: than this (None = always use it when ``cache_dir`` is set). Tiny
    #: databases recompute a cube faster than a disk round-trip, so the
    #: warm disk tier is a net slowdown for them; skips are counted in
    #: ``DiskCacheStats.skipped_small``.
    disk_cache_min_rows: int | None = None
    #: Wall-clock execution budget per claim, in seconds (None = no
    #: deadline). A document gets ``claim_deadline * n_claims`` (claims
    #: are verified jointly); when it expires the checker degrades
    #: stepwise — shrink the evaluation scope, then skip query execution,
    #: then report claims unverifiable — instead of hanging (see
    #: ARCHITECTURE.md, "Failure domains & degradation ladder").
    claim_deadline: float | None = None
    #: Space budget: maximum rows a materialized relation (join result)
    #: may hold before the engine executes over it (None = unlimited).
    #: Exceeding it walks the same degradation ladder as deadline expiry.
    max_rows_materialized: int | None = None
    #: Space budget: maximum *estimated* rolled-up cube cells. The engine
    #: bounds a cube's result as prod(|literals_d| + 2) over its
    #: dimensions and refuses to execute cubes over the limit (None =
    #: unlimited).
    max_cube_cells: int | None = None
    #: Space budget: maximum candidate (query, claim) pairs evaluated for
    #: one claim's candidate space (None = unlimited).
    max_candidates: int | None = None

    def with_em(self, **changes) -> "AggCheckerConfig":
        return replace(self, em=replace(self.em, **changes))

    def with_context(self, **changes) -> "AggCheckerConfig":
        return replace(self, context=replace(self.context, **changes))
