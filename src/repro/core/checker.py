"""The AggChecker pipeline facade (paper Figure 1).

Wires together: fragment extraction and indexing (once per database),
claim detection, keyword matching, candidate construction, EM inference
with massive-scale evaluation, and verdict generation.

Candidate spaces flow through inference *factorized* (see
``repro.model.candidates`` and ARCHITECTURE.md "Evaluation data path"):
the engine answers them by cell gather and per-candidate query objects
materialize lazily, only where verdicts, top-k suggestions, or the
interactive session need them.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace

from repro import faults
from repro.budget import ResourceBudget
from repro.core.config import AggCheckerConfig
from repro.core.verdict import ClaimVerdict, make_verdict, unverifiable_verdict
from repro.db.engine import EngineStats, QueryEngine
from repro.deadline import Deadline
from repro.errors import BudgetExceeded, DeadlineExceeded
from repro.db.schema import Database
from repro.fragments.extract import extract_fragments
from repro.fragments.indexer import FragmentIndex
from repro.matching.matcher import keyword_match, keyword_match_batch
from repro.model.candidates import build_candidates
from repro.model.em import InferenceResult, query_and_learn
from repro.model.priors import Priors
from repro.fragments.indexer import RelevanceScores
from repro.text.claims import Claim, detect_claims
from repro.text.document import Document
from repro.text.htmlparse import parse_html

#: Keyword-score share granted to predicate fragments pooled in from other
#: claims of the same document (they enter the space with low relevance and
#: can only win through priors and evaluation results).
_POOL_SHARE = 0.02

#: Per-claim evaluation budget on the degraded-scope rung of the deadline
#: ladder: small enough to finish fast under the grace budget, large
#: enough that the true query usually stays in scope.
DEGRADED_SCOPE_BUDGET = 16

#: Fraction of the original budget granted to each degraded retry. The
#: ladder has two retrying rungs, so a timed-out document costs at most
#: ~2x its nominal budget before the unverifiable fallback (which does no
#: engine work and is bounded by construction).
_GRACE_SHARE = 0.5


def _pool_predicate_fragments(scores: dict[Claim, RelevanceScores]) -> None:
    """Share predicate fragments across claims of one document.

    Claims in a document are semantically correlated; the paper pools the
    literals of *all* claims when generating cube cells (Section 6.3) and
    relies on document priors to route shared restrictions ("a restriction
    is usually placed on column Games", Example 5). Pooled fragments get a
    small fraction of the claim's top score so keyword evidence still
    dominates.
    """
    union: dict = {}
    fragment_ids: dict = {}
    ids_known = True
    for relevance in scores.values():
        predicate_ids = relevance.predicate_ids
        ids_known = ids_known and predicate_ids is not None
        for position, (fragment, score) in enumerate(
            relevance.predicates.items()
        ):
            union[fragment] = max(union.get(fragment, 0.0), score)
            if predicate_ids is not None:
                fragment_ids[fragment] = predicate_ids[position]
    for relevance in scores.values():
        if not relevance.predicates:
            continue
        floor = max(relevance.predicates.values()) * _POOL_SHARE
        for fragment in union:
            if fragment not in relevance.predicates:
                relevance.predicates[fragment] = floor
                if relevance.predicate_ids is not None:
                    # Keep the catalog-aligned id array in dict order.
                    if ids_known:
                        relevance.predicate_ids.append(fragment_ids[fragment])
                    else:
                        relevance.predicate_ids = None
        relevance._values = None  # predicate values changed


def claim_fingerprint(claim: Claim) -> str:
    """SHA-256 over every document feature the pipeline reads for a claim.

    Covers the mention (surface text, parsed value, token span, percentage
    flag), the claim sentence, and the full Algorithm-2 keyword context:
    the previous sentence, the paragraph's first sentence, and the
    headlines of all enclosing sections. Two claims with equal fingerprints
    are indistinguishable to matching and candidate construction, so the
    service layer's incremental re-check tier may reuse one's result for
    the other (on the same database content and configuration).

    Deliberately excludes the claim ordinal: inserting or editing *other*
    text must not invalidate an untouched claim.
    """
    mention = claim.mention
    sentence = claim.sentence
    digest = hashlib.sha256()

    def feed(tag: str, text: str) -> None:
        digest.update(f"{tag}:{text}\x1e".encode("utf-8", "surrogatepass"))

    feed("mention", mention.text)
    feed("value", repr(mention.value))
    feed("span", ",".join(str(index) for index in mention.token_indexes))
    feed("pct", "1" if mention.is_percentage else "0")
    feed("sentence", sentence.text)
    previous = sentence.previous
    feed("previous", previous.text if previous is not None else "")
    first = sentence.paragraph.first_sentence
    feed(
        "paragraph_start",
        first.text if first is not None and first is not sentence else "",
    )
    for section in sentence.paragraph.section.ancestors():
        if section.headline:
            feed("headline", section.headline)
    return digest.hexdigest()


@dataclass
class CheckReport:
    """Everything produced by one document verification run."""

    document: Document
    claims: list[Claim]
    verdicts: list[ClaimVerdict]
    inference: InferenceResult
    engine_stats: EngineStats
    total_seconds: float

    @property
    def priors(self) -> Priors | None:
        return self.inference.priors

    def verdict_for(self, claim: Claim) -> ClaimVerdict:
        for verdict in self.verdicts:
            if verdict.claim is claim:
                return verdict
        raise KeyError(f"no verdict for {claim!r}")

    def flagged_claims(self) -> list[Claim]:
        return [v.claim for v in self.verdicts if v.status.flagged]


class AggChecker:
    """Verifies text summaries of one relational database.

    Fragment extraction and indexing happen once at construction; each
    :meth:`check_document` call runs the full verification pipeline on one
    document. The query engine (and its result cache) persists across
    documents for the same database.
    """

    def __init__(
        self,
        database: Database,
        config: AggCheckerConfig | None = None,
        data_dictionary: dict[str, str] | None = None,
    ) -> None:
        self.database = database
        self.config = config or AggCheckerConfig()
        self.catalog = extract_fragments(
            database, self.config.extraction, data_dictionary
        )
        self.index = FragmentIndex(self.catalog)
        if self.config.batch_matching:
            # Compile the matching artifacts (shared vocabulary, CSR
            # postings, idf/norm arrays) up front: checkers are pooled per
            # database, so every document reuses them.
            self.index.compiled()
        self.engine = QueryEngine(database, self.config.engine)

    def check_html(self, html: str) -> CheckReport:
        """Parse HTML and verify the resulting document."""
        return self.check_document(parse_html(html))

    def interactive(self, report: CheckReport):
        """An :class:`InteractiveSession` wired to this checker's engine."""
        from repro.core.interactive import InteractiveSession

        return InteractiveSession(report, self.engine)

    def check_text(self, title: str, paragraphs: list[str]) -> CheckReport:
        """Verify a flat plain-text document."""
        return self.check_document(Document.from_plain_text(title, paragraphs))

    def check_document(self, document: Document) -> CheckReport:
        """Run the full pipeline: detect, match, infer, verdict."""
        started = time.perf_counter()
        claims = detect_claims(document, self.config.claim_detection)
        return self._check(document, claims, started)

    def check_claims(
        self,
        document: Document,
        claims: list[Claim],
        deadline: Deadline | None = None,
    ) -> CheckReport:
        """Verify a caller-provided claim list (corpus ground truth mode).

        ``deadline`` overrides the config-derived per-claim budget (the
        service layer passes its per-request timeout through here).
        """
        return self._check(document, claims, time.perf_counter(), deadline)

    def _check(
        self,
        document: Document,
        claims: list[Claim],
        started: float,
        deadline: Deadline | None = None,
    ) -> CheckReport:
        # Checkers are reused across documents (and, via CheckerPool, across
        # corpus cases sharing a database); the report carries this
        # document's engine-stats *delta* so per-case numbers stay additive.
        stats_before = self.engine.stats.copy()
        if deadline is None and self.config.claim_deadline is not None:
            # Claims of one document are verified jointly (pooled
            # fragments, shared priors), so the document budget scales
            # with the claim count.
            deadline = Deadline(
                self.config.claim_deadline * max(1, len(claims))
            )
        try:
            spaces = self._match_and_build(claims, deadline)
        except (DeadlineExceeded, BudgetExceeded) as exhausted:
            # The budget died before inference even had inputs: the last
            # ladder rung reports every claim as unverifiable. The stream
            # (and the corpus run) continues; nothing hangs or errors.
            if isinstance(exhausted, BudgetExceeded):
                self.engine.stats.budget_unverifiable += len(claims)
            else:
                self.engine.stats.deadline_unverifiable += len(claims)
            return self._finish(
                document,
                claims,
                [unverifiable_verdict(claim) for claim in claims],
                InferenceResult({}, None, 0),
                stats_before,
                started,
            )
        inference, degraded = self._infer_ladder(spaces, deadline)
        faults.fire("checker.stage", "verdicts")
        verdicts = [
            make_verdict(claim, inference.distributions[claim], degraded)
            for claim in claims
        ]
        return self._finish(
            document, claims, verdicts, inference, stats_before, started
        )

    def _match_and_build(
        self, claims: list[Claim], deadline: Deadline | None
    ) -> dict:
        """Matching and candidate construction with stage deadline checks."""
        faults.fire("checker.stage", "match")
        if deadline is not None:
            deadline.check("match")
        matcher = keyword_match_batch if self.config.batch_matching else keyword_match
        scores = matcher(
            claims,
            self.index,
            self.config.context,
            predicate_hits=self.config.predicate_hits,
            column_hits=self.config.column_hits,
        )
        if self.config.pool_predicates:
            _pool_predicate_fragments(scores)
        faults.fire("checker.stage", "candidates")
        if deadline is not None:
            deadline.check("candidates")
        for claim in claims:
            faults.fire("checker.claim", claim.mention.text)
        return {
            claim: build_candidates(claim, scores[claim], self.config.candidates)
            for claim in claims
        }

    def _infer_ladder(
        self, spaces: dict, deadline: Deadline | None
    ) -> tuple[InferenceResult, str | None]:
        """Inference under the degradation ladder.

        Rung 1 is full inference against ``deadline`` and the configured
        space budget. On expiry — deadline or space — rung 2 retries with
        a shrunken per-claim evaluation scope under a fresh grace budget
        (a smaller scope means fewer candidates, a smaller literal union,
        and therefore smaller cube estimates, so space pressure shrinks
        with it); rung 3 drops query execution entirely (keyword and
        prior evidence only — cheap and bounded by construction, so it
        can exceed neither time nor space). Every rung still yields a
        verdict per claim.
        """
        faults.fire("checker.stage", "inference")
        em = self.config.em
        try:
            return self._infer(spaces, em, deadline, "full"), None
        except DeadlineExceeded:
            self.engine.stats.deadline_degraded += 1
        except BudgetExceeded:
            self.engine.stats.budget_degraded += 1
        budget = em.scope.max_evaluations_per_claim
        shrunken = replace(
            em,
            max_iterations=1,
            scope=replace(
                em.scope,
                max_evaluations_per_claim=(
                    min(budget, DEGRADED_SCOPE_BUDGET)
                    if budget is not None
                    else DEGRADED_SCOPE_BUDGET
                ),
            ),
        )
        try:
            grace = self._grace(deadline)
            return self._infer(spaces, shrunken, grace, "scope"), "scope"
        except DeadlineExceeded:
            self.engine.stats.deadline_exec_skipped += 1
        except BudgetExceeded:
            self.engine.stats.budget_exec_skipped += 1
        no_exec = replace(em, max_iterations=1, use_evaluations=False)
        return self._infer(spaces, no_exec, None, "no_exec"), "no_exec"

    def _infer(
        self,
        spaces: dict,
        em_config,
        deadline: Deadline | None,
        rung: str,
    ) -> InferenceResult:
        faults.fire("checker.rung", rung)
        if deadline is not None:
            deadline.check("inference")
        # The engine checks the deadline right before every physical cube
        # or query execution — the unbounded work inside an EM iteration —
        # and the space budget right before every materialization.
        self.engine.deadline = deadline
        self.engine.budget = self._budget_for(deadline)
        try:
            return query_and_learn(
                spaces, self.catalog, self.engine, em_config, deadline
            )
        finally:
            self.engine.deadline = None
            self.engine.budget = None

    def _budget_for(self, deadline: Deadline | None) -> ResourceBudget | None:
        """The config's space limits wrapped around the active deadline.

        None when no space limit is configured: the engine then skips all
        budget guards (deadline checks still run off ``engine.deadline``).
        """
        config = self.config
        if (
            config.max_rows_materialized is None
            and config.max_cube_cells is None
            and config.max_candidates is None
        ):
            return None
        return ResourceBudget(
            deadline=deadline,
            max_rows=config.max_rows_materialized,
            max_cube_cells=config.max_cube_cells,
            max_candidates=config.max_candidates,
        )

    @staticmethod
    def _grace(deadline: Deadline | None) -> Deadline | None:
        """A fresh, smaller budget for a degraded retry (the original is
        spent; retrying against it would fail instantly)."""
        if deadline is None:
            return None
        return Deadline(max(deadline.budget_seconds * _GRACE_SHARE, 0.05))

    def _finish(
        self,
        document: Document,
        claims: list[Claim],
        verdicts: list[ClaimVerdict],
        inference: InferenceResult,
        stats_before: EngineStats,
        started: float,
    ) -> CheckReport:
        return CheckReport(
            document=document,
            claims=claims,
            verdicts=verdicts,
            inference=inference,
            engine_stats=self.engine.stats.diff(stats_before),
            total_seconds=time.perf_counter() - started,
        )
