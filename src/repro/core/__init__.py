"""The AggChecker: verify text summaries of relational data sets.

Public entry point::

    from repro.core import AggChecker

    checker = AggChecker(database)
    report = checker.check_html(html_text)
    for verdict in report.verdicts:
        print(verdict.claim, verdict.status)
"""

from repro.core.checker import AggChecker, CheckReport, claim_fingerprint
from repro.core.config import AggCheckerConfig
from repro.core.interactive import InteractiveSession, Resolution
from repro.core.verdict import ClaimVerdict, VerdictStatus, render_markup

__all__ = [
    "AggChecker",
    "AggCheckerConfig",
    "CheckReport",
    "claim_fingerprint",
    "ClaimVerdict",
    "InteractiveSession",
    "Resolution",
    "VerdictStatus",
    "render_markup",
]
