"""Claim verdicts and text markup (the "spell checker" output).

A claim is tentatively verified when the most likely query's result rounds
to the claimed value, and marked erroneous otherwise (paper Section 5.1:
"the system verifies the claim according to the query with the highest
probability"). The correctness probability — mass of matching candidates —
drives the markup intensity, mirroring Figure 3(a).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.db.query import SimpleAggregateQuery
from repro.db.sql import describe_query
from repro.db.values import Value
from repro.model.probability import ClaimDistribution
from repro.nlp.numbers import rounds_to
from repro.text.claims import Claim


class VerdictStatus(enum.Enum):
    VERIFIED = "verified"
    ERRONEOUS = "erroneous"
    UNRESOLVED = "unresolved"
    #: The claim could not be checked within its execution deadline (the
    #: degradation ladder's last rung, see ``AggChecker._check``).
    UNVERIFIABLE = "unverifiable"

    @property
    def flagged(self) -> bool:
        """Whether the claim is marked up as (probably) wrong."""
        return self is not VerdictStatus.VERIFIED


@dataclass
class ClaimVerdict:
    """Tentative verification result for one claim."""

    claim: Claim
    status: VerdictStatus
    top_query: SimpleAggregateQuery | None
    top_result: Value
    probability_correct: float
    #: None only for UNVERIFIABLE verdicts (inference never ran).
    distribution: ClaimDistribution | None
    #: How the result was degraded under deadline pressure: None (full
    #: inference), "scope" (shrunken evaluation budget), "no_exec"
    #: (query execution skipped), or "timeout" (unverifiable).
    degraded: str | None = None

    @property
    def hover_text(self) -> str:
        """Natural-language description of the top query (Figure 3(b))."""
        if self.top_query is None:
            return "no query candidate found"
        result = self.top_result
        rendered = "NULL" if result is None else f"{result:g}"
        return f"{describe_query(self.top_query)} = {rendered}"


def make_verdict(
    claim: Claim,
    distribution: ClaimDistribution,
    degraded: str | None = None,
) -> ClaimVerdict:
    """Derive the tentative verdict from a claim's query distribution.

    Works position-first: only the single most likely candidate is
    materialized into a query object — the rest of the (factorized) space
    is never touched. ``degraded`` tags verdicts produced under deadline
    pressure (see the checker's degradation ladder).
    """
    position = distribution.top_position()
    if position is None:
        return ClaimVerdict(
            claim, VerdictStatus.UNRESOLVED, None, None, 0.0, distribution,
            degraded,
        )
    top_query = distribution.space.query_at(position)
    top_result = distribution.result_at(position)
    probability_correct = distribution.probability_correct()
    if distribution.outcome is None or not distribution.outcome.has_results():
        # Without evaluations there is nothing to compare against.
        return ClaimVerdict(
            claim,
            VerdictStatus.UNRESOLVED,
            top_query,
            None,
            probability_correct,
            distribution,
            degraded,
        )
    status = (
        VerdictStatus.VERIFIED
        if rounds_to(top_result, claim.claimed_value)
        else VerdictStatus.ERRONEOUS
    )
    return ClaimVerdict(
        claim, status, top_query, top_result, probability_correct,
        distribution, degraded,
    )


def unverifiable_verdict(claim: Claim) -> ClaimVerdict:
    """The timed-out verdict: inference never ran, nothing is known.

    UNVERIFIABLE is flagged (like UNRESOLVED): surfacing "we could not
    check this" beats silently passing a claim through.
    """
    return ClaimVerdict(
        claim, VerdictStatus.UNVERIFIABLE, None, None, 0.0, None, "timeout"
    )


def render_markup(verdicts: list[ClaimVerdict]) -> str:
    """Plain-text markup: each claim's sentence with the claimed value
    bracketed as ``[OK ...]``, ``[ERR ... -> actual]``, or ``[? ...]``."""
    lines = []
    for verdict in verdicts:
        value = verdict.claim.mention.text
        if verdict.status is VerdictStatus.VERIFIED:
            marker = f"[OK {value}]"
        elif verdict.status is VerdictStatus.ERRONEOUS:
            actual = verdict.top_result
            rendered = "NULL" if actual is None else f"{actual:g}"
            marker = f"[ERR {value} -> {rendered}]"
        else:
            marker = f"[? {value}]"
        sentence = verdict.claim.sentence.text
        lines.append(f"{marker} {sentence}")
    return "\n".join(lines)
