"""Cooperative wall-clock deadlines for claim verification.

The pipeline has no preemption: a deadline is a budget object checked at
stage boundaries (matching, candidate construction, each EM iteration,
and — the expensive part — immediately before every physical cube or
query execution in the engine). Exceeding the budget raises
:class:`~repro.errors.DeadlineExceeded`, which the checker converts into
a degraded verdict instead of an error (see ``AggChecker._check`` and
ARCHITECTURE.md, "Failure domains & degradation ladder").

A ``Deadline`` is cheap to check (one ``perf_counter`` read) and carries
its own start time, so nested consumers (engine inside EM inside the
checker) all count against one shared budget.

Deadlines govern *time* only. :class:`repro.budget.ResourceBudget` wraps
a deadline together with space limits (max rows materialized, max cube
cells, max candidates) and is what the checker installs on the engine;
``Deadline`` remains the standalone wall-clock primitive.
"""

from __future__ import annotations

import time

from repro.errors import DeadlineExceeded


class Deadline:
    """A wall-clock budget that starts ticking at construction."""

    __slots__ = ("budget_seconds", "_expires_at")

    def __init__(self, budget_seconds: float) -> None:
        if budget_seconds <= 0:
            raise ValueError(
                f"budget_seconds must be > 0, got {budget_seconds}"
            )
        self.budget_seconds = budget_seconds
        self._expires_at = time.perf_counter() + budget_seconds

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires_at - time.perf_counter()

    def expired(self) -> bool:
        return time.perf_counter() >= self._expires_at

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` tagged with ``stage`` if spent."""
        if self.expired():
            raise DeadlineExceeded(stage, self.budget_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Deadline(budget={self.budget_seconds}, "
            f"remaining={self.remaining():.3f})"
        )
