"""Optional third-party dependencies, imported once.

NumPy is optional at two very different depths:

- The columnar engine, cell-gather, and CSR matching kernels ship
  pure-Python fallbacks (``repro.db.columnar``, ``repro.db.gather``,
  ``repro.ir.index``/``search`` each hold their own ``_np`` binding so
  tests can shim them independently) — those paths *work* without NumPy,
  just slower.
- The probabilistic model (candidate spaces, EM, priors, scope/refine) is
  built on ndarray math with no fallback; without NumPy it fails fast via
  :func:`require_numpy` with an actionable error instead of an
  ``ImportError`` at import time. This keeps the package importable in a
  NumPy-free environment (the CI matrix runs one) so the fallback kernels
  above are exercised for real.
"""

from __future__ import annotations

from repro.errors import MissingDependencyError

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI job
    np = None  # type: ignore[assignment]


def require_numpy(feature: str) -> None:
    """Raise a clear error when ``feature`` is used without NumPy."""
    if np is None:
        raise MissingDependencyError(
            f"{feature} requires NumPy, which is not installed. "
            "Install numpy to run the probabilistic verification model; "
            "the columnar/gather/CSR kernels alone work without it."
        )
