"""Heuristic dependency tree exposing ``TreeDistance`` (paper Algorithm 2).

The paper uses a Stanford dependency parse only through one signal: the
tree distance between a claimed value and surrounding keywords, used to
decide which keywords belong to which claim when a sentence contains
several claims. We reproduce that signal with a deterministic clause-chunk
tree:

- the sentence splits into *chunks* at clause punctuation (commas,
  semicolons, dashes) and coordinating conjunctions;
- each chunk's *head* is its last content word (for predicate-nominal
  clauses like "one was for gambling" this picks "gambling", matching the
  paper's worked example where distance(one, gambling) = 1);
- tokens attach to their chunk head; chunk heads chain left-to-right
  (mirroring conj edges between clause roots).

For the paper's Example 3 this yields distance 1 from 'one' to 'gambling'
and distance 2 from 'three' to 'gambling', exactly as reported.
"""

from __future__ import annotations

from repro.nlp.tokens import Token

#: Coordinating words that separate clauses for chunking purposes.
_CLAUSE_BREAKERS = frozenset({"and", "but", "or", "while", "whereas", "though"})

#: Words that never serve as a chunk head.
_NON_HEAD_WORDS = frozenset(
    """
    a an and are as at be but by for if in into is it no not of on or such
    that the their then there these they this to was will with were been
    being have has had do does did than so its only just about there
    """.split()
)


class DependencyTree:
    """Token-level tree supporting pairwise distance queries."""

    def __init__(self, tokens: list[Token], chunk_of: list[int], heads: list[int]):
        self.tokens = tokens
        self._chunk_of = chunk_of  # token index -> chunk number
        self._heads = heads  # chunk number -> head token index

    def chunk_of(self, token_index: int) -> int:
        return self._chunk_of[token_index]

    def is_head(self, token_index: int) -> bool:
        chunk = self._chunk_of[token_index]
        return self._heads[chunk] == token_index

    def distance(self, left: int, right: int) -> int:
        """Number of tree edges between two tokens."""
        if left == right:
            return 0
        left_chunk = self._chunk_of[left]
        right_chunk = self._chunk_of[right]
        if left_chunk == right_chunk:
            if self.is_head(left) or self.is_head(right):
                return 1
            return 2
        hops = abs(left_chunk - right_chunk)  # chain between chunk heads
        distance = hops
        if not self.is_head(left):
            distance += 1
        if not self.is_head(right):
            distance += 1
        return distance


def build_dependency_tree(tokens: list[Token]) -> DependencyTree:
    """Construct the heuristic tree for one tokenized sentence."""
    chunk_of: list[int] = []
    chunk_members: list[list[int]] = [[]]
    for token in tokens:
        breaks = token.is_punctuation or token.lower in _CLAUSE_BREAKERS
        if breaks and chunk_members[-1]:
            chunk_members.append([])
        chunk_of.append(len(chunk_members) - 1)
        if not breaks:
            chunk_members[-1].append(token.index)
    if not chunk_members[-1]:
        chunk_members.pop()
    if not chunk_members:
        chunk_members = [[token.index for token in tokens]]
    # Clamp trailing tokens whose (empty) chunk was popped.
    last_chunk = len(chunk_members) - 1
    dense = [min(chunk, last_chunk) for chunk in chunk_of]
    heads = [_chunk_head(tokens, members) for members in chunk_members]
    return DependencyTree(tokens, dense, heads)


def _chunk_head(tokens: list[Token], members: list[int]) -> int:
    """Last content word of the chunk; falls back to the last member."""
    content = [
        i
        for i in members
        if tokens[i].is_word and tokens[i].lower not in _NON_HEAD_WORDS
    ]
    if content:
        return content[-1]
    return members[-1] if members else 0
