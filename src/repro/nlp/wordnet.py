"""Curated synonym lexicon (WordNet substitute).

The paper uses WordNet to widen the keyword sets of query fragments
(Section 4.2) so that claim wording ("pay") can reach database identifiers
("salary"). Offline, we ship a curated lexicon of synonym groups targeted
at the domains of the test corpus (sports, politics, surveys, economics)
plus general aggregation vocabulary. The ablation "+ Synonyms" in Table 5 /
Figure 11 toggles exactly this expansion.
"""

from __future__ import annotations

_SYNONYM_GROUPS: list[set[str]] = [
    # Aggregation vocabulary
    {"count", "number", "total", "amount", "tally", "quantity"},
    {"average", "mean", "typical", "typically"},
    {"sum", "total", "combined", "overall", "aggregate"},
    {"minimum", "lowest", "smallest", "least", "fewest"},
    {"maximum", "highest", "largest", "most", "biggest", "top"},
    {"percentage", "percent", "share", "proportion", "fraction", "rate"},
    {"distinct", "different", "unique", "separate"},
    # People and roles
    {"respondent", "participant", "answerer", "surveyee"},
    {"developer", "programmer", "coder", "engineer"},
    {"player", "athlete", "sportsman"},
    {"candidate", "contender", "nominee", "hopeful"},
    {"politician", "lawmaker", "legislator"},
    {"president", "leader", "executive"},
    {"employee", "worker", "staffer"},
    {"customer", "client", "buyer", "shopper"},
    {"voter", "elector", "constituent"},
    {"artist", "musician", "rapper", "performer"},
    {"author", "writer", "journalist"},
    {"passenger", "flier", "traveler", "rider"},
    {"student", "pupil", "learner"},
    {"speaker", "orator", "presenter"},
    # Actions and events
    {"ban", "suspension", "punishment", "penalty", "sanction"},
    {"suspended", "banned", "punished", "sanctioned"},
    {"win", "victory", "triumph"},
    {"loss", "defeat", "losing"},
    {"donate", "give", "contribute"},
    {"donation", "contribution", "gift", "funding"},
    {"earn", "make", "receive", "get"},
    {"mention", "reference", "namecheck", "citation"},
    {"speech", "address", "talk", "remarks", "commencement"},
    {"vote", "ballot", "poll"},
    {"recline", "lean", "tilt"},
    {"abuse", "violation", "misuse", "offense"},
    {"gamble", "gambling", "betting", "wager"},
    {"crash", "accident", "collision", "wreck"},
    {"death", "fatality", "casualty"},
    {"birth", "delivery", "newborn"},
    # Quantities and money
    {"salary", "pay", "wage", "earnings", "income", "compensation"},
    {"money", "dollars", "funds", "cash"},
    {"price", "cost", "fee", "charge"},
    {"revenue", "sales", "turnover"},
    {"budget", "spending", "expenditure"},
    {"population", "inhabitants", "residents", "people"},
    {"attendance", "crowd", "turnout"},
    {"rating", "score", "grade", "mark"},
    {"goal", "score", "point"},
    {"age", "years", "old"},
    {"experience", "tenure", "seniority"},
    {"duration", "length", "time"},
    {"distance", "length", "mileage"},
    {"temperature", "heat", "warmth"},
    {"rainfall", "precipitation", "rain"},
    # Entities and places
    {"team", "club", "franchise", "squad"},
    {"game", "match", "contest", "fixture"},
    {"season", "year", "campaign"},
    {"country", "nation", "state"},
    {"city", "town", "municipality"},
    {"company", "firm", "business", "employer"},
    {"league", "division", "conference"},
    {"movie", "film", "picture"},
    {"song", "track", "tune", "lyric"},
    {"book", "title", "volume"},
    {"airline", "carrier"},
    {"hospital", "clinic", "infirmary"},
    {"school", "college", "university"},
    {"party", "affiliation", "side"},
    {"region", "area", "zone", "district"},
    {"category", "type", "kind", "class", "group"},
    {"gender", "sex"},
    {"education", "schooling", "training", "degree"},
    {"occupation", "job", "profession", "role"},
    {"language", "tongue"},
    {"survey", "poll", "questionnaire", "study"},
    {"airplane", "plane", "aircraft", "flight"},
    {"etiquette", "manners", "politeness"},
    {"database", "data", "dataset", "records"},
    {"lifetime", "indefinite", "permanent", "forever"},
    {"female", "woman", "women"},
    {"male", "man", "men"},
    {"remote", "distributed", "telecommute"},
    {"senator", "senate"},
    {"representative", "congressman", "house"},
]

_LOOKUP: dict[str, set[str]] = {}
for _group in _SYNONYM_GROUPS:
    for _word in _group:
        _LOOKUP.setdefault(_word, set()).update(_group - {_word})


#: Memoized lookups (word -> sorted synonym list). The lexicon is static
#: and the singularization fallback is pure, so the resolved synonyms for
#: each word can be cached for the life of the process; claim-context
#: extraction sits in the per-claim hot loop and asks for the same words
#: constantly. The list is sorted so iteration order (and therefore the
#: insertion order of downstream keyword-weight dicts) is independent of
#: the process hash seed.
_RESOLVED: dict[str, list[str]] = {}


def synonym_list(word: str) -> list[str]:
    """Sorted synonyms of a word (shared cached list — do not mutate).

    Falls back to simple singularization so inflected text forms ("bans",
    "salaries") reach the lexicon's base entries.
    """
    lower = word.lower()
    cached = _RESOLVED.get(lower)
    if cached is None:
        found = _LOOKUP.get(lower)
        if found is None:
            for base in _singular_forms(lower):
                found = _LOOKUP.get(base)
                if found is not None:
                    break
        cached = _RESOLVED[lower] = sorted(found or ())
    return cached


def synonyms(word: str) -> set[str]:
    """Synonyms of a word (empty set if the lexicon does not know it)."""
    return set(synonym_list(word))


def _singular_forms(word: str) -> list[str]:
    forms = []
    if word.endswith("ies") and len(word) > 4:
        forms.append(word[:-3] + "y")
    if word.endswith("es") and len(word) > 3:
        forms.append(word[:-2])
    if word.endswith("s") and len(word) > 2:
        forms.append(word[:-1])
    return forms


def expand_keywords(words: set[str]) -> set[str]:
    """Words plus all their synonyms."""
    expanded = set(words)
    for word in words:
        expanded |= synonyms(word)
    return expanded


def vocabulary() -> set[str]:
    """All words known to the lexicon (used by identifier decomposition)."""
    return set(_LOOKUP)
