"""Numeral understanding and the paper's admissible-rounding check.

Claims state *rounded* query results (paper Definition 1): a claim is
correct if some rounding of the true result to ``k`` significant digits
equals the claimed value, for any ``k``. :func:`rounds_to` implements that
predicate. :func:`extract_number_mentions` finds claimed values in text:
digit strings ("63", "1,234", "3.5"), percentages ("13%", "13 percent"),
spelled-out numbers ("four", "twenty-three"), and magnitude suffixes
("1.2 million").
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.nlp.tokens import Token

_UNITS = {
    "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10, "eleven": 11,
    "twelve": 12, "thirteen": 13, "fourteen": 14, "fifteen": 15,
    "sixteen": 16, "seventeen": 17, "eighteen": 18, "nineteen": 19,
}
_TENS = {
    "twenty": 20, "thirty": 30, "forty": 40, "fifty": 50,
    "sixty": 60, "seventy": 70, "eighty": 80, "ninety": 90,
}
_SCALES = {"hundred": 100, "thousand": 1_000, "million": 1_000_000,
           "billion": 1_000_000_000}
_PERCENT_WORDS = {"percent", "percentage", "pct"}
_ORDINAL_WORDS = (
    "first", "second", "third", "fourth", "fifth", "sixth", "seventh",
    "eighth", "ninth", "tenth",
)
_ORDINAL_SUFFIX_RE = re.compile(r"^\d+(st|nd|rd|th)$", re.IGNORECASE)
_DIGIT_RE = re.compile(r"^\d[\d,]*(?:\.\d+)?%?$")


@dataclass(frozen=True)
class NumberMention:
    """A number found in text that may be a claimed query result."""

    value: float
    token_indexes: tuple[int, ...]
    text: str
    is_percentage: bool = False
    is_ordinal: bool = False
    is_year_like: bool = False
    is_spelled: bool = False

    @property
    def first_index(self) -> int:
        return self.token_indexes[0]


def extract_number_mentions(tokens: list[Token]) -> list[NumberMention]:
    """Find all number mentions in a tokenized sentence."""
    mentions: list[NumberMention] = []
    i = 0
    while i < len(tokens):
        mention, consumed = _match_at(tokens, i)
        if mention is not None:
            mentions.append(mention)
            i += consumed
        else:
            i += 1
    return mentions


#: Memo for :func:`rounds_to`: the check walks up to ``max_digits``
#: roundings per call and is invoked once per distinct evaluation result
#: per claim — results (counts, sums) and claimed values repeat heavily
#: across claims, documents, and EM iterations of one database.
_ROUNDS_MEMO: dict[tuple, bool] = {}
_ROUNDS_MEMO_LIMIT = 1 << 17


def rounds_to(result: float | int | None, claimed: float, max_digits: int = 12) -> bool:
    """True if ``result`` rounded to *some* number of significant digits
    equals ``claimed`` (the paper's admissible rounding)."""
    if result is None:
        return False
    if not isinstance(result, (int, float)) or isinstance(result, bool):
        return False
    if math.isnan(result) or math.isinf(result):
        return False
    key = (result, claimed, max_digits)
    cached = _ROUNDS_MEMO.get(key)
    if cached is None:
        if len(_ROUNDS_MEMO) >= _ROUNDS_MEMO_LIMIT:
            _ROUNDS_MEMO.clear()
        cached = _ROUNDS_MEMO[key] = _rounds_to_uncached(
            result, claimed, max_digits
        )
    return cached


def _rounds_to_uncached(
    result: float | int, claimed: float, max_digits: int
) -> bool:
    if _close(result, claimed):
        return True
    for digits in range(1, max_digits + 1):
        if _close(round_to_significant(result, digits), claimed):
            return True
    return False


def round_to_significant(value: float, digits: int) -> float:
    """Round to ``digits`` significant digits (half away from zero at the
    margin handled by float rounding; adequate for claim checking)."""
    if value == 0:
        return 0.0
    if digits < 1:
        raise ValueError("significant digits must be >= 1")
    magnitude = math.floor(math.log10(abs(value)))
    factor = digits - 1 - magnitude
    return round(value, int(factor))


def _close(left: float, right: float) -> bool:
    return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9)


def _match_at(tokens: list[Token], i: int) -> tuple[NumberMention | None, int]:
    token = tokens[i]
    lower = token.lower
    if _ORDINAL_SUFFIX_RE.match(token.text) or lower in _ORDINAL_WORDS:
        return (
            NumberMention(
                value=_ordinal_value(lower),
                token_indexes=(i,),
                text=token.text,
                is_ordinal=True,
            ),
            1,
        )
    if _DIGIT_RE.match(token.text):
        return _match_digits(tokens, i)
    if lower in _UNITS or lower in _TENS:
        return _match_spelled(tokens, i)
    return None, 1


def _match_digits(tokens: list[Token], i: int) -> tuple[NumberMention, int]:
    token = tokens[i]
    text = token.text
    is_percentage = text.endswith("%")
    digits = text.rstrip("%").replace(",", "")
    value = float(digits)
    consumed = 1
    indexes = [i]
    # Magnitude suffix: "1.2 million".
    if i + 1 < len(tokens) and tokens[i + 1].lower in _SCALES:
        value *= _SCALES[tokens[i + 1].lower]
        indexes.append(i + 1)
        consumed += 1
    # Percent word: "13 percent".
    if (
        not is_percentage
        and i + consumed < len(tokens)
        and tokens[i + consumed].lower in _PERCENT_WORDS
    ):
        is_percentage = True
        indexes.append(i + consumed)
        consumed += 1
    year_like = (
        not is_percentage
        and "," not in text
        and "." not in text
        and len(digits) == 4
        and 1800 <= value <= 2100
    )
    return (
        NumberMention(
            value=value,
            token_indexes=tuple(indexes),
            text=" ".join(tokens[j].text for j in indexes),
            is_percentage=is_percentage,
            is_year_like=year_like,
        ),
        consumed,
    )


def _match_spelled(tokens: list[Token], i: int) -> tuple[NumberMention, int]:
    value = 0.0
    current = 0.0
    consumed = 0
    indexes = []
    j = i
    while j < len(tokens):
        lower = tokens[j].lower
        if lower in _UNITS:
            current += _UNITS[lower]
        elif lower in _TENS:
            current += _TENS[lower]
        elif lower == "hundred" and current:
            current *= 100
        elif lower in _SCALES and lower != "hundred" and (current or value):
            value += (current or 1) * _SCALES[lower]
            current = 0.0
        elif (
            lower in ("and", "-")
            and consumed
            and j + 1 < len(tokens)
            and (tokens[j + 1].lower in _UNITS or tokens[j + 1].lower in _TENS)
        ):
            # Connectors inside spelled numbers: "hundred and five",
            # "twenty-three".
            j += 1
            continue
        else:
            break
        indexes.append(j)
        consumed = j - i + 1
        j += 1
    total = value + current
    is_percentage = (
        j < len(tokens) and tokens[j].lower in _PERCENT_WORDS
    )
    if is_percentage:
        indexes.append(j)
        consumed += 1
    return (
        NumberMention(
            value=total,
            token_indexes=tuple(indexes),
            text=" ".join(tokens[k].text for k in indexes),
            is_percentage=is_percentage,
            is_spelled=True,
        ),
        max(consumed, 1),
    )


def _ordinal_value(lower: str) -> float:
    if lower in _ORDINAL_WORDS:
        return float(_ORDINAL_WORDS.index(lower) + 1)
    match = re.match(r"^(\d+)", lower)
    return float(match.group(1)) if match else 0.0
