"""Sentence splitting with abbreviation handling."""

from __future__ import annotations

import re

#: Abbreviations after which a period does not end a sentence.
_ABBREVIATIONS = frozenset(
    """
    mr mrs ms dr prof st no vs etc e.g i.e jr sr inc corp co dept est
    jan feb mar apr jun jul aug sep sept oct nov dec fig sec approx
    """.split()
)

_BOUNDARY_RE = re.compile(r"([.!?])\s+(?=[\"'(]?[A-Z0-9])")


def split_sentences(text: str) -> list[str]:
    """Split a paragraph into sentences.

    Protects decimal numbers ("3.5 million"), common abbreviations
    ("Mr. Smith"), and single-letter initials ("J. Doe").
    """
    text = " ".join(text.split())
    if not text:
        return []
    sentences: list[str] = []
    start = 0
    for match in _BOUNDARY_RE.finditer(text):
        end = match.end(1)
        candidate = text[start:end].strip()
        if _ends_with_abbreviation(candidate):
            continue
        if candidate:
            sentences.append(candidate)
        start = match.end()
    tail = text[start:].strip()
    if tail:
        sentences.append(tail)
    return sentences


def _ends_with_abbreviation(sentence: str) -> bool:
    if not sentence.endswith("."):
        return False
    last_word = sentence[:-1].rsplit(None, 1)[-1] if sentence[:-1].split() else ""
    last_word = last_word.lower().lstrip("(\"'")
    if last_word in _ABBREVIATIONS:
        return True
    # Single-letter initials: "J." in "J. Doe".
    return len(last_word) == 1 and last_word.isalpha()
