"""Identifier decomposition for column and table names.

Column names are often concatenations of words and abbreviations
("nflsuspensions", "YearsExperience", "avg_salary"). The paper decomposes
names into all possible substrings and compares against a dictionary
(Section 4.2); we implement the standard pipeline — split on case/digit/
separator boundaries, then greedy longest-match dictionary splitting of any
remaining concatenations.
"""

from __future__ import annotations

import re

from repro.nlp.wordnet import vocabulary

#: Common words worth recognizing inside identifiers, beyond the synonym
#: lexicon (short function words excluded to avoid spurious splits).
_EXTRA_WORDS = frozenset(
    """
    year years games game name names team teams category county state
    result results status value values date month day week hour rank
    level code type group region gender income salary total count
    percent share vote votes seat seats win wins loss losses home away
    goals points runs hits spend spent raised fund funds self taught
    online formal degree years exp experience remote office commit
    commits answer answers question questions tag tags repo repos
    suspension suspensions nfl fifa senate house district primary
    recipient donor amount party election speech speeches mention
    mentions lyric lyrics artist artists song songs album albums
    respondent respondents country countries language languages
    occupation education employment dev stack overflow survey surveys
    flight flights airline airlines seat passenger passengers
    city cities price prices sale sales store stores product products
    population area density capital
    """.split()
)

_BOUNDARY_RE = re.compile(
    r"""
    [A-Z]+(?=[A-Z][a-z])   # acronym followed by word: XMLParser -> XML
    | [A-Z]?[a-z]+         # words: Parser, parser
    | [A-Z]+               # trailing acronyms
    | \d+                  # digit runs
    """,
    re.VERBOSE,
)


def _dictionary() -> set[str]:
    return vocabulary() | _EXTRA_WORDS


def decompose_identifier(name: str, min_part: int = 2) -> list[str]:
    """Split an identifier into lowercase word parts.

    "YearsExperience" -> ["years", "experience"];
    "nflsuspensions"  -> ["nfl", "suspensions"];
    "avg_salary"      -> ["avg", "salary"].
    """
    parts: list[str] = []
    for chunk in re.split(r"[\s_\-./]+", name):
        if not chunk:
            continue
        for piece in _BOUNDARY_RE.findall(chunk):
            parts.extend(_split_concatenation(piece.lower(), min_part))
    return [part for part in parts if part]


def abbreviation_expansions(token: str, limit: int = 3) -> list[str]:
    """Dictionary words that extend an abbreviated token.

    Data sets often contain abbreviations ("indef" for "indefinite") that
    claim text never spells out; bridging them to dictionary words lets
    keyword matching connect the two (paper Section 1 lists this among the
    core challenges). Tokens shorter than 4 characters are too ambiguous.
    """
    token = token.lower()
    if len(token) < 4 or token.isdigit():
        return []
    expansions = [
        word
        for word in _dictionary()
        if word != token and word.startswith(token)
    ]
    expansions.sort(key=lambda word: (len(word), word))
    return expansions[:limit]


def _split_concatenation(word: str, min_part: int) -> list[str]:
    """Greedy longest-match dictionary split; unsplittable text kept whole."""
    if word.isdigit() or len(word) <= min_part:
        return [word]
    words = _dictionary()
    if word in words:
        return [word]
    result: list[str] = []
    rest = word
    while rest:
        match = None
        # Longest dictionary prefix of the remaining text.
        for end in range(len(rest), min_part - 1, -1):
            if rest[:end] in words:
                match = rest[:end]
                break
        if match is None:
            # No split found: emit the whole remainder once.
            if result:
                result.append(rest)
            else:
                return [word]
            break
        result.append(match)
        rest = rest[len(match):]
    return result
