"""Tokenization that preserves punctuation (needed for clause chunking)."""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(
    r"""
    \d+(?:st|nd|rd|th)\b     # digit ordinals: 4th, 22nd
    | \d[\d,]*(?:\.\d+)?%?   # numbers: 1,234  3.5  13%
    | [A-Za-z]+(?:'[A-Za-z]+)?  # words and contractions
    | [,;:()\[\]–—-]  # clause punctuation kept as tokens
    | [.!?]                  # sentence punctuation
    """,
    re.VERBOSE | re.ASCII,
)

_PUNCTUATION = set(",;:()[]-–—.!?")


@dataclass(frozen=True)
class Token:
    """A token with its position in the sentence."""

    text: str
    index: int

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_punctuation(self) -> bool:
        return self.text in _PUNCTUATION

    @property
    def is_word(self) -> bool:
        # The tokenizer only emits ASCII tokens (re.ASCII above); a
        # first-character range check replaces a regex match in the
        # context-extraction hot loop.
        first = self.text[:1]
        return "A" <= first <= "Z" or "a" <= first <= "z"

    @property
    def is_number_like(self) -> bool:
        first = self.text[:1]
        return "0" <= first <= "9"


def tokenize_with_punct(text: str) -> list[Token]:
    """Tokenize a sentence, keeping punctuation as separate tokens."""
    return [
        Token(match.group(), i)
        for i, match in enumerate(_TOKEN_RE.finditer(text))
    ]
