"""Tokenization that preserves punctuation (needed for clause chunking)."""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(
    r"""
    \d+(?:st|nd|rd|th)\b     # digit ordinals: 4th, 22nd
    | \d[\d,]*(?:\.\d+)?%?   # numbers: 1,234  3.5  13%
    | [A-Za-z]+(?:'[A-Za-z]+)?  # words and contractions
    | [,;:()\[\]–—-]  # clause punctuation kept as tokens
    | [.!?]                  # sentence punctuation
    """,
    re.VERBOSE,
)

_PUNCTUATION = set(",;:()[]-–—.!?")


@dataclass(frozen=True)
class Token:
    """A token with its position in the sentence."""

    text: str
    index: int

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_punctuation(self) -> bool:
        return self.text in _PUNCTUATION

    @property
    def is_word(self) -> bool:
        return bool(re.match(r"[A-Za-z]", self.text))

    @property
    def is_number_like(self) -> bool:
        return bool(re.match(r"\d", self.text))


def tokenize_with_punct(text: str) -> list[Token]:
    """Tokenize a sentence, keeping punctuation as separate tokens."""
    return [
        Token(match.group(), i)
        for i, match in enumerate(_TOKEN_RE.finditer(text))
    ]
