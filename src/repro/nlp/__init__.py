"""Lightweight NLP toolkit (Stanford CoreNLP + WordNet substitute).

Provides exactly the capabilities AggChecker consumes:

- word/punctuation tokenization (:mod:`repro.nlp.tokens`),
- sentence splitting (:mod:`repro.nlp.sentences`),
- numeral understanding — digits, spelled-out numbers, percentages,
  magnitudes — plus the paper's admissible-rounding check
  (:mod:`repro.nlp.numbers`),
- a deterministic heuristic dependency tree exposing ``TreeDistance``
  (:mod:`repro.nlp.dependency`),
- a curated synonym lexicon (:mod:`repro.nlp.wordnet`),
- identifier decomposition for column names (:mod:`repro.nlp.decompose`).
"""

from repro.nlp.decompose import decompose_identifier
from repro.nlp.dependency import DependencyTree, build_dependency_tree
from repro.nlp.numbers import (
    NumberMention,
    extract_number_mentions,
    round_to_significant,
    rounds_to,
)
from repro.nlp.sentences import split_sentences
from repro.nlp.tokens import Token, tokenize_with_punct
from repro.nlp.wordnet import synonyms

__all__ = [
    "DependencyTree",
    "NumberMention",
    "Token",
    "build_dependency_tree",
    "decompose_identifier",
    "extract_number_mentions",
    "round_to_significant",
    "rounds_to",
    "split_sentences",
    "synonyms",
    "tokenize_with_punct",
]
