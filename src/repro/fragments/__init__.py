"""Query fragments: the building blocks of candidate queries.

A fragment is an aggregation function, an aggregation column, or a unary
equality predicate (paper Section 4.1). Fragments carry keyword sets
derived from identifiers, values, synonyms, and data dictionaries
(Section 4.2), and are indexed in the IR engine for retrieval by claim
keywords.
"""

from repro.fragments.extract import ExtractionConfig, extract_fragments
from repro.fragments.fragments import (
    ColumnFragment,
    FragmentCatalog,
    FunctionFragment,
    PredicateFragment,
    QueryFragment,
)
from repro.fragments.indexer import FragmentIndex

__all__ = [
    "ColumnFragment",
    "ExtractionConfig",
    "FragmentCatalog",
    "FragmentIndex",
    "FunctionFragment",
    "PredicateFragment",
    "QueryFragment",
    "extract_fragments",
]
