"""IR indexes over the fragment catalog.

Fragments are indexed per category — functions, aggregation columns,
predicates — because the probabilistic model normalizes relevance scores
within each category (paper Section 5.3: ``Pr(S|Q)`` factorizes into
function / column / restriction components).

Two retrieval paths share one :class:`FragmentIndex`:

- :meth:`FragmentIndex.retrieve` — the per-claim reference oracle over the
  dict-based inverted indexes (one analysis pass feeds all three category
  searches);
- :meth:`CompiledFragmentIndex.retrieve_batch` — the batched front end:
  the three category indexes compiled to CSR postings over one shared
  term vocabulary, scoring every claim of a document in a single
  vectorized pass per category. Compilation happens once per database
  (cached on the index, which checker pools keep per database) and its
  results are float-for-float identical to the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fragments.fragments import (
    ColumnFragment,
    FragmentCatalog,
    FunctionFragment,
    PredicateFragment,
)
from repro.ir.analysis import Analyzer
from repro.ir.index import CompiledPostings, InvertedIndex, TermVocabulary
from repro.ir.search import search_compiled_batch, search_terms


@dataclass
class RelevanceScores:
    """Per-claim relevance scores for retrieved fragments (unretrieved
    fragments are absent and treated as zero-relevance by the model).

    Alongside the fragment->score dicts, a batch-retrieval result carries
    catalog-aligned id arrays (``function_ids`` etc.: the catalog position
    of each dict entry, in dict order). Score-value arrays are derived
    lazily either way, so the candidate builder consumes arrays without
    per-fragment dict iteration regardless of which path produced them.
    """

    functions: dict[FunctionFragment, float]
    columns: dict[ColumnFragment, float]
    predicates: dict[PredicateFragment, float]
    #: catalog positions aligned with dict order (None on the oracle path)
    function_ids: list[int] | None = field(default=None, compare=False)
    column_ids: list[int] | None = field(default=None, compare=False)
    predicate_ids: list[int] | None = field(default=None, compare=False)
    _values: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def total_fragments(self) -> int:
        return len(self.functions) + len(self.columns) + len(self.predicates)

    def value_arrays(self) -> tuple[list[float], list[float], list[float]]:
        """(function, column, predicate) score values in dict order, cached.

        ``predicates`` may be mutated by document-level pooling after
        retrieval, so its values are only cached once consumers start
        reading them (pooling happens before candidate construction).
        """
        if self._values is None:
            self._values = (
                list(self.functions.values()),
                list(self.columns.values()),
                list(self.predicates.values()),
            )
        return self._values


class FragmentIndex:
    """Three per-category inverted indexes over one fragment catalog."""

    def __init__(
        self, catalog: FragmentCatalog, analyzer: Analyzer | None = None
    ) -> None:
        self.catalog = catalog
        self.analyzer = analyzer or Analyzer()
        self._functions = InvertedIndex(self.analyzer)
        for fragment in catalog.functions:
            self._functions.add(fragment, tokens=list(fragment.keywords))
        self._columns = InvertedIndex(self.analyzer)
        for fragment in catalog.columns:
            self._columns.add(fragment, tokens=list(fragment.keywords))
        self._predicates = InvertedIndex(self.analyzer)
        for fragment in catalog.predicates:
            self._predicates.add(fragment, tokens=list(fragment.keywords))
        self._compiled: CompiledFragmentIndex | None = None

    def compiled(self) -> "CompiledFragmentIndex":
        """The array-backed form of this index, built once and cached.

        Checker pools hold one fragment index per database, so the
        compiled artifacts (shared vocabulary, CSR postings, idf/norm
        arrays) are reused by every document verified against it.
        """
        if self._compiled is None:
            self._compiled = CompiledFragmentIndex(self)
        return self._compiled

    def retrieve(
        self,
        weighted_keywords: dict[str, float],
        predicate_hits: int = 20,
        column_hits: int = 10,
    ) -> RelevanceScores:
        """Score fragments against one claim's weighted keyword context.

        ``predicate_hits`` is the paper's "# Hits" knob (Lucene hits per
        claim, Table 5 / Figure 13 left); ``column_hits`` is the
        "# aggregation columns" knob (Figure 13 right). All aggregation
        functions are always scored — there are only eight.

        The keyword context is analyzed once and the resulting weighted
        terms are shared by all three category searches (the analyzer is
        common to the three indexes, so per-index re-analysis was pure
        redundancy).
        """
        query = self.analyzer.analyze_weighted(weighted_keywords)
        # Every aggregation function is always in scope (only eight exist);
        # keywords merely modulate their scores.
        function_scores = {fragment: 0.0 for fragment in self.catalog.functions}
        function_scores.update(
            (hit.payload, hit.score)
            for hit in search_terms(self._functions, query, top_k=None)
        )
        column_scores = {
            hit.payload: hit.score
            for hit in search_terms(self._columns, query, top_k=column_hits)
        }
        # The '*' aggregation columns stay in scope even without keyword
        # support: Count(*) is the most common claim query.
        for fragment in self.catalog.columns:
            if fragment.is_star:
                column_scores.setdefault(fragment, 0.0)
        predicate_scores = {
            hit.payload: hit.score
            for hit in search_terms(self._predicates, query, top_k=predicate_hits)
        }
        return RelevanceScores(function_scores, column_scores, predicate_scores)


class CompiledFragmentIndex:
    """CSR-compiled category indexes sharing one term vocabulary.

    Fragment document ids are catalog positions (fragments are indexed in
    catalog order), so batch hits translate to fragments by list indexing
    and the id arrays on :class:`RelevanceScores` are catalog-aligned for
    free.
    """

    def __init__(self, index: FragmentIndex) -> None:
        self.catalog = index.catalog
        self.analyzer = index.analyzer
        self.vocab = TermVocabulary()
        # Two passes: intern every term of every category first so all
        # three CSR blocks address one complete vocabulary.
        for inverted in (index._functions, index._columns, index._predicates):
            for term in inverted._postings:
                self.vocab.intern(term)
        self.functions = CompiledPostings(index._functions, self.vocab)
        self.columns = CompiledPostings(index._columns, self.vocab)
        self.predicates = CompiledPostings(index._predicates, self.vocab)
        self.star_column_ids = [
            position
            for position, fragment in enumerate(self.catalog.columns)
            if fragment.is_star
        ]

    def retrieve_batch(
        self,
        contexts: list[dict[str, float]],
        predicate_hits: int = 20,
        column_hits: int = 10,
    ) -> list[RelevanceScores]:
        """Score every claim context of one document in one pass.

        Each context is analyzed once and resolved to shared term ids
        once; the three category scorers then run one vectorized
        gather/bincount pass each over all claims. Results are
        float-for-float and dict-order identical to calling
        :meth:`FragmentIndex.retrieve` per context.
        """
        queries = [
            self.vocab.resolve_query(self.analyzer.analyze_weighted(context))
            for context in contexts
        ]
        function_hits = search_compiled_batch(self.functions, queries, None)
        column_hits_lists = search_compiled_batch(
            self.columns, queries, column_hits
        )
        predicate_hits_lists = search_compiled_batch(
            self.predicates, queries, predicate_hits
        )

        catalog = self.catalog
        results: list[RelevanceScores] = []
        for claim_index in range(len(contexts)):
            function_scores = {
                fragment: 0.0 for fragment in catalog.functions
            }
            for doc_id, score in function_hits[claim_index]:
                function_scores[catalog.functions[doc_id]] = score
            # Function dict order is catalog order (all eight pre-seeded).
            function_ids = list(range(len(catalog.functions)))

            column_ids: list[int] = []
            column_scores: dict[ColumnFragment, float] = {}
            for doc_id, score in column_hits_lists[claim_index]:
                column_scores[catalog.columns[doc_id]] = score
                column_ids.append(doc_id)
            for doc_id in self.star_column_ids:
                fragment = catalog.columns[doc_id]
                if fragment not in column_scores:
                    column_scores[fragment] = 0.0
                    column_ids.append(doc_id)

            predicate_ids: list[int] = []
            predicate_scores: dict[PredicateFragment, float] = {}
            for doc_id, score in predicate_hits_lists[claim_index]:
                predicate_scores[catalog.predicates[doc_id]] = score
                predicate_ids.append(doc_id)

            results.append(
                RelevanceScores(
                    function_scores,
                    column_scores,
                    predicate_scores,
                    function_ids=function_ids,
                    column_ids=column_ids,
                    predicate_ids=predicate_ids,
                )
            )
        return results
