"""IR indexes over the fragment catalog.

Fragments are indexed per category — functions, aggregation columns,
predicates — because the probabilistic model normalizes relevance scores
within each category (paper Section 5.3: ``Pr(S|Q)`` factorizes into
function / column / restriction components).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fragments.fragments import (
    ColumnFragment,
    FragmentCatalog,
    FunctionFragment,
    PredicateFragment,
)
from repro.ir.analysis import Analyzer
from repro.ir.index import InvertedIndex
from repro.ir.search import search


@dataclass
class RelevanceScores:
    """Per-claim relevance scores for retrieved fragments (unretrieved
    fragments are absent and treated as zero-relevance by the model)."""

    functions: dict[FunctionFragment, float]
    columns: dict[ColumnFragment, float]
    predicates: dict[PredicateFragment, float]

    def total_fragments(self) -> int:
        return len(self.functions) + len(self.columns) + len(self.predicates)


class FragmentIndex:
    """Three per-category inverted indexes over one fragment catalog."""

    def __init__(
        self, catalog: FragmentCatalog, analyzer: Analyzer | None = None
    ) -> None:
        self.catalog = catalog
        self.analyzer = analyzer or Analyzer()
        self._functions = InvertedIndex(self.analyzer)
        for fragment in catalog.functions:
            self._functions.add(fragment, tokens=list(fragment.keywords))
        self._columns = InvertedIndex(self.analyzer)
        for fragment in catalog.columns:
            self._columns.add(fragment, tokens=list(fragment.keywords))
        self._predicates = InvertedIndex(self.analyzer)
        for fragment in catalog.predicates:
            self._predicates.add(fragment, tokens=list(fragment.keywords))

    def retrieve(
        self,
        weighted_keywords: dict[str, float],
        predicate_hits: int = 20,
        column_hits: int = 10,
    ) -> RelevanceScores:
        """Score fragments against one claim's weighted keyword context.

        ``predicate_hits`` is the paper's "# Hits" knob (Lucene hits per
        claim, Table 5 / Figure 13 left); ``column_hits`` is the
        "# aggregation columns" knob (Figure 13 right). All aggregation
        functions are always scored — there are only eight.
        """
        # Every aggregation function is always in scope (only eight exist);
        # keywords merely modulate their scores.
        function_scores = {fragment: 0.0 for fragment in self.catalog.functions}
        function_scores.update(
            (hit.payload, hit.score)
            for hit in search(self._functions, weighted_keywords, top_k=None)
        )
        column_scores = {
            hit.payload: hit.score
            for hit in search(self._columns, weighted_keywords, top_k=column_hits)
        }
        # The '*' aggregation columns stay in scope even without keyword
        # support: Count(*) is the most common claim query.
        for fragment in self.catalog.columns:
            if fragment.is_star:
                column_scores.setdefault(fragment, 0.0)
        predicate_scores = {
            hit.payload: hit.score
            for hit in search(
                self._predicates, weighted_keywords, top_k=predicate_hits
            )
        }
        return RelevanceScores(function_scores, column_scores, predicate_scores)
