"""Fragment types and the per-database fragment catalog."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.aggregates import AggregateFunction
from repro.db.predicates import Predicate
from repro.db.refs import ColumnRef

#: Fixed keyword sets for aggregation functions (paper Section 4.2
#: associates "each standard SQL aggregation function with a fixed keyword
#: set").
FUNCTION_KEYWORDS: dict[AggregateFunction, tuple[str, ...]] = {
    AggregateFunction.COUNT: ("count", "number", "total", "many", "times", "were"),
    AggregateFunction.COUNT_DISTINCT: (
        "distinct", "different", "unique", "count", "number", "separate",
    ),
    AggregateFunction.SUM: ("sum", "total", "combined", "overall", "altogether"),
    AggregateFunction.AVG: ("average", "mean", "typical", "typically", "per"),
    AggregateFunction.MIN: (
        "minimum", "lowest", "smallest", "least", "fewest", "shortest",
    ),
    AggregateFunction.MAX: (
        "maximum", "highest", "largest", "most", "biggest", "longest", "top",
    ),
    AggregateFunction.PERCENTAGE: (
        "percentage", "percent", "share", "proportion", "fraction", "rate",
    ),
    AggregateFunction.CONDITIONAL_PROBABILITY: (
        "probability", "chance", "likelihood", "percent", "given", "among",
    ),
}


@dataclass(frozen=True)
class QueryFragment:
    """Base class; concrete fragments add their payload."""

    keywords: tuple[str, ...] = field(compare=False, default=())


@dataclass(frozen=True)
class FunctionFragment(QueryFragment):
    function: AggregateFunction = AggregateFunction.COUNT

    def __str__(self) -> str:
        return f"fn:{self.function.sql_name}"


@dataclass(frozen=True)
class ColumnFragment(QueryFragment):
    """An aggregation column (``*`` fragments have a star column ref)."""

    column: ColumnRef = ColumnRef("", "*")

    @property
    def is_star(self) -> bool:
        return self.column.is_star

    def __str__(self) -> str:
        return f"col:{self.column}"


@dataclass(frozen=True)
class PredicateFragment(QueryFragment):
    predicate: Predicate = None  # type: ignore[assignment]

    @property
    def column(self) -> ColumnRef:
        return self.predicate.column

    def __str__(self) -> str:
        return f"pred:{self.predicate.column}={self.predicate.value!r}"


@dataclass
class FragmentCatalog:
    """All fragments extracted from one database."""

    functions: list[FunctionFragment]
    columns: list[ColumnFragment]
    predicates: list[PredicateFragment]

    def __len__(self) -> int:
        return len(self.functions) + len(self.columns) + len(self.predicates)

    def predicate_columns(self) -> set[ColumnRef]:
        return {fragment.column for fragment in self.predicates}

    def candidate_space_size(self, max_predicates: int = 3) -> int:
        """Number of Simple Aggregate Queries this catalog can form
        (the quantity plotted in the paper's Figure 8).

        Counts every (function, column) pair combined with every way of
        choosing at most ``max_predicates`` predicates on distinct columns.
        """
        from collections import Counter
        from itertools import combinations

        per_column = Counter(fragment.column for fragment in self.predicates)
        counts = list(per_column.values())
        subsets = 1  # empty predicate set
        for size in range(1, max_predicates + 1):
            for combo in combinations(counts, size):
                product = 1
                for value in combo:
                    product *= value
                subsets += product
        return len(self.functions) * len(self.columns) * subsets
