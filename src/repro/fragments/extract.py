"""Fragment extraction from a database (paper Function IndexFragments).

For a new database we form: one fragment per aggregation function; one
aggregation-column fragment per numeric column (plus ``*`` for counts);
one equality-predicate fragment per (column, value) pair. Keywords come
from decomposed identifiers, cell values, synonyms, and data-dictionary
descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.aggregates import AggregateFunction
from repro.db.predicates import Predicate
from repro.db.refs import STAR, ColumnRef
from repro.db.schema import ColumnType, Database, Table
from repro.db.values import Value
from repro.fragments.fragments import (
    FUNCTION_KEYWORDS,
    ColumnFragment,
    FragmentCatalog,
    FunctionFragment,
    PredicateFragment,
)
from repro.ir.analysis import tokenize
from repro.nlp.decompose import abbreviation_expansions, decompose_identifier
from repro.nlp.wordnet import synonyms


@dataclass(frozen=True)
class ExtractionConfig:
    """Controls fragment extraction.

    ``max_distinct_per_column`` bounds predicate fragments per column
    (columns with more distinct values — free text, identifiers — are
    usually not claim predicates and would bloat the index).
    ``use_synonyms`` widens fragment keyword sets via the lexicon
    (paper Section 4.2 uses WordNet for this).
    """

    max_distinct_per_column: int = 100
    include_numeric_predicates: bool = True
    use_synonyms: bool = True


def extract_fragments(
    database: Database,
    config: ExtractionConfig | None = None,
    data_dictionary: dict[str, str] | None = None,
) -> FragmentCatalog:
    """Build the full fragment catalog for a database."""
    config = config or ExtractionConfig()
    dictionary = {
        name.strip().lower(): description
        for name, description in (data_dictionary or {}).items()
    }
    functions = [
        FunctionFragment(keywords=FUNCTION_KEYWORDS[function], function=function)
        for function in AggregateFunction
    ]
    columns: list[ColumnFragment] = []
    predicates: list[PredicateFragment] = []
    single_table = len(database.tables) == 1
    for table in database.tables:
        star_column = STAR if single_table else ColumnRef(table.name, "*")
        columns.append(
            ColumnFragment(
                keywords=_star_keywords(table, config),
                column=star_column,
            )
        )
        for column in table.columns:
            name_words = _identifier_keywords(
                table, column.name, config, dictionary
            )
            if column.type is ColumnType.NUMERIC:
                columns.append(
                    ColumnFragment(
                        keywords=name_words,
                        column=ColumnRef(table.name, column.name),
                    )
                )
            if (
                column.type is ColumnType.NUMERIC
                and not config.include_numeric_predicates
            ):
                continue
            values = table.distinct_values(
                column.name, limit=config.max_distinct_per_column + 1
            )
            if len(values) > config.max_distinct_per_column:
                continue
            for value in values:
                predicates.append(
                    PredicateFragment(
                        keywords=_predicate_keywords(name_words, value, config),
                        predicate=Predicate(
                            ColumnRef(table.name, column.name), value
                        ),
                    )
                )
    return FragmentCatalog(functions, columns, predicates)


def _identifier_keywords(
    table: Table,
    column_name: str,
    config: ExtractionConfig,
    dictionary: dict[str, str],
) -> tuple[str, ...]:
    """Keywords for a column: its own name parts, table name parts,
    synonyms, and the data-dictionary description (if any)."""
    words = list(decompose_identifier(column_name))
    words.extend(decompose_identifier(table.name))
    description = dictionary.get(column_name.strip().lower(), "")
    column = table.column(column_name)
    description = description or column.description
    if description:
        words.extend(tokenize(description))
    if config.use_synonyms:
        for word in list(words):
            words.extend(sorted(synonyms(word)))
    return tuple(dict.fromkeys(words))


def _star_keywords(table: Table, config: ExtractionConfig) -> tuple[str, ...]:
    words = list(decompose_identifier(table.name))
    words.extend(["rows", "entries", "records"])
    if config.use_synonyms:
        for word in list(words):
            words.extend(sorted(synonyms(word)))
    return tuple(dict.fromkeys(words))


def _predicate_keywords(
    column_words: tuple[str, ...],
    value: Value,
    config: ExtractionConfig,
) -> tuple[str, ...]:
    """Keywords for ``column = value``: the value's words dominate, column
    words provide context (paper: derived from value name and column name)."""
    words = tokenize(str(value))
    expanded = list(words)
    for word in words:
        # Abbreviation bridge: "indef" also answers to "indefinite".
        expansions = abbreviation_expansions(word)
        expanded.extend(expansions)
        if config.use_synonyms:
            for expansion in expansions:
                expanded.extend(sorted(synonyms(expansion)))
    if config.use_synonyms:
        for word in words:
            expanded.extend(sorted(synonyms(word)))
    expanded.extend(column_words)
    return tuple(dict.fromkeys(expanded))
