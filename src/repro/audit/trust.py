"""Per-database trust ladder: how much cached state a database may use.

The degradation ladder (PR 6) trades *quality* for liveness under time
and space pressure; this ladder trades *cache reuse* for integrity under
evidence of corruption. Each database fingerprint sits on one rung:

- ``FULL`` — every tier enabled (in-memory cells, disk cube cache,
  incremental memos). The steady state.
- ``DISK_BYPASS`` — the persistent tier is bypassed for this database's
  groups: cells are recomputed (or served from the in-memory cache that
  was just cleared and repopulated from scratch), nothing is read from
  disk. One audited divergence lands here — the disk tier is the only
  one that survives restarts, so it is the first suspect.
- ``ORACLE_ONLY`` — groups for this database execute on the NAIVE
  row-wise oracle path with no caches at all: maximum confidence,
  maximum cost. A divergence while already bypassing disk lands here.

Transitions are evidence-driven and symmetric: every audited divergence
demotes one rung (and resets the clean streak); ``recover_after``
consecutive clean audits promote one rung — the self-healing half. The
ladder never blocks service: a fully distrusted database still gets
correct answers, just slowly.
"""

from __future__ import annotations

import enum
import threading


class TrustLevel(enum.Enum):
    """How much cached state one database's groups may consume."""

    FULL = "full"
    DISK_BYPASS = "disk_bypass"
    ORACLE_ONLY = "oracle_only"


#: Rung order, most to least trusted (index = rung number).
_RUNGS = (TrustLevel.FULL, TrustLevel.DISK_BYPASS, TrustLevel.ORACLE_ONLY)


class TrustLadder:
    """Thread-safe trust state per database fingerprint."""

    def __init__(self, recover_after: int = 8) -> None:
        if recover_after < 1:
            raise ValueError(
                f"recover_after must be >= 1, got {recover_after}"
            )
        #: Consecutive clean audits required to climb one rung back up.
        self.recover_after = recover_after
        self._lock = threading.Lock()
        self._rung: dict[str, int] = {}
        self._clean_streak: dict[str, int] = {}
        self._divergences: dict[str, int] = {}
        #: Total rung demotions / promotions across all databases.
        self.demotions = 0
        self.promotions = 0

    def level(self, fingerprint: str) -> TrustLevel:
        """Current rung for a database (FULL when never seen)."""
        with self._lock:
            return _RUNGS[self._rung.get(fingerprint, 0)]

    def record_divergence(self, fingerprint: str) -> TrustLevel:
        """An audited verdict diverged: demote one rung, reset the streak."""
        with self._lock:
            self._divergences[fingerprint] = (
                self._divergences.get(fingerprint, 0) + 1
            )
            self._clean_streak[fingerprint] = 0
            rung = self._rung.get(fingerprint, 0)
            if rung < len(_RUNGS) - 1:
                rung += 1
                self._rung[fingerprint] = rung
                self.demotions += 1
            return _RUNGS[rung]

    def record_clean(self, fingerprint: str, checks: int = 1) -> TrustLevel:
        """``checks`` audited verdicts matched the oracle; maybe promote."""
        with self._lock:
            rung = self._rung.get(fingerprint, 0)
            if rung == 0:
                return _RUNGS[0]
            streak = self._clean_streak.get(fingerprint, 0) + checks
            if streak >= self.recover_after:
                rung -= 1
                self._rung[fingerprint] = rung
                self.promotions += 1
                streak = 0
            self._clean_streak[fingerprint] = streak
            return _RUNGS[rung]

    def degraded(self) -> bool:
        """Whether any database currently sits below FULL."""
        with self._lock:
            return any(rung > 0 for rung in self._rung.values())

    def stats(self) -> dict:
        """JSON-shaped snapshot for ``GET /audit`` and ``/health``."""
        with self._lock:
            databases = {}
            for fingerprint, rung in sorted(self._rung.items()):
                if rung == 0 and not self._divergences.get(fingerprint):
                    continue
                databases[fingerprint] = {
                    "level": _RUNGS[rung].value,
                    "divergences": self._divergences.get(fingerprint, 0),
                    "clean_streak": self._clean_streak.get(fingerprint, 0),
                }
            return {
                "recover_after": self.recover_after,
                "demotions": self.demotions,
                "promotions": self.promotions,
                "degraded": any(r > 0 for r in self._rung.values()),
                "databases": databases,
            }
