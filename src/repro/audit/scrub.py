"""Offline deep scrub of every persisted state tier (``repro scrub``).

Four tiers persist across process restarts, each with its own framing and
its own repair story; the scrubber walks them all and emits one
machine-readable report:

========================  ==========================  =====================
tier                      structural check            semantic check
========================  ==========================  =====================
disk cube cache           magic + CRC32 + unpickle    recompute cells from
(``*.cube``)              (quarantines on failure)    the source database,
                                                      compare bit-exact,
                                                      quarantine mismatches
queue journal             per-record CRC32 (v2),      — (payloads are
(``queue.journal``)       truncated-tail detection    verdicts; the online
                                                      shadow auditor covers
                                                      them at ack time)
corpus checkpoints        magic + per-record CRC32    — (a resumed run
(``RCKPT3`` framing)      (v3), truncated-tail        recomputes skipped
                          detection                   records and rewrites
                                                      the file)
incremental memo LRU      per-entry CRC32 on every    shadow auditor
(in-memory, not walked    hit (in process)            repairs divergent
here)                                                 entries at ack time
========================  ==========================  =====================

Semantic validation of the disk tier needs the source data: pass the
databases (``--csv`` on the CLI) and every entry whose ``meta``
fingerprint matches one of them is recomputed; entries for unknown
fingerprints get the structural check only (counted ``skipped_semantic``).

Exit contract of the CLI: 0 when every walked tier is clean, 4 when any
corruption was found (all of it quarantined or flagged — a second scrub
over repaired state exits 0).
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.db.adapters import create_adapter
from repro.db.cube import CubeQuery
from repro.db.diskcache import DiskCubeCache, fingerprint_of
from repro.db.values import DEFAULT_LITERAL

if TYPE_CHECKING:
    from repro.db.schema import Database


def _bit_equal(a: object, b: object) -> bool:
    """Bit-exact value comparison: type-strict, reprs for floats (so
    ``-0.0`` vs ``0.0`` and NaN payload drift count as mismatches)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, float):
        return repr(a) == repr(b)
    return a == b


def recompute_matches(
    database: "Database", payload: dict, graphs: dict | None = None
) -> bool:
    """Re-execute a disk-cache entry's cube and compare cells bit-exact.

    Cells keyed into the default bucket are skipped: their value depends
    on which *other* literals the producing cube collapsed, so they are
    not reproducible from the merged literal set — and by the same
    argument the engine never serves them for a specific literal.
    ``graphs`` memoizes storage-adapter construction across entries of
    one database (entries name the backend that produced them, so the
    recompute runs through the same adapter — join memo, SQL connection
    and all).
    """
    meta = payload["meta"]
    backend = str(meta["backend"])
    key = (id(database), backend)
    adapter = graphs.get(key) if graphs is not None else None
    if adapter is None:
        adapter = create_adapter(backend, database)
        if graphs is not None:
            graphs[key] = adapter
    literals = payload["literals"]
    dims = tuple(meta["dims"])
    cube = CubeQuery(
        tables=frozenset(meta["tables"]),
        dimensions=dims,
        literals=tuple(
            (dim, frozenset(literals.get(dim, ()))) for dim in dims
        ),
        aggregates=(meta["spec"],),
    )
    fresh = adapter.execute_cube(cube).cells_for(meta["spec"])
    for cell_key, value in payload["cells"].items():
        if any(part == DEFAULT_LITERAL for part in cell_key):
            continue
        if cell_key not in fresh or not _bit_equal(fresh[cell_key], value):
            return False
    return True


def scrub_disk_cache(
    cache_dir: str | Path,
    databases: "Iterable[Database] | None" = None,
) -> dict:
    """Walk every ``*.cube`` entry: structural always, semantic when the
    owning database was provided. Corrupt entries are quarantined."""
    cache = DiskCubeCache(cache_dir)
    by_fp = {fingerprint_of(db): db for db in (databases or [])}
    graphs: dict = {}
    report = {
        "tier": "disk_cache",
        "path": str(cache.root),
        "scanned": 0,
        "ok": 0,
        "structural_corrupt": 0,
        "semantic_mismatch": 0,
        "quarantined": 0,
        "skipped_semantic": 0,
        "previously_quarantined": len(
            list(cache.root.glob("*.cube.corrupt"))
        ),
    }
    for path in cache.entries():
        report["scanned"] += 1
        payload = cache.read_payload(path)
        if payload is None:
            report["structural_corrupt"] += 1
            report["quarantined"] += 1
            continue
        meta = payload.get("meta")
        if not isinstance(meta, dict) or "fingerprint" not in meta:
            cache.quarantine(path)
            report["structural_corrupt"] += 1
            report["quarantined"] += 1
            continue
        database = by_fp.get(meta["fingerprint"])
        if database is None:
            report["skipped_semantic"] += 1
            report["ok"] += 1
            continue
        if recompute_matches(database, payload, graphs):
            report["ok"] += 1
        else:
            cache.quarantine(path)
            report["semantic_mismatch"] += 1
            report["quarantined"] += 1
    report["corrupt"] = (
        report["structural_corrupt"] + report["semantic_mismatch"]
    )
    return report


def scrub_journal(queue_dir: str | Path) -> dict:
    """Structural scan of the queue journal (read-only, never compacts)."""
    from repro.service.queue import JOURNAL_NAME, scan_journal

    scan = scan_journal(Path(queue_dir) / JOURNAL_NAME)
    return {"tier": "queue_journal", **scan}


def scrub_checkpoint(path: str | Path) -> dict:
    """Structural scan of one corpus checkpoint file."""
    from repro.harness.checkpoint import scan_checkpoint

    scan = scan_checkpoint(path)
    corrupt = scan["corrupt"] + (0 if scan["format_ok"] else 1)
    return {"tier": "checkpoint", **scan, "corrupt": corrupt}


def scrub_state(
    cache_dir: str | Path | None = None,
    queue_dir: str | Path | None = None,
    checkpoints: "Iterable[str | Path]" = (),
    databases: "Iterable[Database] | None" = None,
) -> dict:
    """Scrub every requested tier; the CLI serializes this as the report.

    ``clean`` is the exit-code driver: False as soon as any walked tier
    held corruption (even corruption that is now quarantined — the caller
    deserves to know this pass found something).
    """
    tiers = []
    if cache_dir is not None:
        tiers.append(scrub_disk_cache(cache_dir, databases))
    if queue_dir is not None:
        tiers.append(scrub_journal(queue_dir))
    for checkpoint in checkpoints:
        tiers.append(scrub_checkpoint(checkpoint))
    corrupt_total = sum(tier.get("corrupt", 0) for tier in tiers)
    truncated = any(tier.get("truncated") for tier in tiers)
    return {
        "tiers": tiers,
        "corrupt_total": corrupt_total,
        "truncated": truncated,
        "clean": corrupt_total == 0 and not truncated,
    }
