"""Online shadow verification: sampled acked verdicts re-checked against
the oracle.

The engine's bit-identity contract — the dictionary-encoded columnar
backend and every cache tier produce *exactly* the verdicts of the
row-wise NAIVE oracle — is asserted by the test suite but, until now,
only trusted in production. The :class:`ShadowAuditor` demonstrates it
continuously: a configurable fraction of acked fresh groups is replayed
on a background thread against an oracle checker (``NAIVE`` mode, ``ROW``
backend, no disk cache, no deadline or space budgets) built from the same
journaled source the worker executed, and the payloads are compared
field-for-field.

Sampling is per *group*, not per claim: verdicts are jointly inferred
(pooled predicate fragments, learned document priors), so the only sound
re-execution is the exact batch that produced them — which is also why
cached (memoized) serves are not re-executed here: they were computed in
some earlier batch, and re-checking them in another batch can diverge
legitimately. The memo tier is instead guarded by per-entry CRCs
(:mod:`repro.service.incremental`). Degraded payloads are excluded for
the same reason: they reflect a time/space budget, not the claim.

A divergence is handled, not just counted: the poisoned memo entry is
replaced with the oracle's payload, the database's disk-cache entries are
invalidated, the production checker's in-memory cube cells are dropped,
and the database is demoted one rung on the :class:`~repro.audit.trust.TrustLadder`
— so the *next* group for that database runs with less cached state
while the divergence counter and ``GET /audit`` tell the operator why.
Each audited group additionally deep-scrubs a small sample of the
database's disk cube-cache entries (bit-exact recompute, quarantine on
mismatch).
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.audit.scrub import recompute_matches
from repro.audit.trust import TrustLadder, TrustLevel
from repro.db.diskcache import DiskCubeCache, fingerprint_of
from repro.db.engine import EngineStats, ExecutionMode
from repro.errors import ReproError
from repro.text.claims import detect_claims

# NOTE: repro.service.protocol is imported lazily inside methods — the
# service package's __init__ imports the aio front end, which imports
# this module, so a top-level import here would be circular.

if TYPE_CHECKING:
    from repro.core.checker import AggChecker, CheckReport
    from repro.service.server import VerificationService
    from repro.text.claims import Claim
    from repro.text.document import Document

#: Fraction of acked fresh groups shadow-verified by default. At open-loop
#: arrival rates the audit runs on one background thread, so the default
#: costs well under the 10% throughput budget (see BENCH_service_load).
DEFAULT_AUDIT_RATE = 0.05

#: Oracle checkers kept warm (per scope fingerprint).
_ORACLE_POOL_SIZE = 4

#: Disk cube-cache entries deep-scrubbed per audited group.
_SCRUB_CELLS_PER_AUDIT = 2


@dataclass
class _AuditTask:
    """One sampled group: what was served, and how to rebuild the work."""

    scope_fp: str
    database_fp: str
    source: dict
    #: ``(claim index, claim fingerprint, served payload)`` per fresh job.
    items: list


class _OracleEntry:
    """One pooled oracle checker (serialized by its own lock)."""

    def __init__(self, checker: "AggChecker", database, document_cache=None):
        self.lock = threading.Lock()
        self.checker = checker
        self.database = database


class ShadowAuditor:
    """Samples acked groups and re-verifies them against the oracle."""

    def __init__(
        self,
        service: "VerificationService",
        rate: float = DEFAULT_AUDIT_RATE,
        ladder: TrustLadder | None = None,
        max_backlog: int = 64,
        scrub_cells: int = _SCRUB_CELLS_PER_AUDIT,
        rng: random.Random | None = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"audit rate must be in [0, 1], got {rate}")
        self.service = service
        self.rate = rate
        self.ladder = ladder if ladder is not None else TrustLadder()
        self.max_backlog = max_backlog
        self.scrub_cells = scrub_cells
        #: audit_* counters, merged into the service's engine stats.
        self.stats = EngineStats()
        self.sampled_groups = 0
        self.dropped_tasks = 0
        self.audit_errors = 0
        self.skipped_degraded = 0
        self.skipped_stale = 0
        #: Groups the executor routed through the oracle (ORACLE_ONLY) or
        #: ran with the disk tier bypassed (DISK_BYPASS).
        self.oracle_groups = 0
        self.disk_bypassed_groups = 0
        self.recent_divergences: "deque[dict]" = deque(maxlen=32)
        self._rng = rng if rng is not None else random.Random()
        self._disk = (
            DiskCubeCache(service.config.cache_dir)
            if service.config.cache_dir
            else None
        )
        self._oracles: "OrderedDict[str, _OracleEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._tasks: "deque[_AuditTask]" = deque()
        self._wakeup = threading.Condition(self._lock)
        self._pending = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0

    def start(self) -> None:
        if not self.enabled or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="shadow-auditor", daemon=True
        )
        self._thread.start()

    def close(self, timeout: float = 10.0) -> None:
        """Stop the worker thread (pending tasks are abandoned)."""
        self._stop.set()
        with self._wakeup:
            self._wakeup.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    def flush(self, timeout: float = 30.0) -> bool:
        """Block until the backlog is fully processed (tests)."""
        with self._wakeup:
            return self._wakeup.wait_for(
                lambda: self._pending == 0, timeout=timeout
            )

    # -- producer side (called from worker threads) --------------------

    def observe_group(
        self,
        scope_fp: str,
        database_fp: str,
        source: dict,
        items: list,
    ) -> None:
        """Maybe sample one acked fresh group for shadow verification.

        ``items`` is ``[(claim index, claim fingerprint, served payload)]``
        for the group's jobs, in batch order. Cheap on the worker path:
        one RNG draw plus an append.
        """
        if not self.enabled or self._stop.is_set():
            return
        auditable = [item for item in items if not item[2].get("degraded")]
        if len(auditable) < len(items):
            self.skipped_degraded += len(items) - len(auditable)
        if not auditable:
            return
        if self._rng.random() >= self.rate:
            return
        task = _AuditTask(scope_fp, database_fp, dict(source), auditable)
        with self._wakeup:
            self.sampled_groups += 1
            if len(self._tasks) >= self.max_backlog:
                self.dropped_tasks += 1
                return
            self._tasks.append(task)
            self._pending += 1
            self._wakeup.notify_all()

    # -- consumer side (the auditor thread) ----------------------------

    def _run(self) -> None:
        while True:
            with self._wakeup:
                while not self._tasks and not self._stop.is_set():
                    self._wakeup.wait(timeout=0.2)
                if self._stop.is_set():
                    return
                task = self._tasks.popleft()
            try:
                self._process(task)
            except Exception:
                # The audit must never take the service down — a failed
                # audit is counted and the sample is simply lost (e.g.
                # journaled CSV paths already deleted by a test teardown).
                self.audit_errors += 1
            finally:
                with self._wakeup:
                    self._pending -= 1
                    self._wakeup.notify_all()

    def _process(self, task: _AuditTask) -> None:
        from repro.service.protocol import verdict_payload

        entry = self._oracle_for(task.scope_fp, task.source)
        if fingerprint_of(entry.database) != task.database_fp:
            # The source files changed since the group executed: the
            # rebuilt database is different work, not evidence.
            self.skipped_stale += 1
            return
        document, claims = self._rebuild(task.source)
        if any(index >= len(claims) for index, _, _ in task.items):
            self.skipped_stale += 1
            return
        with entry.lock:
            report = entry.checker.check_claims(
                document, [claims[index] for index, _, _ in task.items]
            )
        divergent = []
        for (index, claim_fp, served), verdict in zip(
            task.items, report.verdicts
        ):
            expected = verdict_payload(verdict)
            self.stats.audit_checks += 1
            if expected == served:
                continue
            self.stats.audit_divergences += 1
            divergent.append((index, claim_fp, served, expected))
        if divergent:
            self._handle_divergences(task, divergent)
        else:
            self.ladder.record_clean(task.database_fp, len(task.items))
        self._scrub_sample(task, entry)

    def _handle_divergences(self, task: _AuditTask, divergent: list) -> None:
        for index, claim_fp, served, expected in divergent:
            if claim_fp:
                # Repair the memo: the poisoned payload is replaced by
                # the oracle's, so the next cached serve is correct.
                self.service.cache.put((task.scope_fp, claim_fp), expected)
                self.stats.audit_repairs += 1
            self.recent_divergences.append(
                {
                    "database": task.database_fp,
                    "scope": task.scope_fp,
                    "index": index,
                    "served_status": served.get("status"),
                    "expected_status": expected.get("status"),
                    "served_probability": served.get("probability_correct"),
                    "expected_probability": expected.get(
                        "probability_correct"
                    ),
                }
            )
        self.ladder.record_divergence(task.database_fp)
        self._invalidate_caches(task)

    def _invalidate_caches(self, task: _AuditTask) -> None:
        """Drop every cached artifact the divergent database owns."""
        if self._disk is not None:
            self._disk.invalidate(task.database_fp)
        pool_entry = self.service.pool.peek(("content", task.scope_fp))
        if pool_entry is not None and pool_entry.checker is not None:
            with pool_entry.lock:
                pool_entry.checker.engine.cache.clear()

    def _scrub_sample(self, task: _AuditTask, entry: _OracleEntry) -> None:
        """Deep-scrub a few of the database's disk cube-cache entries."""
        if self._disk is None or self.scrub_cells <= 0:
            return
        paths = self._disk.paths_for(task.database_fp)
        if len(paths) > self.scrub_cells:
            paths = self._rng.sample(paths, self.scrub_cells)
        graphs: dict = {}
        for path in paths:
            payload = self._disk.read_payload(path)
            self.stats.audit_cell_scrubs += 1
            if payload is None:
                # Structural corruption: read_payload already counted and
                # quarantined it; it could never have been *served*, so
                # the trust ladder stays put.
                self.stats.audit_cell_mismatches += 1
                continue
            meta = payload.get("meta")
            if (
                not isinstance(meta, dict)
                or meta.get("fingerprint") != task.database_fp
            ):
                continue
            if recompute_matches(entry.database, payload, graphs):
                continue
            # Bit-identity failure: the stored cells lie about the data.
            self.stats.audit_cell_mismatches += 1
            self._disk.quarantine(path)
            self.ladder.record_divergence(task.database_fp)
            self._invalidate_caches(task)
            return

    # -- the oracle ----------------------------------------------------

    def oracle_config(self):
        """The production config stripped to ground-truth execution."""
        return replace(
            self.service.config,
            engine=replace(
                self.service.config.engine,
                mode=ExecutionMode.NAIVE,
                backend="row",
                cache_dir=None,
                disk_cache_min_rows=None,
            ),
            claim_deadline=None,
            max_rows_materialized=None,
            max_cube_cells=None,
            max_candidates=None,
        )

    def _oracle_for(self, scope_fp: str, source: dict) -> _OracleEntry:
        with self._lock:
            entry = self._oracles.get(scope_fp)
            if entry is not None:
                self._oracles.move_to_end(scope_fp)
                return entry
        from repro.core.checker import AggChecker
        from repro.service.protocol import spec_request

        request = spec_request(
            source,
            article=source.get("article") or "",
            title=source.get("title") or "document",
        )
        database = request.load_database()
        dictionary = request.load_dictionary()
        checker = AggChecker(database, self.oracle_config(), dictionary)
        entry = _OracleEntry(checker, database)
        with self._lock:
            existing = self._oracles.get(scope_fp)
            if existing is not None:
                return existing
            self._oracles[scope_fp] = entry
            while len(self._oracles) > _ORACLE_POOL_SIZE:
                self._oracles.popitem(last=False)
        return entry

    def _rebuild(self, source: dict) -> "tuple[Document, list[Claim]]":
        from repro.service.protocol import spec_request

        request = spec_request(
            source,
            article=source.get("article") or "",
            title=source.get("title") or "document",
        )
        document = request.load_document()
        claims = detect_claims(
            document, self.service.config.claim_detection
        )
        return document, claims

    def oracle_check(
        self,
        scope_fp: str,
        database_fp: str,
        source: dict,
        document: "Document",
        claims: "list[Claim]",
        deadline=None,
    ) -> "CheckReport":
        """Execute a group on the oracle path (the ORACLE_ONLY rung).

        Called synchronously by the group executor for databases the
        ladder fully distrusts: correctness over cost, no cache tier
        involved at all.
        """
        entry = self._oracle_for(scope_fp, source)
        if fingerprint_of(entry.database) != database_fp:
            raise ReproError(
                "oracle-only execution refused: source data changed since "
                "admission (database fingerprint mismatch)"
            )
        with entry.lock:
            report = entry.checker.check_claims(
                document, claims, deadline=deadline
            )
        self.oracle_groups += 1
        return report

    # -- reporting -----------------------------------------------------

    def health(self) -> dict:
        """The compact block embedded in ``GET /health``."""
        return {
            "enabled": self.enabled,
            "rate": self.rate,
            "checks": self.stats.audit_checks,
            "divergences": self.stats.audit_divergences,
            "degraded": self.ladder.degraded(),
        }

    def snapshot(self) -> dict:
        """The full ``GET /audit`` payload."""
        with self._wakeup:
            backlog = len(self._tasks)
        return {
            "enabled": self.enabled,
            "rate": self.rate,
            "sampled_groups": self.sampled_groups,
            "backlog": backlog,
            "dropped_tasks": self.dropped_tasks,
            "audit_errors": self.audit_errors,
            "skipped_degraded": self.skipped_degraded,
            "skipped_stale": self.skipped_stale,
            "oracle_groups": self.oracle_groups,
            "disk_bypassed_groups": self.disk_bypassed_groups,
            "checks": self.stats.audit_checks,
            "divergences": self.stats.audit_divergences,
            "repairs": self.stats.audit_repairs,
            "cell_scrubs": self.stats.audit_cell_scrubs,
            "cell_mismatches": self.stats.audit_cell_mismatches,
            "ladder": self.ladder.stats(),
            "recent_divergences": list(self.recent_divergences),
        }
