"""Online integrity auditing: shadow verification, trust ladder, scrubbing.

The service's caches (disk cube cells, incremental verdict memos) and
journals (queue, checkpoints) are validated structurally on read; this
package adds the *semantic* layer — continuously demonstrating, in the
running service, the bit-identity contract the test suite asserts between
the columnar engine and the row-wise NAIVE oracle:

- :mod:`repro.audit.trust` — the per-database trust ladder (full caches
  → disk-tier bypass → oracle-only execution);
- :mod:`repro.audit.shadow` — the :class:`ShadowAuditor`, which samples
  acked verdicts and re-verifies them in the background against the
  oracle with every cache tier bypassed;
- :mod:`repro.audit.scrub` — the offline deep scrubber behind
  ``python -m repro scrub``.
"""

from repro.audit.scrub import scrub_state
from repro.audit.shadow import DEFAULT_AUDIT_RATE, ShadowAuditor
from repro.audit.trust import TrustLadder, TrustLevel

__all__ = [
    "DEFAULT_AUDIT_RATE",
    "ShadowAuditor",
    "TrustLadder",
    "TrustLevel",
    "scrub_state",
]
