"""Parse an HTML subset into the hierarchical document model.

The paper's implementation "uses HTML markup but the document structure
could be easily derived from the output format of any word processor"
(Section 4.3). We support the same subset the corpus emits: ``<title>``,
``<h1>``..``<h6>`` headlines establishing the section hierarchy, and
``<p>`` paragraphs. Other tags are ignored; their text content flows into
the enclosing paragraph.
"""

from __future__ import annotations

from html.parser import HTMLParser

from repro.errors import DocumentError
from repro.text.document import Document, Section

_HEADING_LEVELS = {f"h{i}": i for i in range(1, 7)}


class _DocumentBuilder(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.document = Document()
        # Stack of (level, section); the root sits at level 0.
        self._stack: list[tuple[int, Section]] = [(0, self.document.root)]
        self._text_parts: list[str] = []
        self._collecting: str | None = None  # "title", "heading", "para"
        self._pending_level = 0

    # -- tag events -----------------------------------------------------

    def handle_starttag(self, tag: str, attrs) -> None:
        tag = tag.lower()
        if tag in _HEADING_LEVELS:
            self._flush_paragraph()
            self._collecting = "heading"
            self._pending_level = _HEADING_LEVELS[tag]
            self._text_parts = []
        elif tag == "title":
            self._collecting = "title"
            self._text_parts = []
        elif tag == "p":
            self._flush_paragraph()
            self._collecting = "para"
            self._text_parts = []
        elif tag in ("br",):
            self._text_parts.append(" ")

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag in _HEADING_LEVELS and self._collecting == "heading":
            self._open_section(self._pending_level, self._text())
            self._collecting = None
        elif tag == "title" and self._collecting == "title":
            self.document.root.headline = self._text()
            self._collecting = None
        elif tag == "p" and self._collecting == "para":
            self._flush_paragraph()

    def handle_data(self, data: str) -> None:
        if self._collecting is not None:
            self._text_parts.append(data)

    # -- helpers --------------------------------------------------------

    def _text(self) -> str:
        return " ".join("".join(self._text_parts).split())

    def _flush_paragraph(self) -> None:
        if self._collecting == "para":
            text = self._text()
            if text:
                current = self._stack[-1][1]
                current.add_paragraph(text)
            self._collecting = None
            self._text_parts = []

    def _open_section(self, level: int, headline: str) -> None:
        # Pop deeper-or-equal sections, then nest under the survivor.
        while self._stack and self._stack[-1][0] >= level:
            self._stack.pop()
        if not self._stack:
            self._stack = [(0, self.document.root)]
        parent = self._stack[-1][1]
        section = parent.add_subsection(headline)
        self._stack.append((level, section))


def parse_html(html: str) -> Document:
    """Parse HTML text into a :class:`Document`."""
    if not html.strip():
        raise DocumentError("empty HTML input")
    builder = _DocumentBuilder()
    builder.feed(html)
    builder.close()
    builder._flush_paragraph()
    document = builder.document
    if not document.sentences():
        raise DocumentError("document contains no text")
    return document
