"""Claim detection: numbers in text likely to be claimed query results.

The paper identifies "potentially check-worthy text passages via simple
heuristics" (Section 3), relying on the user to prune spurious matches.
The heuristics here: every number mention is a candidate claim except
ordinals ("the 4th season"), year-like mentions ("in 2014"), and numbers
inside headlines — all configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlp.numbers import NumberMention, extract_number_mentions
from repro.text.document import Document, Sentence


@dataclass(frozen=True)
class ClaimDetectionConfig:
    """Knobs for the claim-detection heuristics."""

    skip_ordinals: bool = True
    skip_years: bool = True
    skip_headline_numbers: bool = True


@dataclass(frozen=True)
class Claim:
    """A claimed query result: one number mention in one sentence."""

    sentence: Sentence
    mention: NumberMention
    #: Position of this claim among all claims of the document (stable id).
    ordinal: int = field(compare=False, default=0)

    @property
    def claimed_value(self) -> float:
        return self.mention.value

    @property
    def is_percentage_claim(self) -> bool:
        return self.mention.is_percentage

    def key(self) -> tuple[int, str, int]:
        """Identity within a document: ordinal + sentence + position (the
        ordinal disambiguates repeated identical sentences)."""
        return (self.ordinal, self.sentence.text, self.mention.first_index)

    def __repr__(self) -> str:
        return (
            f"Claim({self.mention.text!r} = {self.claimed_value} in "
            f"{self.sentence.text[:40]!r})"
        )


def detect_claims(
    document: Document,
    config: ClaimDetectionConfig | None = None,
) -> list[Claim]:
    """Find candidate claims in document order."""
    config = config or ClaimDetectionConfig()
    claims: list[Claim] = []
    for sentence in document.sentences():
        for mention in extract_number_mentions(sentence.tokens):
            if config.skip_ordinals and mention.is_ordinal:
                continue
            if config.skip_years and mention.is_year_like:
                continue
            claims.append(Claim(sentence, mention, ordinal=len(claims)))
    return claims
