"""Document / Section / Paragraph / Sentence with parent links.

The keyword-context extraction of Algorithm 2 needs, for any claim
sentence: its own tokens, the previous sentence in the paragraph, the first
sentence of the paragraph, and the headlines of all enclosing sections
("walking up" the hierarchy, paper Figure 4). The model stores exactly
those links.
"""

from __future__ import annotations

from functools import cached_property

from repro.errors import DocumentError
from repro.nlp.sentences import split_sentences
from repro.nlp.tokens import Token, tokenize_with_punct


class Sentence:
    """One sentence with its position inside its paragraph."""

    def __init__(self, text: str, paragraph: "Paragraph", index: int) -> None:
        if not text.strip():
            raise DocumentError("sentence text must be non-empty")
        self.text = text.strip()
        self.paragraph = paragraph
        self.index = index

    @cached_property
    def tokens(self) -> list[Token]:
        return tokenize_with_punct(self.text)

    @property
    def previous(self) -> "Sentence | None":
        if self.index == 0:
            return None
        return self.paragraph.sentences[self.index - 1]

    @property
    def is_paragraph_start(self) -> bool:
        return self.index == 0

    def __repr__(self) -> str:
        return f"Sentence({self.text[:40]!r}...)"


class Paragraph:
    """A sequence of sentences inside one section."""

    def __init__(self, section: "Section") -> None:
        self.section = section
        self.sentences: list[Sentence] = []

    def add_text(self, text: str) -> None:
        """Split raw paragraph text into sentences and append them."""
        for part in split_sentences(text):
            self.sentences.append(Sentence(part, self, len(self.sentences)))

    @property
    def first_sentence(self) -> Sentence | None:
        return self.sentences[0] if self.sentences else None

    @property
    def text(self) -> str:
        return " ".join(sentence.text for sentence in self.sentences)


class Section:
    """A headlined section containing paragraphs and subsections."""

    def __init__(self, headline: str = "", parent: "Section | None" = None) -> None:
        self.headline = headline.strip()
        self.parent = parent
        self.paragraphs: list[Paragraph] = []
        self.subsections: list[Section] = []

    def add_paragraph(self, text: str) -> Paragraph:
        paragraph = Paragraph(self)
        paragraph.add_text(text)
        if paragraph.sentences:
            self.paragraphs.append(paragraph)
        return paragraph

    def add_subsection(self, headline: str) -> "Section":
        subsection = Section(headline, parent=self)
        self.subsections.append(subsection)
        return subsection

    def ancestors(self) -> list["Section"]:
        """This section, its parent, ... up to (and including) the root."""
        chain: list[Section] = []
        node: Section | None = self
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def walk(self):
        """Depth-first traversal of this section and its descendants."""
        yield self
        for subsection in self.subsections:
            yield from subsection.walk()


class Document:
    """A titled hierarchy of sections."""

    def __init__(self, title: str = "") -> None:
        self.root = Section(title)

    @property
    def title(self) -> str:
        return self.root.headline

    @classmethod
    def from_plain_text(cls, title: str, paragraphs: list[str]) -> "Document":
        """Build a flat document (one section) from paragraph strings."""
        document = cls(title)
        for text in paragraphs:
            document.root.add_paragraph(text)
        return document

    def sections(self) -> list[Section]:
        return list(self.root.walk())

    def paragraphs(self) -> list[Paragraph]:
        return [p for section in self.sections() for p in section.paragraphs]

    def sentences(self) -> list[Sentence]:
        return [s for paragraph in self.paragraphs() for s in paragraph.sentences]

    def text(self) -> str:
        """Full text including headlines (used by baselines)."""
        parts = []
        for section in self.sections():
            if section.headline:
                parts.append(section.headline)
            parts.extend(paragraph.text for paragraph in section.paragraphs)
        return "\n".join(parts)

    def __repr__(self) -> str:
        return (
            f"Document({self.title!r}, {len(self.sections())} sections, "
            f"{len(self.sentences())} sentences)"
        )
