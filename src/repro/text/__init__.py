"""Hierarchical document model and claim detection.

The paper's input is a semi-structured text: a hierarchy of sections with
headlines, containing paragraphs and sentences (Section 2). Keyword
extraction (Algorithm 2) walks this hierarchy, so the model keeps parent
links from sentences up to the document root.
"""

from repro.text.claims import Claim, ClaimDetectionConfig, detect_claims
from repro.text.document import Document, Paragraph, Section, Sentence
from repro.text.htmlparse import parse_html

__all__ = [
    "Claim",
    "ClaimDetectionConfig",
    "Document",
    "Paragraph",
    "Section",
    "Sentence",
    "detect_claims",
    "parse_html",
]
