"""Baseline systems the paper compares against (Table 5).

- :class:`~repro.baselines.claimbuster.ClaimBusterFM`: matches claims
  against a repository of manually fact-checked statements (Max /
  majority-vote variants).
- :class:`~repro.baselines.nalir.ClaimBusterKB`: generates questions from
  claims and sends them to a NaLIR-style natural-language query interface
  over the database.

Both reproduce the paper's failure analysis: fact repositories miss
"long tail" claims, and NLQ translation breaks on multi-claim,
context-dependent sentences.
"""

from repro.baselines.claimbuster import ClaimBusterFM, FmMode
from repro.baselines.factbase import FactRepository, build_fact_repository
from repro.baselines.nalir import ClaimBusterKB, NaLIR, TranslationError
from repro.baselines.questiongen import generate_questions

__all__ = [
    "ClaimBusterFM",
    "ClaimBusterKB",
    "FactRepository",
    "FmMode",
    "NaLIR",
    "TranslationError",
    "build_fact_repository",
    "generate_questions",
]
