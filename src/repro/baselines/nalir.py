"""A NaLIR-style natural-language query interface, and ClaimBuster-KB.

NaLIR maps a question's parse tree onto a query tree, requiring close
structural similarity between sentence and SQL (paper Section 7.3). The
reimplementation is faithfully *rigid*: it needs an explicit aggregation
cue, exact (stemmed) column/value mentions, and gives up otherwise — the
paper measured only 42.1% of sentences translating at all (with their
fixes) and 13.6% of translations returning a single numeric value.

ClaimBuster-KB pipes generated questions through this interface and
accepts a claim if any answer matches the claimed value.
"""

from __future__ import annotations

from repro.baselines.questiongen import generate_questions
from repro.db.aggregates import AggregateFunction
from repro.db.executor import execute_query
from repro.db.predicates import Predicate
from repro.db.query import AggregateSpec, ColumnRef, STAR, SimpleAggregateQuery
from repro.db.schema import ColumnType, Database
from repro.db.values import Value, normalize_string
from repro.errors import ReproError
from repro.ir.analysis import Analyzer, tokenize
from repro.nlp.numbers import rounds_to
from repro.text.claims import Claim

_AGGREGATION_CUES: dict[str, AggregateFunction] = {
    "many": AggregateFunction.COUNT,
    "number": AggregateFunction.COUNT,
    "count": AggregateFunction.COUNT,
    "total": AggregateFunction.SUM,
    "sum": AggregateFunction.SUM,
    "average": AggregateFunction.AVG,
    "mean": AggregateFunction.AVG,
    "minimum": AggregateFunction.MIN,
    "lowest": AggregateFunction.MIN,
    "maximum": AggregateFunction.MAX,
    "highest": AggregateFunction.MAX,
    "percentage": AggregateFunction.PERCENTAGE,
}


class TranslationError(ReproError):
    """The question could not be mapped to an SQL query."""


class NaLIR:
    """Rigid parse-tree-style NLQ translation over one database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._analyzer = Analyzer()
        # Exact (stemmed) lexicon: column names and cell values only —
        # NaLIR's mapping relies on name similarity, not data semantics.
        self._columns: dict[str, ColumnRef] = {}
        self._values: dict[str, list[tuple[ColumnRef, Value]]] = {}
        self._schema_terms: set[str] = set()
        for table in database.tables:
            from repro.nlp.decompose import decompose_identifier

            for part in decompose_identifier(table.name) + [table.name]:
                self._schema_terms.update(self._analyzer.analyze(part))
            for column in table.columns:
                for part in decompose_identifier(column.name) + [column.name]:
                    self._schema_terms.update(self._analyzer.analyze(part))
                for term in self._analyzer.analyze(column.name):
                    self._columns.setdefault(term, ColumnRef(table.name, column.name))
            for column in table.columns:
                if column.type is ColumnType.NUMERIC:
                    continue
                for value in table.distinct_values(column.name, limit=60):
                    key = normalize_string(value)
                    self._values.setdefault(key, []).append(
                        (ColumnRef(table.name, column.name), value)
                    )

    def translate(self, question: str) -> SimpleAggregateQuery:
        """Map one question to SQL, or raise :class:`TranslationError`.

        The rigidity mirrors the paper's findings: long multi-part
        sentences fail to parse, implicit aggregates fail to map, and
        restrictions require exact value mentions.
        """
        words = tokenize(question)
        if len(words) > 14:
            raise TranslationError("sentence too complex to map onto a query tree")
        function = None
        for word in words:
            if word in _AGGREGATION_CUES:
                function = _AGGREGATION_CUES[word]
                break
        if function is None:
            raise TranslationError("no aggregation cue in question")
        column = self._aggregation_column(words, function)
        predicates = self._predicates(question, words)
        if function.needs_numeric_column and column.is_star:
            raise TranslationError("numeric aggregate without a column")
        if function is AggregateFunction.PERCENTAGE and not predicates:
            raise TranslationError("percentage without a restriction")
        if not predicates and function is AggregateFunction.COUNT:
            # An unrestricted count almost never reflects the question;
            # NaLIR rejects mappings without node correspondence.
            raise TranslationError("no restriction node matched the question")
        return SimpleAggregateQuery(
            AggregateSpec(function, column), tuple(predicates)
        )

    def answer(self, question: str) -> Value:
        """Translate, demand full parse-tree correspondence, execute.

        NaLIR requires every content node of the parse tree to map onto a
        query-tree node; questions with unmapped content words produce
        row sets or errors rather than a single numeric value (the paper
        measured only 13.6% of translated queries returning one number).
        """
        query = self.translate(question)
        self._require_full_mapping(question)
        result = execute_query(self.database, query)
        if not isinstance(result, (int, float)):
            raise TranslationError("query returned no numeric value")
        return result

    def _require_full_mapping(self, question: str) -> None:
        from repro.ir.analysis import STOPWORDS

        question_words = {
            "how", "what", "which", "who", "when", "where", "why", "much",
        }
        lowered = normalize_string(question)
        for word in tokenize(question):
            if word in STOPWORDS or word in _AGGREGATION_CUES:
                continue
            if word in question_words:
                continue
            if any(char.isdigit() for char in word):
                continue
            term = self._analyzer.term(word)
            if term is None or term in self._columns or term in self._schema_terms:
                continue
            if any(word in key for key in self._values):
                continue
            if lowered and any(
                word in key for key in self._values if key in lowered
            ):
                continue
            raise TranslationError(
                f"content word {word!r} has no query-tree correspondence"
            )

    def _aggregation_column(self, words, function) -> ColumnRef:
        for word in words:
            term = self._analyzer.term(word)
            if term and term in self._columns:
                column = self._columns[term]
                table = self.database.table(column.table)
                if table.column(column.column).type is ColumnType.NUMERIC:
                    return column
        if len(self.database.tables) == 1:
            return STAR
        return ColumnRef(self.database.tables[0].name, "*")

    def _predicates(self, question: str, words) -> list[Predicate]:
        """Exact value mentions only; one predicate per column."""
        lowered = normalize_string(question)
        predicates: dict[ColumnRef, Predicate] = {}
        for key, bindings in self._values.items():
            if key and key in lowered:
                column, value = bindings[0]
                if column not in predicates:
                    predicates[column] = Predicate(column, value)
        return list(predicates.values())


class ClaimBusterKB:
    """ClaimBuster-KB with NaLIR as the knowledge-base interface."""

    def __init__(self, database: Database) -> None:
        self.nalir = NaLIR(database)
        self.translated = 0
        self.attempted = 0

    def predict_correct(self, claim: Claim) -> bool:
        """True unless some answer was obtained and none matched.

        Unanswerable claims get the benefit of the doubt — flagging
        everything the knowledge base cannot answer would flag nearly the
        whole document (this matches the paper's low ClaimBuster-KB
        recall: hardly any claims are flagged at all).
        """
        answered = False
        for question in generate_questions(claim):
            self.attempted += 1
            try:
                answer = self.nalir.answer(question)
            except (TranslationError, ReproError):
                continue
            self.translated += 1
            answered = True
            if rounds_to(answer, claim.claimed_value):
                return True
        return not answered

    def flags(self, claim: Claim) -> bool:
        return not self.predict_correct(claim)
