"""ClaimBuster-FM: fact-matching against a verified-statement repository.

Two aggregation variants from the paper: ``Max`` uses the truth value of
the most similar repository statement; ``MV`` takes a similarity-weighted
majority vote over the top matches. A claim is flagged as erroneous when
the aggregated truth value is False. Similarity is TF-IDF over our IR
engine — the same family of scoring ClaimBuster's retrieval uses.
"""

from __future__ import annotations

import enum

from repro.baselines.factbase import FactRepository
from repro.ir.analysis import Analyzer
from repro.ir.index import InvertedIndex
from repro.ir.search import search
from repro.text.claims import Claim


class FmMode(enum.Enum):
    MAX = "max"
    MV = "majority_vote"


class ClaimBusterFM:
    """Verify claims by fact matching (paper baseline)."""

    def __init__(
        self,
        repository: FactRepository,
        mode: FmMode = FmMode.MAX,
        top_k: int = 5,
        min_similarity: float = 0.01,
    ) -> None:
        self.mode = mode
        self.top_k = top_k
        self.min_similarity = min_similarity
        self._index = InvertedIndex(Analyzer())
        for fact in repository.facts:
            self._index.add(fact, text=fact.statement)

    def predict_correct(self, claim: Claim) -> bool:
        """True if the claim is predicted correct (not flagged)."""
        terms = {
            token.lower: 1.0
            for token in claim.sentence.tokens
            if token.is_word
        }
        hits = [
            hit
            for hit in search(self._index, terms, top_k=self.top_k)
            if hit.score >= self.min_similarity
        ]
        if not hits:
            # No matching verified statement: default to "correct" —
            # fact-checkers cannot flag what they never checked.
            return True
        if self.mode is FmMode.MAX:
            return hits[0].payload.truth
        weight_true = sum(h.score for h in hits if h.payload.truth)
        weight_false = sum(h.score for h in hits if not h.payload.truth)
        return weight_true >= weight_false

    def flags(self, claim: Claim) -> bool:
        return not self.predict_correct(claim)
