"""Fact repository: the knowledge source behind ClaimBuster-FM.

ClaimBuster-FM "matches input text against a database containing manually
verified statements with truth values" (paper Section 7.3). Real
repositories (PolitiFact et al.) cover *popular* claims — political
statements repeated across outlets — but not the long tail of
data-specific claims. The synthetic repository reproduces that coverage
profile: a sample of claims from *other* articles (popular topics repeat
across outlets) plus evergreen general statements, each with a truth
label.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.generator import Corpus

_GENERIC_FACTS = (
    ("the population of the united states is over three hundred million", True),
    ("the earth orbits the sun once a year", True),
    ("the great wall of china is visible from the moon", False),
    ("a marathon is longer than forty kilometers", True),
    ("the average human body temperature is ninety-eight degrees", True),
    ("lightning never strikes the same place twice", False),
    ("the amazon is the longest river in the world", False),
    ("most of the earth's surface is covered by water", True),
    ("the senate has one hundred members", True),
    ("a leap year happens every two years", False),
)


@dataclass(frozen=True)
class VerifiedFact:
    """One manually fact-checked statement."""

    statement: str
    truth: bool


@dataclass
class FactRepository:
    facts: list[VerifiedFact]

    def __len__(self) -> int:
        return len(self.facts)


def build_fact_repository(
    corpus: Corpus,
    exclude_case_id: str | None = None,
    coverage: float = 0.25,
    suspicious_coverage: float = 0.7,
    label_noise: float = 0.25,
    seed: int = 7,
) -> FactRepository:
    """Sample a repository from the corpus.

    Human fact-checkers select *suspicious* statements: erroneous claims
    enter the repository at ``suspicious_coverage`` while mundane correct
    claims enter at ``coverage``, so repositories skew toward "False"
    verdicts (as PolitiFact-style archives do). Claims of the article
    under test are excluded — its specific numbers were never checked by
    anyone, which is exactly the long-tail problem the paper identifies.

    ``label_noise`` models the transfer gap: a verdict recorded for a
    *similar-but-different* statement (other outlet, other time window)
    is the wrong verdict for this one — the paper traced ClaimBuster-FM's
    apparent recall to exactly such spurious matches.
    """
    rng = random.Random(seed)
    facts = [VerifiedFact(text, truth) for text, truth in _GENERIC_FACTS]
    for case in corpus.cases:
        if case.case_id == exclude_case_id:
            continue
        for claim, truth in zip(case.claims, case.ground_truth):
            rate = coverage if truth.is_correct else suspicious_coverage
            if rng.random() < rate:
                label = truth.is_correct
                if rng.random() < label_noise:
                    label = not label
                facts.append(VerifiedFact(claim.sentence.text, label))
    return FactRepository(facts)
