"""Deterministic fault injection for resilience testing.

The recovery paths this repo promises — worker-death retry, corrupt-cache
quarantine, deadline degradation, per-claim error events — are worthless
if they can only be exercised by real hardware failures. This module puts
named *fire points* at the places faults matter and arms them from the
environment, so tests inject precise failures into otherwise-unmodified
production code paths (including forked/spawned worker processes, which
inherit the environment).

Fire points (``fire(point, key, payload)`` is a no-op unless armed):

- ``parallel.shard``  — key = shard ordinal, at worker shard start;
- ``harness.case``    — key = corpus case index, before each case (fires
  in both the sequential runner and parallel worker shards);
- ``checker.stage``   — key = pipeline stage (``match``, ``candidates``,
  ``inference``, ``verdicts``), at that stage boundary;
- ``checker.rung``    — key = degradation rung (``full``, ``scope``,
  ``no_exec``), at the start of that inference attempt;
- ``checker.claim``   — key = the claim mention text, per claim;
- ``diskcache.read``  — key = cache file name, payload = its path;
- ``queue.worker``    — key = worker name, at the top of each queue
  worker loop (``raise`` kills the worker thread before it leases);
- ``queue.lease``     — key = job group id, after a group is leased but
  outside the nack handler (``raise`` simulates a worker dying mid-job:
  no ack, no nack — recovery is lease expiry + re-delivery);
- ``queue.exec``      — key = job group id, inside the execution handler
  (``raise`` exercises the clean nack -> retry -> dead-letter path);
- ``budget.estimate`` — key = sorted table names of the cube, payload =
  estimated cell count, fired where the engine sizes a cube *before*
  materializing it (``raise`` is translated into
  :class:`~repro.errors.BudgetExceeded`, driving the space-budget
  degradation ladder without needing a hostile database);
- ``admission.cost``  — key = client id, payload = computed request
  cost, fired during cost-based admission in the async front end
  (``raise`` is translated into
  :class:`~repro.errors.AdmissionRejectedError` — a structured 413 —
  exercising the rejection path under normal load);
- ``audit.bitflip``   — the integrity-audit corruption points, one per
  persisted/served tier, distinguished by key prefix: ``cell:<stem>``
  (``raise`` → poison a cube cell value *before* the CRC is computed — a
  semantic corruption only a recompute can catch), ``<file>.cube``
  (``bitflip`` → flip a byte of the written cache file; the CRC catches
  it), ``memo:<fingerprint>`` (``raise`` → poison an incremental-memo
  payload after its CRC is taken), ``verdict:<group>`` (``raise`` → flip
  a verdict payload just before it is acked/memoized — the wrong-verdict
  driver the shadow auditor must catch), ``journal`` / the checkpoint
  file name (``bitflip`` on the file after a write).

Actions: ``kill`` (``os._exit``, simulating SIGKILL/OOM), ``raise``
(:class:`~repro.errors.InjectedFault`), ``sleep`` (consume ``seconds`` of
wall clock, for deadline tests), ``corrupt`` (scribble over the payload
path before it is read), ``bitflip`` (XOR one byte in the middle of the
payload path — survives framing, caught only by checksums or recompute
comparison). Each spec fires at most ``times`` times
(0 = unlimited) — "at most N times **across processes**" is arbitrated
through ``O_EXCL`` marker files in a shared state directory, so a kill
fault consumed by the first worker does not re-fire on the retry.

This module is a leaf (stdlib + ``repro.errors``): the engine, disk
cache, and checker import it without dragging in — or cycling with — the
harness package. Tests use the :mod:`repro.harness.faults` façade.
"""

from __future__ import annotations

import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path

from repro.errors import InjectedFault, ReproError

#: Environment variable holding encoded fault specs (``;``-separated).
ENV_FAULTS = "REPRO_FAULTS"
#: Environment variable naming the shared cross-process state directory.
ENV_STATE = "REPRO_FAULT_STATE"

_FIELD_SEP = "|"
_SPEC_SEP = ";"
_ACTIONS = frozenset({"kill", "raise", "sleep", "corrupt", "bitflip"})

#: Exit code of a ``kill`` action — distinctive in worker-death tests.
KILL_EXIT_CODE = 70


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where it fires, what it does, how often."""

    point: str
    action: str
    match: str = "*"
    seconds: float = 0.0
    times: int = 1

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {sorted(_ACTIONS)})"
            )
        for text in (self.point, self.match):
            if _FIELD_SEP in text or _SPEC_SEP in text:
                raise ReproError(
                    f"fault fields must not contain {_FIELD_SEP!r} or "
                    f"{_SPEC_SEP!r}: {text!r}"
                )

    def encode(self) -> str:
        return _FIELD_SEP.join(
            [
                self.point,
                self.action,
                self.match,
                repr(self.seconds),
                str(self.times),
            ]
        )

    @classmethod
    def decode(cls, text: str) -> "FaultSpec":
        parts = text.split(_FIELD_SEP)
        if len(parts) != 5:
            raise ReproError(f"malformed fault spec: {text!r}")
        point, action, match, seconds, times = parts
        return cls(point, action, match, float(seconds), int(times))


def encode_specs(specs: tuple[FaultSpec, ...]) -> str:
    return _SPEC_SEP.join(spec.encode() for spec in specs)


def decode_specs(text: str) -> tuple[FaultSpec, ...]:
    return tuple(
        FaultSpec.decode(part) for part in text.split(_SPEC_SEP) if part
    )


class FaultInjector:
    """Evaluates armed specs at fire points and executes their actions."""

    def __init__(
        self, specs: tuple[FaultSpec, ...], state_dir: Path | None
    ) -> None:
        self.specs = specs
        self.state_dir = state_dir
        self._local_counts: dict[FaultSpec, int] = {}

    def fire(self, point: str, key: str, payload: object) -> None:
        for spec in self.specs:
            if spec.point != point or not fnmatchcase(key, spec.match):
                continue
            if self._claim_budget(spec):
                self._act(spec, point, key, payload)

    def _claim_budget(self, spec: FaultSpec) -> bool:
        """Atomically claim one firing (False once ``times`` are spent)."""
        if spec.times <= 0:
            return True
        if self.state_dir is None:
            count = self._local_counts.get(spec, 0)
            if count >= spec.times:
                return False
            self._local_counts[spec] = count + 1
            return True
        # Cross-process arbitration: O_EXCL creation of marker k succeeds
        # in exactly one process, so concurrent workers (and retries after
        # a kill) together fire at most ``times`` times.
        import hashlib

        digest = hashlib.sha256(spec.encode().encode("utf-8")).hexdigest()
        for k in range(spec.times):
            marker = self.state_dir / f"{digest[:16]}.{k}"
            try:
                fd = os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False  # state dir gone: disarm rather than over-fire
            os.close(fd)
            return True
        return False

    def _act(
        self, spec: FaultSpec, point: str, key: str, payload: object
    ) -> None:
        if spec.action == "sleep":
            time.sleep(spec.seconds)
        elif spec.action == "raise":
            raise InjectedFault(point, key)
        elif spec.action == "corrupt":
            if isinstance(payload, (str, Path)):
                path = Path(payload)
                if path.exists():
                    path.write_bytes(b"\x00repro injected corruption\x00")
        elif spec.action == "bitflip":
            # One flipped byte mid-file: framing survives, the content
            # lies. Only a checksum (or recompute) can tell.
            if isinstance(payload, (str, Path)):
                path = Path(payload)
                try:
                    data = bytearray(path.read_bytes())
                except OSError:
                    return
                if data:
                    data[len(data) // 2] ^= 0x40
                    try:
                        path.write_bytes(bytes(data))
                    except OSError:
                        pass
        elif spec.action == "kill":
            # Simulate SIGKILL/OOM: no cleanup, no exception propagation.
            os._exit(KILL_EXIT_CODE)


#: Injector armed programmatically (same-process tests without env vars).
_installed: FaultInjector | None = None
#: Parse cache for env-armed specs: (raw, state) -> injector.
_env_cache: tuple[tuple[str, str | None], FaultInjector | None] = (
    ("", None),
    None,
)


def _current() -> FaultInjector | None:
    raw = os.environ.get(ENV_FAULTS)
    if not raw:
        return _installed
    global _env_cache
    state = os.environ.get(ENV_STATE) or None
    cache_key = (raw, state)
    if _env_cache[0] != cache_key:
        injector = FaultInjector(
            decode_specs(raw), Path(state) if state else None
        )
        _env_cache = (cache_key, injector)
    return _env_cache[1]


def fire(point: str, key: str = "", payload: object = None) -> None:
    """Hit a fire point. No-op (one env lookup) when nothing is armed."""
    injector = _current()
    if injector is not None:
        injector.fire(point, key, payload)


def install(
    specs: tuple[FaultSpec, ...], state_dir: Path | None = None
) -> None:
    """Arm faults in this process only (no env, not inherited by workers)."""
    global _installed
    _installed = FaultInjector(specs, state_dir)


def uninstall() -> None:
    global _installed
    _installed = None


@contextmanager
def active(*specs: FaultSpec, state_dir: str | Path | None = None):
    """Arm ``specs`` through the environment for the duration of the block.

    Worker processes started inside the block (fork or spawn) inherit the
    environment and therefore the armed faults; the shared state directory
    (a fresh temp dir unless given) enforces fire budgets across all of
    them. Restores the previous environment on exit.
    """
    owns_dir = state_dir is None
    state = Path(state_dir) if state_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro-faults-")
    )
    state.mkdir(parents=True, exist_ok=True)
    saved = {name: os.environ.get(name) for name in (ENV_FAULTS, ENV_STATE)}
    os.environ[ENV_FAULTS] = encode_specs(specs)
    os.environ[ENV_STATE] = str(state)
    try:
        yield state
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        if owns_dir:
            import shutil

            shutil.rmtree(state, ignore_errors=True)
