"""Fault-injection harness: the test-facing façade over :mod:`repro.faults`.

The injector itself lives in the leaf module ``repro.faults`` so the
engine, disk cache, and checker can hit fire points without importing the
(heavy, and circular-from-their-position) harness package. Tests and
benchmarks import everything from here::

    from repro.harness.faults import FaultSpec, active

    with active(FaultSpec("parallel.case", "kill", match="2")):
        run = run_corpus_parallel(corpus, workers=2, retry=RetryPolicy())

See the :mod:`repro.faults` docstring for the fire-point and action
catalog, and ARCHITECTURE.md ("Failure domains & degradation ladder")
for which recovery path each point exercises.
"""

from __future__ import annotations

from repro.errors import InjectedFault
from repro.faults import (
    ENV_FAULTS,
    ENV_STATE,
    KILL_EXIT_CODE,
    FaultInjector,
    FaultSpec,
    active,
    decode_specs,
    encode_specs,
    fire,
    install,
    uninstall,
)

__all__ = [
    "ENV_FAULTS",
    "ENV_STATE",
    "KILL_EXIT_CODE",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "active",
    "decode_specs",
    "encode_specs",
    "fire",
    "install",
    "uninstall",
]
