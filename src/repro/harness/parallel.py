"""Sharded, process-parallel corpus verification with crash recovery.

Cases are grouped by database (the unit of checker reuse) and whole groups
are dealt to worker shards with a deterministic greedy balancer, so:

- fragment extraction, the fragment index, and the engine's in-memory
  result cache are built once per database inside each worker (via
  :class:`~repro.harness.runner.CheckerPool`), never split across workers;
- a parallel run visits every case with exactly the same checker state as
  the sequential runner, making results — verdicts, metrics, and engine
  counters — identical by construction, not merely statistically close.

Workers receive the case list through the process-pool initializer: under
the ``fork`` start method (Linux) the corpus is inherited copy-on-write at
no serialization cost; under ``spawn`` it is pickled once per worker.
Per-case :class:`~repro.harness.metrics.CaseResult` objects travel back
pickled and are merged in corpus order, so a parallel
:class:`~repro.harness.runner.CorpusRun` is indistinguishable from a
sequential one. Combine with ``AggCheckerConfig.cache_dir`` to let
concurrent workers share one warm disk cube cache.

**Failure model.** A worker that dies (SIGKILL, OOM, segfault) breaks the
whole process pool: every unfinished shard fails at once. The run
survives: failed cases are retried one at a time in *isolated*
single-worker pools (a poison case can only kill its own sandbox, never a
neighbor's results) with bounded exponential backoff between attempts;
cases that keep failing are quarantined into ``CorpusRun.quarantined``
with their last error, and the run completes with verdicts bit-identical
to a sequential run for every surviving case. Engine-stat *counters* for
retried cases may differ from an uninterrupted run (a fresh sandbox
checker starts with cold caches); verdicts and quality metrics cannot.
Pass ``checkpoint=`` to persist partial results after every shard, and
``resume=True`` to continue a killed run (see
:mod:`repro.harness.checkpoint`).
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import AggCheckerConfig
from repro.corpus.generator import Corpus
from repro.corpus.spec import TestCase
from repro.faults import fire
from repro.harness.checkpoint import CorpusCheckpoint, open_checkpoint
from repro.harness.metrics import CaseResult, aggregate_metrics
from repro.harness.runner import CheckerPool, CorpusRun, merge_stats

#: Worker-process state installed by the pool initializer.
_WORKER_STATE: tuple[list[TestCase], AggCheckerConfig | None] | None = None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff plus decorrelated jitter.

    ``max_attempts`` counts the original attempt plus retries: the default
    of 3 gives a case that was innocent collateral of a neighboring crash
    two clean chances before quarantine. :meth:`backoff_seconds` is the
    deterministic exponential schedule (the reproducible floor tests pin
    down); :meth:`sleep_seconds` layers *decorrelated jitter* on top —
    uniform in ``[base, min(cap, 3 * previous sleep)]`` — so many
    consumers retrying the same shared resource (the service worker pool,
    clients honoring 429s) decorrelate instead of thundering back in
    lockstep. Callers that retry strictly one at a time (the corpus
    runner's isolation sandbox) still benefit: the jittered value is
    always within ``[backoff_seconds(1), backoff_cap]``.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def backoff_seconds(self, retry_ordinal: int) -> float:
        """Deterministic sleep before the ``retry_ordinal``-th retry (1-based)."""
        return min(
            self.backoff_cap,
            self.backoff_base * (2 ** (retry_ordinal - 1)),
        )

    def sleep_seconds(
        self,
        retry_ordinal: int,
        previous: float | None = None,
        rng: "random.Random | None" = None,
    ) -> float:
        """Decorrelated-jitter sleep before the next retry.

        ``previous`` is the sleep used before the prior retry (None for
        the first): the next sleep is drawn uniformly from
        ``[backoff_base, min(cap, 3 * previous)]``, the AWS
        "decorrelated jitter" recipe — successive retries spread out over
        an exponentially growing window instead of synchronizing on the
        deterministic schedule. Pass a seeded ``rng`` for reproducible
        tests; the module default is shared process-wide.
        """
        generator = rng if rng is not None else random
        if previous is None or previous <= 0:
            previous = self.backoff_base
        ceiling = min(self.backoff_cap, 3.0 * previous)
        floor = min(self.backoff_base, ceiling)
        jittered = generator.uniform(floor, ceiling)
        # Never sleep less than the deterministic first-step floor, never
        # more than the cap — the bounds tests rely on.
        return min(self.backoff_cap, max(jittered, floor))


def resolve_workers(workers: int | None) -> int:
    """Map the CLI convention (0 or None = all cores) to a worker count."""
    if not workers:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def shard_cases(cases: list[TestCase], n_shards: int) -> list[list[int]]:
    """Deal case indices to shards, keeping database groups whole.

    Groups (all cases sharing one database object) are assigned
    greedily to the least-loaded shard in first-seen order — deterministic
    for a given corpus, balanced to within one group's size. Shard-local
    indices stay in corpus order so checker state evolves exactly as in a
    sequential run. Empty shards are dropped.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    groups: dict[tuple[int, int], list[int]] = {}
    for index, case in enumerate(cases):
        key = (id(case.database), id(case.data_dictionary))
        groups.setdefault(key, []).append(index)
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    for indices in groups.values():
        target = min(range(n_shards), key=lambda shard: (loads[shard], shard))
        shards[target].extend(indices)
        loads[target] += len(indices)
    return [sorted(shard) for shard in shards if shard]


def _init_worker(
    cases: list[TestCase], config: AggCheckerConfig | None
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (cases, config)


def _run_shard(
    indices: list[int], shard_key: str = ""
) -> list[tuple[int, CaseResult]]:
    assert _WORKER_STATE is not None, "worker initializer did not run"
    fire("parallel.shard", shard_key)
    cases, config = _WORKER_STATE
    pool = CheckerPool(config)
    results: list[tuple[int, CaseResult]] = []
    for index in indices:
        fire("harness.case", str(index))
        results.append((index, pool.run(cases[index])))
    return results


def _run_isolated(
    cases: list[TestCase],
    config: AggCheckerConfig | None,
    index: int,
    context,
) -> CaseResult:
    """One case in a fresh single-worker sandbox pool.

    A poison case (one that kills every worker that touches it) can only
    take down its own pool here; previously-recovered results and the
    other retries are untouched, and the crash surfaces as an ordinary
    exception for the retry loop to count.
    """
    with ProcessPoolExecutor(
        max_workers=1,
        mp_context=context,
        initializer=_init_worker,
        initargs=(cases, config),
    ) as executor:
        pairs = executor.submit(_run_shard, [index], "retry").result()
    return pairs[0][1]


def _assemble(
    done: dict[int, CaseResult], quarantined: dict[int, str]
) -> CorpusRun:
    results = [done[index] for index in sorted(done)]
    return CorpusRun(
        results,
        aggregate_metrics(results),
        merge_stats(results),
        dict(sorted(quarantined.items())),
    )


def run_corpus_parallel(
    corpus: Corpus,
    config: AggCheckerConfig | None = None,
    limit: int | None = None,
    workers: int = 0,
    retry: RetryPolicy | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
) -> CorpusRun:
    """Verify a corpus across ``workers`` processes (0 = one per CPU).

    Falls back to the in-process sequential runner when one worker (or one
    shard) would do — the results are identical either way, so callers can
    pass ``workers`` straight from a CLI flag. Worker crashes are
    recovered per ``retry`` (see :class:`RetryPolicy` and the module
    docstring); ``checkpoint``/``resume`` persist and reload partial
    results.
    """
    from repro.harness.runner import run_corpus  # lazy: runner delegates here

    retry = retry or RetryPolicy()
    cases = corpus.cases if limit is None else corpus.cases[:limit]
    done, quarantined, store = open_checkpoint(
        cases, config, checkpoint, resume
    )
    pending = [
        index
        for index in range(len(cases))
        if index not in done and index not in quarantined
    ]
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(pending) <= 1:
        return run_corpus(
            corpus, config, limit=limit, workers=1,
            checkpoint=checkpoint, resume=resume,
        )
    local_shards = shard_cases([cases[index] for index in pending], n_workers)
    if len(local_shards) <= 1:
        return run_corpus(
            corpus, config, limit=limit, workers=1,
            checkpoint=checkpoint, resume=resume,
        )
    # shard_cases dealt positions within `pending`; lift to corpus indices.
    shards = [[pending[local] for local in shard] for shard in local_shards]

    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    failed: list[int] = []
    with ProcessPoolExecutor(
        max_workers=len(shards),
        mp_context=context,
        initializer=_init_worker,
        initargs=(cases, config),
    ) as executor:
        futures = {
            executor.submit(_run_shard, shard, str(ordinal)): shard
            for ordinal, shard in enumerate(shards)
        }
        for future in as_completed(futures):
            shard = futures[future]
            try:
                pairs = future.result()
            except (BrokenProcessPool, Exception):
                # A dead worker breaks the whole pool: every unfinished
                # shard lands here at once. Collect and recover below.
                failed.extend(shard)
                continue
            done.update(pairs)
            if store is not None:
                store.save(done, quarantined)

    _recover(
        cases, config, context, retry, sorted(set(failed) - set(done)),
        done, quarantined, store,
    )
    return _assemble(done, quarantined)


def _recover(
    cases: list[TestCase],
    config: AggCheckerConfig | None,
    context,
    retry: RetryPolicy,
    failed: list[int],
    done: dict[int, CaseResult],
    quarantined: dict[int, str],
    store: CorpusCheckpoint | None,
) -> None:
    """Retry failed cases in isolation; quarantine repeat offenders.

    The shard run was attempt 1 for every failed case; each gets up to
    ``max_attempts - 1`` isolated retries with exponential backoff.
    Correctness over throughput on this path: one sandbox pool per
    attempt is slow, but a poison document can never corrupt or abort a
    neighbor, and attempt accounting stays exact.
    """
    for index in failed:
        last_error = "failed in worker shard (no retry budget)"
        slept: float | None = None
        for retry_ordinal in range(1, retry.max_attempts):
            slept = retry.sleep_seconds(retry_ordinal, previous=slept)
            time.sleep(slept)
            try:
                done[index] = _run_isolated(cases, config, index, context)
                break
            except (BrokenProcessPool, Exception) as error:
                last_error = f"{type(error).__name__}: {error}"
        if index not in done:
            quarantined[index] = last_error
        if store is not None:
            store.save(done, quarantined)
