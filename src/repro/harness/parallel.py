"""Sharded, process-parallel corpus verification.

Cases are grouped by database (the unit of checker reuse) and whole groups
are dealt to worker shards with a deterministic greedy balancer, so:

- fragment extraction, the fragment index, and the engine's in-memory
  result cache are built once per database inside each worker (via
  :class:`~repro.harness.runner.CheckerPool`), never split across workers;
- a parallel run visits every case with exactly the same checker state as
  the sequential runner, making results — verdicts, metrics, and engine
  counters — identical by construction, not merely statistically close.

Workers receive the case list through the process-pool initializer: under
the ``fork`` start method (Linux) the corpus is inherited copy-on-write at
no serialization cost; under ``spawn`` it is pickled once per worker.
Per-case :class:`~repro.harness.metrics.CaseResult` objects travel back
pickled and are merged in corpus order, so a parallel
:class:`~repro.harness.runner.CorpusRun` is indistinguishable from a
sequential one. Combine with ``AggCheckerConfig.cache_dir`` to let
concurrent workers share one warm disk cube cache.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.core.config import AggCheckerConfig
from repro.corpus.generator import Corpus
from repro.corpus.spec import TestCase
from repro.harness.metrics import CaseResult, aggregate_metrics
from repro.harness.runner import CheckerPool, CorpusRun, merge_stats

#: Worker-process state installed by the pool initializer.
_WORKER_STATE: tuple[list[TestCase], AggCheckerConfig | None] | None = None


def resolve_workers(workers: int | None) -> int:
    """Map the CLI convention (0 or None = all cores) to a worker count."""
    if not workers:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def shard_cases(cases: list[TestCase], n_shards: int) -> list[list[int]]:
    """Deal case indices to shards, keeping database groups whole.

    Groups (all cases sharing one database object) are assigned
    greedily to the least-loaded shard in first-seen order — deterministic
    for a given corpus, balanced to within one group's size. Shard-local
    indices stay in corpus order so checker state evolves exactly as in a
    sequential run. Empty shards are dropped.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    groups: dict[tuple[int, int], list[int]] = {}
    for index, case in enumerate(cases):
        key = (id(case.database), id(case.data_dictionary))
        groups.setdefault(key, []).append(index)
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    for indices in groups.values():
        target = min(range(n_shards), key=lambda shard: (loads[shard], shard))
        shards[target].extend(indices)
        loads[target] += len(indices)
    return [sorted(shard) for shard in shards if shard]


def _init_worker(
    cases: list[TestCase], config: AggCheckerConfig | None
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (cases, config)


def _run_shard(indices: list[int]) -> list[tuple[int, CaseResult]]:
    assert _WORKER_STATE is not None, "worker initializer did not run"
    cases, config = _WORKER_STATE
    pool = CheckerPool(config)
    return [(index, pool.run(cases[index])) for index in indices]


def run_corpus_parallel(
    corpus: Corpus,
    config: AggCheckerConfig | None = None,
    limit: int | None = None,
    workers: int = 0,
) -> CorpusRun:
    """Verify a corpus across ``workers`` processes (0 = one per CPU).

    Falls back to the in-process sequential runner when one worker (or one
    shard) would do — the results are identical either way, so callers can
    pass ``workers`` straight from a CLI flag.
    """
    from repro.harness.runner import run_corpus  # lazy: runner delegates here

    cases = corpus.cases if limit is None else corpus.cases[:limit]
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(cases) <= 1:
        return run_corpus(corpus, config, limit=limit, workers=1)
    shards = shard_cases(cases, n_workers)
    if len(shards) <= 1:
        return run_corpus(corpus, config, limit=limit, workers=1)

    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    indexed: list[tuple[int, CaseResult]] = []
    with ProcessPoolExecutor(
        max_workers=len(shards),
        mp_context=context,
        initializer=_init_worker,
        initargs=(cases, config),
    ) as executor:
        for future in [executor.submit(_run_shard, shard) for shard in shards]:
            indexed.extend(future.result())

    indexed.sort(key=lambda pair: pair[0])
    results = [result for _, result in indexed]
    return CorpusRun(results, aggregate_metrics(results), merge_stats(results))
