"""Configuration variants for the paper's ablation studies.

:func:`run_ladder` executes a whole ladder through the corpus pipeline:
variants can fan out over worker processes and share one disk cube-cache
directory, so a sweep pays for each database's cube queries once instead
of once per variant (most ablations change scoring, not query results).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import replace

from repro.core.config import AggCheckerConfig
from repro.evalexec.scope import ScopeConfig
from repro.matching.context import ContextConfig

if TYPE_CHECKING:  # runner imports nothing from here; keep it lazy anyway
    from repro.corpus.generator import Corpus
    from repro.harness.runner import CorpusRun


def keyword_context_ladder() -> list[tuple[str, AggCheckerConfig]]:
    """Table 5 block 1 / Figure 11: keyword-context sources added one at
    a time (claim sentence -> previous sentence -> paragraph start ->
    synonyms -> headlines)."""
    base = AggCheckerConfig()
    steps = [
        ("Claim sentence", ContextConfig(False, False, False, False)),
        ("+ Previous sentence", ContextConfig(True, False, False, False)),
        ("+ Paragraph start", ContextConfig(True, True, False, False)),
        ("+ Synonyms", ContextConfig(True, True, True, False)),
        ("+ Headlines (current version)", ContextConfig(True, True, True, True)),
    ]
    return [(name, replace(base, context=config)) for name, config in steps]


def model_ladder() -> list[tuple[str, AggCheckerConfig]]:
    """Table 5 block 2 / Table 10: probabilistic-model variables added one
    at a time (relevance scores -> + evaluation results -> + priors)."""
    base = AggCheckerConfig()
    return [
        (
            "Relevance scores Sc",
            base.with_em(use_evaluations=False, use_priors=False),
        ),
        (
            "+ Evaluation results Ec",
            base.with_em(use_evaluations=True, use_priors=False),
        ),
        (
            "+ Learning priors Θ (current version)",
            base.with_em(use_evaluations=True, use_priors=True),
        ),
    ]


def hits_ladder(hits_values=(1, 10, 20, 30)) -> list[tuple[str, AggCheckerConfig]]:
    """Table 5 block 3 / Figure 13 left: the "# Hits" retrieval budget."""
    base = AggCheckerConfig()
    return [
        (f"# Hits = {hits}", replace(base, predicate_hits=hits))
        for hits in hits_values
    ]


def column_budget_ladder(
    budgets=(1, 2, 4, 6, 10),
) -> list[tuple[str, AggCheckerConfig]]:
    """Figure 13 right: the aggregation-column budget."""
    base = AggCheckerConfig()
    return [
        (f"# Aggregates = {budget}", replace(base, column_hits=budget))
        for budget in budgets
    ]


def pt_ladder(values=(0.5, 0.9, 0.99, 0.999, 0.9999)) -> list[tuple[str, AggCheckerConfig]]:
    """Figure 12: the assumed probability of encountering true claims."""
    base = AggCheckerConfig()
    return [(f"pT = {value}", base.with_em(p_true=value)) for value in values]


def evaluation_budget_ladder(
    budgets=(25, 100, 400, None),
) -> list[tuple[str, AggCheckerConfig]]:
    """Evaluation-scope budget (PickScope cost threshold)."""
    base = AggCheckerConfig()
    variants = []
    for budget in budgets:
        label = "full scope" if budget is None else f"budget = {budget}"
        variants.append(
            (
                label,
                base.with_em(scope=ScopeConfig(max_evaluations_per_claim=budget)),
            )
        )
    return variants


def run_ladder(
    ladder: list[tuple[str, AggCheckerConfig]],
    corpus: "Corpus",
    limit: int | None = None,
    workers: int = 1,
    cache_dir: str | None = None,
) -> list[tuple[str, "CorpusRun"]]:
    """Run every ladder variant over the corpus through one pipeline.

    ``workers`` shards each variant's cases over processes;
    ``cache_dir`` points all variants at one shared disk cube cache, so
    after the first variant warms it the rest mostly skip cube execution
    (the cache is keyed by database content and cube signature, not by
    pipeline configuration — sharing across variants is sound).
    """
    from repro.harness.runner import run_corpus

    runs = []
    for name, config in ladder:
        if cache_dir is not None:
            config = config.with_engine(cache_dir=cache_dir)
        runs.append((name, run_corpus(corpus, config, limit, workers=workers)))
    return runs
