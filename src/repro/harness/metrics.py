"""Metrics: precision / recall / F1 and top-k coverage (paper Section 7.1).

- *Recall*: fraction of truly erroneous claims the system flagged.
- *Precision*: fraction of flagged claims that are truly erroneous.
- *Top-k coverage*: percentage of claims whose ground-truth query is among
  the k most likely candidates (paper Definition 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.checker import CheckReport
from repro.core.verdict import ClaimVerdict
from repro.corpus.spec import GroundTruthClaim, TestCase
from repro.text.claims import Claim


@dataclass
class ClaimEvaluation:
    """Ground truth vs system output for one claim."""

    claim: Claim
    truth: GroundTruthClaim
    verdict: ClaimVerdict
    truth_rank: int | None  # rank of the ground-truth query (1 = top)

    @property
    def flagged(self) -> bool:
        return self.verdict.status.flagged

    @property
    def truly_erroneous(self) -> bool:
        return not self.truth.is_correct

    def covered_at(self, k: int) -> bool:
        return self.truth_rank is not None and self.truth_rank <= k


@dataclass
class CaseResult:
    """One article's evaluation."""

    case: TestCase
    report: CheckReport
    evaluations: list[ClaimEvaluation]


@dataclass
class RunMetrics:
    """Aggregated metrics over a set of case results."""

    n_claims: int
    n_erroneous: int
    n_flagged: int
    true_positives: int
    coverage_counts: dict[int, int]
    coverage_counts_correct: dict[int, int]
    coverage_counts_incorrect: dict[int, int]
    n_correct_claims: int
    total_seconds: float

    @property
    def recall(self) -> float:
        if self.n_erroneous == 0:
            return 0.0
        return self.true_positives / self.n_erroneous

    @property
    def precision(self) -> float:
        if self.n_flagged == 0:
            return 0.0
        return self.true_positives / self.n_flagged

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    def top_k_coverage(self, k: int) -> float:
        """Overall top-k coverage in percent."""
        if self.n_claims == 0:
            return 0.0
        return 100.0 * self.coverage_counts.get(k, 0) / self.n_claims

    def top_k_coverage_correct(self, k: int) -> float:
        if self.n_correct_claims == 0:
            return 0.0
        return 100.0 * self.coverage_counts_correct.get(k, 0) / self.n_correct_claims

    def top_k_coverage_incorrect(self, k: int) -> float:
        if self.n_erroneous == 0:
            return 0.0
        return (
            100.0 * self.coverage_counts_incorrect.get(k, 0) / self.n_erroneous
        )


#: Ranks at which coverage is tabulated (paper Figures 10/11, Table 10).
COVERAGE_KS = (1, 2, 3, 5, 10, 20)


def evaluate_case(case: TestCase, report: CheckReport) -> CaseResult:
    """Align report verdicts with the case's ground truth."""
    evaluations = []
    for claim, truth in zip(report.claims, case.ground_truth):
        verdict = report.verdict_for(claim)
        # Unverifiable (timed-out) verdicts carry no distribution: the
        # ground-truth query has no rank and counts as uncovered.
        rank = (
            verdict.distribution.rank_of(truth.query)
            if verdict.distribution is not None
            else None
        )
        evaluations.append(ClaimEvaluation(claim, truth, verdict, rank))
    return CaseResult(case, report, evaluations)


def aggregate_metrics(results: list[CaseResult]) -> RunMetrics:
    """Pool claim evaluations across cases into one metrics object."""
    evaluations = [e for result in results for e in result.evaluations]
    n_claims = len(evaluations)
    n_erroneous = sum(1 for e in evaluations if e.truly_erroneous)
    n_flagged = sum(1 for e in evaluations if e.flagged)
    true_positives = sum(
        1 for e in evaluations if e.flagged and e.truly_erroneous
    )
    coverage: dict[int, int] = {}
    coverage_correct: dict[int, int] = {}
    coverage_incorrect: dict[int, int] = {}
    for k in COVERAGE_KS:
        coverage[k] = sum(1 for e in evaluations if e.covered_at(k))
        coverage_correct[k] = sum(
            1 for e in evaluations if not e.truly_erroneous and e.covered_at(k)
        )
        coverage_incorrect[k] = sum(
            1 for e in evaluations if e.truly_erroneous and e.covered_at(k)
        )
    return RunMetrics(
        n_claims=n_claims,
        n_erroneous=n_erroneous,
        n_flagged=n_flagged,
        true_positives=true_positives,
        coverage_counts=coverage,
        coverage_counts_correct=coverage_correct,
        coverage_counts_incorrect=coverage_incorrect,
        n_correct_claims=n_claims - n_erroneous,
        total_seconds=sum(result.report.total_seconds for result in results),
    )
