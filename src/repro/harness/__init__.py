"""Evaluation harness: metrics, corpus runner, ablations, user studies.

Regenerates every measurement the paper reports: precision/recall/F1 on
erroneous-claim detection, top-k coverage of ground-truth queries,
processing statistics, and the simulated user studies.
"""

from repro.harness.metrics import (
    CaseResult,
    ClaimEvaluation,
    RunMetrics,
    aggregate_metrics,
    evaluate_case,
)
from repro.harness.checkpoint import CorpusCheckpoint, corpus_signature
from repro.harness.parallel import (
    RetryPolicy,
    run_corpus_parallel,
    shard_cases,
)
from repro.harness.runner import (
    CheckerPool,
    CorpusRun,
    merge_stats,
    run_case,
    run_corpus,
)
from repro.harness.users import (
    StudyOutcome,
    UserProfile,
    UserSimulator,
    run_crowd_study,
    run_user_study,
)

__all__ = [
    "CaseResult",
    "CheckerPool",
    "ClaimEvaluation",
    "CorpusCheckpoint",
    "CorpusRun",
    "RetryPolicy",
    "corpus_signature",
    "RunMetrics",
    "StudyOutcome",
    "UserProfile",
    "UserSimulator",
    "aggregate_metrics",
    "evaluate_case",
    "merge_stats",
    "run_case",
    "run_corpus",
    "run_corpus_parallel",
    "shard_cases",
    "run_crowd_study",
    "run_user_study",
]
