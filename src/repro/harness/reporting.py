"""Plain-text table/figure rendering for benchmark output.

Benchmarks print the same rows and series the paper reports; these helpers
keep the formatting consistent and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width table with a title rule."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    rendered_rows = []
    for row in rows:
        rendered = [_render_cell(cell) for cell in row]
        rendered += [""] * (columns - len(rendered))
        for index, cell in enumerate(rendered[:columns]):
            widths[index] = max(widths[index], len(cell))
        rendered_rows.append(rendered)
    lines = [f"=== {title} ==="]
    lines.append(
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append(
            "  ".join(rendered[i].ljust(widths[i]) for i in range(columns))
        )
    return "\n".join(lines)


def format_series(title: str, series: dict[str, Sequence[tuple]]) -> str:
    """Figure-style output: one labelled (x, y) series per line group."""
    lines = [f"=== {title} ==="]
    for label, points in series.items():
        rendered = ", ".join(
            f"({_render_cell(x)}, {_render_cell(y)})" for x, y in points
        )
        lines.append(f"  {label}: {rendered}")
    return "\n".join(lines)


def percent(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
