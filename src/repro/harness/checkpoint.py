"""Corpus-run checkpointing: resumable partial results on disk.

A long corpus run killed halfway (machine reboot, OOM, Ctrl-C) should not
repeat the cases it already finished. The runner writes one checkpoint
file after every completed shard (parallel) or case (sequential): an
atomically-replaced record stream of the per-case results and the
quarantine list, stamped with the work's identity — a configuration
digest plus one digest per case (document identity, claim count, database
content fingerprint). ``--resume`` refuses a checkpoint whose digests
disagree with the current run (resuming someone else's run, or the same
corpus under different knobs, would silently mix results). The comparison
is *prefix-based*: a run checkpointed under ``--limit 20`` resumes
cleanly into the full corpus, and a resumed run under a smaller limit
simply ignores results beyond it.

Format v3 frames each record with a CRC32 (mirroring the queue journal's
v2 design): a magic line, then ``crc32(payload) ++ len(payload) ++
payload`` per record, where record 0 is the identity header and every
further record is one pickled ``("result", index, CaseResult)`` or
``("quarantine", index, error)`` tuple. A truncated tail (torn write)
silently ends the readable prefix; an *intact* frame whose CRC or pickle
fails is skipped and counted (``corrupt_records``) so a single flipped
bit costs one recomputed case, never the whole run. Only a corrupt
header — the part that proves whose work this is — refuses the resume.

Checkpointed results are the pickled :class:`~repro.harness.metrics.CaseResult`
objects themselves — exactly what worker processes already ship back —
so a resumed run's merged metrics and verdicts are bit-identical to an
uninterrupted one.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

from repro import faults
from repro.errors import CheckpointError

if TYPE_CHECKING:
    from repro.core.config import AggCheckerConfig
    from repro.corpus.spec import TestCase
    from repro.harness.metrics import CaseResult

#: Bump when the checkpoint payload layout changes.
CHECKPOINT_VERSION = 3

#: First bytes of every v3 checkpoint file.
_MAGIC = b"RCKPT3\n"
#: Per-record frame header: CRC32 of the payload, then its length.
_FRAME = struct.Struct(">II")


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", "surrogatepass")).hexdigest()


def config_digest(config: "AggCheckerConfig | None") -> str:
    """Identity of the configuration a run executes under.

    AggCheckerConfig is a frozen dataclass tree: its repr enumerates every
    knob deterministically (the same property the incremental tier's
    config fingerprint relies on).
    """
    return _digest(f"v{CHECKPOINT_VERSION}\x1e{config!r}")


def case_digests(cases: "list[TestCase]") -> list[str]:
    """One identity digest per case, in corpus order."""
    from repro.db.diskcache import fingerprint_of

    return [
        _digest(
            f"{case.document.title}\x1f{len(case.claims)}\x1f"
            f"{fingerprint_of(case.database)}"
        )
        for case in cases
    ]


def corpus_signature(
    cases: "list[TestCase]", config: "AggCheckerConfig | None"
) -> str:
    """Single collapsed identity of one (case list, config) unit of work."""
    return _digest(
        "\x1e".join([config_digest(config), *case_digests(cases)])
    )


def _frame(obj: object) -> bytes:
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME.pack(zlib.crc32(body), len(body)) + body


def _iter_frames(blob: bytes, offset: int):
    """Yield ``(status, obj)`` per frame: ``"ok"``, ``"corrupt"`` (intact
    frame, bad CRC/pickle — skippable), or ``"truncated"`` (torn tail —
    iteration ends)."""
    while offset < len(blob):
        if offset + _FRAME.size > len(blob):
            yield "truncated", None
            return
        crc, length = _FRAME.unpack_from(blob, offset)
        offset += _FRAME.size
        if offset + length > len(blob):
            yield "truncated", None
            return
        body = blob[offset:offset + length]
        offset += length
        if zlib.crc32(body) != crc:
            yield "corrupt", None
            continue
        try:
            yield "ok", pickle.loads(body)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            yield "corrupt", None


def scan_checkpoint(path: str | Path) -> dict:
    """Read-only structural scrub of one checkpoint file.

    Never compares identity signatures (that is ``--resume``'s job) —
    this reports framing health for ``repro scrub``: record counts, CRC
    failures, and torn tails. A corrupt checkpoint is *repaired* by a
    resumed run, which skips the bad records, recomputes those cases, and
    atomically rewrites the file.
    """
    path = Path(path)
    report = {
        "path": str(path),
        "present": True,
        "format_ok": True,
        "records": 0,
        "corrupt": 0,
        "truncated": False,
    }
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        report["present"] = False
        return report
    except OSError:
        report["format_ok"] = False
        return report
    if not blob.startswith(_MAGIC):
        report["format_ok"] = False
        return report
    for status, _obj in _iter_frames(blob, len(_MAGIC)):
        if status == "truncated":
            report["truncated"] = True
        elif status == "corrupt":
            report["corrupt"] += 1
        else:
            report["records"] += 1
    return report


class CorpusCheckpoint:
    """One checkpoint file bound to one run's work identity."""

    def __init__(
        self,
        path: str | Path,
        config_sig: str,
        case_sigs: list[str],
    ) -> None:
        self.path = Path(path)
        self.config_sig = config_sig
        self.case_sigs = case_sigs
        #: Intact-but-corrupt records skipped by the last :meth:`load`
        #: (each costs one recomputed case on resume).
        self.corrupt_records = 0
        #: Whether the last :meth:`load` hit a torn tail.
        self.truncated = False

    def load(self) -> "tuple[dict[int, CaseResult], dict[int, str]]":
        """Saved ``(results, quarantined)``; empty when no file exists.

        Raises :class:`CheckpointError` for an unreadable header or an
        identity mismatch — resuming must never silently merge results
        from different work. Case identity is compared over the common
        prefix, so the checkpoint and the current run may use different
        ``--limit`` values; results beyond the current case list are
        dropped. Corrupt *body* records (CRC or pickle failure on an
        intact frame) and torn tails degrade to recomputing those cases,
        counted in :attr:`corrupt_records` / :attr:`truncated`.
        """
        self.corrupt_records = 0
        self.truncated = False
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return {}, {}
        except OSError as error:
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: {error}"
            ) from error
        if not blob.startswith(_MAGIC):
            # Garbage and pre-v3 checkpoints are indistinguishable here;
            # the message covers both readings.
            raise CheckpointError(
                f"checkpoint {self.path} is unreadable: missing v"
                f"{CHECKPOINT_VERSION} magic (unknown format)"
            )
        frames = _iter_frames(blob, len(_MAGIC))
        status, header = next(frames, ("truncated", None))
        if status != "ok" or not isinstance(header, dict):
            # Without the header we cannot prove whose work this is.
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: corrupt header"
            )
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has an unknown format"
            )
        if header.get("config") != self.config_sig:
            raise CheckpointError(
                f"checkpoint {self.path} was written under a different "
                "configuration; delete it (or drop --resume) to start over"
            )
        recorded = list(header.get("cases", []))
        common = min(len(recorded), len(self.case_sigs))
        if recorded[:common] != self.case_sigs[:common]:
            raise CheckpointError(
                f"checkpoint {self.path} was written for a different "
                "corpus; delete it (or drop --resume) to start over"
            )
        n_cases = len(self.case_sigs)
        results: dict[int, "CaseResult"] = {}
        quarantined: dict[int, str] = {}
        for status, record in frames:
            if status == "truncated":
                self.truncated = True
                break
            if status == "corrupt":
                self.corrupt_records += 1
                continue
            if not (isinstance(record, tuple) and len(record) == 3):
                self.corrupt_records += 1
                continue
            kind, index, value = record
            if not isinstance(index, int) or index >= n_cases:
                continue
            if kind == "result":
                results[index] = value
            elif kind == "quarantine":
                quarantined[index] = value
        return results, quarantined

    def save(
        self,
        results: "dict[int, CaseResult]",
        quarantined: dict[int, str],
    ) -> None:
        """Atomically replace the checkpoint with the current state."""
        header = {
            "version": CHECKPOINT_VERSION,
            "config": self.config_sig,
            "cases": self.case_sigs,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(_frame(header))
                for index in sorted(results):
                    handle.write(_frame(("result", index, results[index])))
                for index in sorted(quarantined):
                    handle.write(
                        _frame(("quarantine", index, quarantined[index]))
                    )
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # Fault point: flip a byte of the checkpoint just written (the
        # scrub CLI and resume path must detect and survive it).
        faults.fire("audit.bitflip", key=self.path.name, payload=self.path)


def open_checkpoint(
    cases: "list[TestCase]",
    config: "AggCheckerConfig | None",
    checkpoint: str | Path | None,
    resume: bool,
) -> "tuple[dict[int, CaseResult], dict[int, str], CorpusCheckpoint | None]":
    """Shared runner entry: ``(prior results, quarantined, store)``.

    Without ``resume`` an existing checkpoint is ignored (and overwritten
    by the first save); without ``checkpoint`` this is all empty/None.
    """
    if checkpoint is None:
        return {}, {}, None
    store = CorpusCheckpoint(
        checkpoint, config_digest(config), case_digests(cases)
    )
    if not resume:
        return {}, {}, store
    results, quarantined = store.load()
    return results, quarantined, store
