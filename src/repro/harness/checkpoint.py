"""Corpus-run checkpointing: resumable partial results on disk.

A long corpus run killed halfway (machine reboot, OOM, Ctrl-C) should not
repeat the cases it already finished. The runner writes one checkpoint
file after every completed shard (parallel) or case (sequential):
an atomically-replaced pickle of the per-case results and the quarantine
list, stamped with the work's identity — a configuration digest plus one
digest per case (document identity, claim count, database content
fingerprint). ``--resume`` refuses a checkpoint whose digests disagree
with the current run (resuming someone else's run, or the same corpus
under different knobs, would silently mix results). The comparison is
*prefix-based*: a run checkpointed under ``--limit 20`` resumes cleanly
into the full corpus, and a resumed run under a smaller limit simply
ignores results beyond it.

Checkpointed results are the pickled :class:`~repro.harness.metrics.CaseResult`
objects themselves — exactly what worker processes already ship back —
so a resumed run's merged metrics and verdicts are bit-identical to an
uninterrupted one.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import CheckpointError

if TYPE_CHECKING:
    from repro.core.config import AggCheckerConfig
    from repro.corpus.spec import TestCase
    from repro.harness.metrics import CaseResult

#: Bump when the checkpoint payload layout changes.
CHECKPOINT_VERSION = 2


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", "surrogatepass")).hexdigest()


def config_digest(config: "AggCheckerConfig | None") -> str:
    """Identity of the configuration a run executes under.

    AggCheckerConfig is a frozen dataclass tree: its repr enumerates every
    knob deterministically (the same property the incremental tier's
    config fingerprint relies on).
    """
    return _digest(f"v{CHECKPOINT_VERSION}\x1e{config!r}")


def case_digests(cases: "list[TestCase]") -> list[str]:
    """One identity digest per case, in corpus order."""
    from repro.db.diskcache import fingerprint_of

    return [
        _digest(
            f"{case.document.title}\x1f{len(case.claims)}\x1f"
            f"{fingerprint_of(case.database)}"
        )
        for case in cases
    ]


def corpus_signature(
    cases: "list[TestCase]", config: "AggCheckerConfig | None"
) -> str:
    """Single collapsed identity of one (case list, config) unit of work."""
    return _digest(
        "\x1e".join([config_digest(config), *case_digests(cases)])
    )


class CorpusCheckpoint:
    """One checkpoint file bound to one run's work identity."""

    def __init__(
        self,
        path: str | Path,
        config_sig: str,
        case_sigs: list[str],
    ) -> None:
        self.path = Path(path)
        self.config_sig = config_sig
        self.case_sigs = case_sigs

    def load(self) -> "tuple[dict[int, CaseResult], dict[int, str]]":
        """Saved ``(results, quarantined)``; empty when no file exists.

        Raises :class:`CheckpointError` for an unreadable file or an
        identity mismatch — resuming must never silently merge results
        from different work. Case identity is compared over the common
        prefix, so the checkpoint and the current run may use different
        ``--limit`` values; results beyond the current case list are
        dropped.
        """
        try:
            with self.path.open("rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return {}, {}
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as error:
            raise CheckpointError(
                f"unreadable checkpoint {self.path}: {error}"
            ) from error
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CHECKPOINT_VERSION
        ):
            raise CheckpointError(
                f"checkpoint {self.path} has an unknown format"
            )
        if payload.get("config") != self.config_sig:
            raise CheckpointError(
                f"checkpoint {self.path} was written under a different "
                "configuration; delete it (or drop --resume) to start over"
            )
        recorded = list(payload.get("cases", []))
        common = min(len(recorded), len(self.case_sigs))
        if recorded[:common] != self.case_sigs[:common]:
            raise CheckpointError(
                f"checkpoint {self.path} was written for a different "
                "corpus; delete it (or drop --resume) to start over"
            )
        n_cases = len(self.case_sigs)
        results = {
            index: result
            for index, result in payload["results"].items()
            if index < n_cases
        }
        quarantined = {
            index: error
            for index, error in payload["quarantined"].items()
            if index < n_cases
        }
        return results, quarantined

    def save(
        self,
        results: "dict[int, CaseResult]",
        quarantined: dict[int, str],
    ) -> None:
        """Atomically replace the checkpoint with the current state."""
        payload = {
            "version": CHECKPOINT_VERSION,
            "config": self.config_sig,
            "cases": self.case_sigs,
            "results": results,
            "quarantined": quarantined,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


def open_checkpoint(
    cases: "list[TestCase]",
    config: "AggCheckerConfig | None",
    checkpoint: str | Path | None,
    resume: bool,
) -> "tuple[dict[int, CaseResult], dict[int, str], CorpusCheckpoint | None]":
    """Shared runner entry: ``(prior results, quarantined, store)``.

    Without ``resume`` an existing checkpoint is ignored (and overwritten
    by the first save); without ``checkpoint`` this is all empty/None.
    """
    if checkpoint is None:
        return {}, {}, None
    store = CorpusCheckpoint(
        checkpoint, config_digest(config), case_digests(cases)
    )
    if not resume:
        return {}, {}, store
    results, quarantined = store.load()
    return results, quarantined, store
