"""Simulated user studies (paper Section 7.2, Appendix D).

The paper's studies compare *workflows*, not people: picking among ranked
query suggestions (AggChecker) versus writing SQL versus hunting through a
spreadsheet. The simulator encodes those workflows with seeded stochastic
users: per-action latencies, skill-dependent success probabilities, and
hard time limits. Outputs feed Figures 6-7 and Tables 3, 4, 8, 11.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.core.interactive import ResolutionFeature
from repro.harness.metrics import CaseResult


@dataclass(frozen=True)
class UserProfile:
    """One simulated participant."""

    name: str
    speed: float  # latency multiplier (lower = faster)
    sql_skill: float  # SQL success-probability multiplier


@dataclass
class VerificationEvent:
    """One claim resolved by a user at ``timestamp`` seconds."""

    timestamp: float
    correctly_verified: bool  # user identified the right query
    user_flags_claim: bool  # user marks the claim as erroneous
    truly_erroneous: bool
    feature: ResolutionFeature | None  # AggChecker UI feature used


@dataclass
class SessionResult:
    """One (user, article, tool) session."""

    tool: str
    user: UserProfile
    case_id: str
    events: list[VerificationEvent]
    time_limit: float

    def verified_by(self, timestamp: float) -> int:
        return sum(
            1
            for event in self.events
            if event.correctly_verified and event.timestamp <= timestamp
        )

    @property
    def total_verified(self) -> int:
        return self.verified_by(self.time_limit)

    @property
    def elapsed(self) -> float:
        if not self.events:
            return 0.0
        return min(self.events[-1].timestamp, self.time_limit)

    @property
    def claims_per_minute(self) -> float:
        elapsed = max(self.elapsed, 1e-6)
        return 60.0 * self.total_verified / elapsed

    def flag_counts(self) -> tuple[int, int, int]:
        """(true positives, flagged, truly erroneous).

        Flags only count within the time limit; the erroneous denominator
        covers the whole article — errors the user never reached count
        against recall, as in the paper's study."""
        reached = [e for e in self.events if e.timestamp <= self.time_limit]
        flagged = sum(1 for e in reached if e.user_flags_claim)
        tp = sum(
            1 for e in reached if e.user_flags_claim and e.truly_erroneous
        )
        erroneous = sum(1 for e in self.events if e.truly_erroneous)
        return tp, flagged, erroneous


def default_users(n: int = 8, seed: int = 23) -> list[UserProfile]:
    """The study cohort (paper: eight users, seven CS majors)."""
    rng = random.Random(seed)
    users = []
    for index in range(n):
        users.append(
            UserProfile(
                name=f"user_{index + 1}",
                speed=rng.uniform(0.8, 1.3),
                sql_skill=rng.uniform(0.7, 1.1) if index < n - 1 else 0.5,
            )
        )
    return users


class UserSimulator:
    """Generates sessions for the three tools."""

    def __init__(self, seed: int = 11) -> None:
        self.rng = random.Random(seed)

    # -- AggChecker workflow --------------------------------------------

    def aggchecker_session(
        self,
        result: CaseResult,
        user: UserProfile,
        time_limit: float,
        skill: float = 1.0,
        care: float = 1.0,
    ) -> SessionResult:
        """Resolve claims via ranked suggestions (Figure 3 workflow).

        ``care`` models attention: careless users (untrained crowd
        workers) sometimes accept the tentative verdict without actually
        checking the suggested query.
        """
        clock = 0.0
        events = []
        for evaluation in result.evaluations:
            rank = evaluation.truth_rank
            if self.rng.random() > care:
                # Rubber-stamp the system verdict without verifying.
                clock += self._latency(4.0, 1.5, user)
                events.append(
                    VerificationEvent(
                        timestamp=clock,
                        correctly_verified=False,
                        user_flags_claim=evaluation.verdict.status.flagged,
                        truly_erroneous=not evaluation.truth.is_correct,
                        feature=ResolutionFeature.TOP_1,
                    )
                )
                continue
            inspect = self._latency(14.0, 4.0, user)
            if rank == 1:
                clock += inspect + self._latency(5.0, 1.5, user)
                feature, resolved = ResolutionFeature.TOP_1, True
            elif rank is not None and rank <= 5:
                clock += inspect + self._latency(16.0, 5.0, user)
                feature, resolved = ResolutionFeature.TOP_5, True
            elif rank is not None and rank <= 10:
                clock += inspect + self._latency(26.0, 6.0, user)
                feature, resolved = ResolutionFeature.TOP_10, True
            else:
                clock += inspect + self._latency(55.0, 15.0, user)
                feature = ResolutionFeature.CUSTOM
                resolved = self.rng.random() < 0.85 * skill
            if resolved:
                flags = not evaluation.truth.is_correct
            else:
                # Fall back on the system's tentative verdict.
                flags = evaluation.verdict.status.flagged
            events.append(
                VerificationEvent(
                    timestamp=clock,
                    correctly_verified=resolved,
                    user_flags_claim=flags,
                    truly_erroneous=not evaluation.truth.is_correct,
                    feature=feature,
                )
            )
        return SessionResult(
            "aggchecker", user, result.case.case_id, events, time_limit
        )

    # -- SQL workflow ---------------------------------------------------

    def sql_session(
        self,
        result: CaseResult,
        user: UserProfile,
        time_limit: float,
    ) -> SessionResult:
        """Write one SQL query per claim against the raw schema."""
        clock = 0.0
        events = []
        for evaluation in result.evaluations:
            truth = evaluation.truth
            n_predicates = len(truth.query.all_predicates)
            compose = self._latency(55.0 + 18.0 * n_predicates, 15.0, user)
            clock += compose
            success = 0.8 - 0.2 * n_predicates
            if truth.context_mode in ("headline", "paragraph", "implicit"):
                success *= 0.6  # context is not in the claim sentence
            success *= user.sql_skill
            resolved = self.rng.random() < max(min(success, 0.95), 0.05)
            if resolved:
                flags = not truth.is_correct
            else:
                # Wrong query: the user sees a mismatching number and
                # sometimes misjudges the claim.
                flags = self.rng.random() < 0.1
            events.append(
                VerificationEvent(
                    timestamp=clock,
                    correctly_verified=resolved,
                    user_flags_claim=flags,
                    truly_erroneous=not truth.is_correct,
                    feature=None,
                )
            )
        return SessionResult(
            "sql", user, result.case.case_id, events, time_limit
        )

    # -- Spreadsheet workflow (crowd study) ------------------------------

    def spreadsheet_session(
        self,
        result: CaseResult,
        user: UserProfile,
        time_limit: float,
        scope: str = "document",
    ) -> SessionResult:
        """Manual filtering/counting in a sheet (Appendix D)."""
        clock = 0.0
        events = []
        success_base = 0.55 if scope == "paragraph" else 0.02
        for evaluation in result.evaluations:
            truth = evaluation.truth
            clock += self._latency(75.0, 25.0, user)
            difficulty = 1.0 - 0.25 * len(truth.query.all_predicates)
            resolved = self.rng.random() < success_base * max(difficulty, 0.2)
            if resolved:
                flags = not truth.is_correct
            else:
                flags = self.rng.random() < 0.05  # sheets rarely flag
            events.append(
                VerificationEvent(
                    timestamp=clock,
                    correctly_verified=resolved,
                    user_flags_claim=flags,
                    truly_erroneous=not truth.is_correct,
                    feature=None,
                )
            )
        return SessionResult(
            "spreadsheet", user, result.case.case_id, events, time_limit
        )

    def _latency(self, mean: float, stddev: float, user: UserProfile) -> float:
        return max(self.rng.gauss(mean, stddev), 1.0) * user.speed


@dataclass
class StudyOutcome:
    """All sessions of one study, with the paper's summary views."""

    sessions: list[SessionResult] = field(default_factory=list)

    def by_tool(self, tool: str) -> list[SessionResult]:
        return [s for s in self.sessions if s.tool == tool]

    def feature_usage(self) -> dict[ResolutionFeature, float]:
        """Share of claims resolved per UI feature (Table 3)."""
        counts: Counter[ResolutionFeature] = Counter()
        for session in self.by_tool("aggchecker"):
            for event in session.events:
                if event.feature is not None and event.timestamp <= session.time_limit:
                    counts[event.feature] += 1
        total = sum(counts.values()) or 1
        return {
            feature: 100.0 * counts.get(feature, 0) / total
            for feature in ResolutionFeature
        }

    def recall_precision(self, tool: str) -> tuple[float, float, float]:
        """Pooled user recall/precision/F1 on erroneous claims (Table 4)."""
        tp = flagged = erroneous = 0
        for session in self.by_tool(tool):
            session_tp, session_flagged, session_err = session.flag_counts()
            tp += session_tp
            flagged += session_flagged
            erroneous += session_err
        recall = tp / erroneous if erroneous else 0.0
        precision = tp / flagged if flagged else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return recall, precision, f1

    def throughput_by_user(self) -> dict[str, dict[str, float]]:
        """Average claims/minute per user per tool (Figure 7 left)."""
        output: dict[str, dict[str, float]] = {}
        for session in self.sessions:
            per_user = output.setdefault(session.user.name, {})
            rates = per_user.setdefault(session.tool, [])  # type: ignore[assignment]
            if isinstance(rates, list):
                rates.append(session.claims_per_minute)
        return {
            user: {
                tool: sum(rates) / len(rates)
                for tool, rates in tools.items()
                if isinstance(rates, list) and rates
            }
            for user, tools in output.items()
        }

    def throughput_by_article(self) -> dict[str, dict[str, float]]:
        """Average claims/minute per article per tool (Figure 7 right)."""
        output: dict[str, dict[str, list[float]]] = {}
        for session in self.sessions:
            per_case = output.setdefault(session.case_id, {})
            per_case.setdefault(session.tool, []).append(
                session.claims_per_minute
            )
        return {
            case: {
                tool: sum(rates) / len(rates) for tool, rates in tools.items()
            }
            for case, tools in output.items()
        }

    def average_speedup(self) -> float:
        """Mean AggChecker/SQL throughput ratio across users."""
        ratios = []
        for user, tools in self.throughput_by_user().items():
            agg = tools.get("aggchecker", 0.0)
            sql = tools.get("sql", 0.0)
            if agg and sql:
                ratios.append(agg / sql)
        return sum(ratios) / len(ratios) if ratios else 0.0

    def survey(self) -> dict[str, Counter]:
        """Preference survey derived from each user's experience (Table 8).

        Users who were much faster with the AggChecker report the
        strongest preference — the mapping is deterministic in the
        measured speedup, reproducing the paper's skew."""
        categories = ("Overall", "Learning", "Correct Claims", "Incorrect Claims")
        buckets = ("SQL++", "SQL+", "SQL~AC", "AC+", "AC++")
        results = {category: Counter() for category in categories}
        for user, tools in self.throughput_by_user().items():
            agg = tools.get("aggchecker", 0.0)
            sql = tools.get("sql", 1e-6)
            ratio = agg / max(sql, 1e-6)
            overall = "AC++" if ratio >= 4 else "AC+" if ratio >= 1.5 else "SQL~AC"
            results["Overall"][overall] += 1
            results["Learning"]["AC++" if ratio >= 3 else "AC+"] += 1
            results["Correct Claims"]["AC++" if ratio >= 2.5 else "AC+"] += 1
            results["Incorrect Claims"][
                "AC++" if ratio >= 5 else "AC+" if ratio >= 2 else "SQL~AC"
            ] += 1
        for category in categories:
            for bucket in buckets:
                results[category].setdefault(bucket, 0)
        return results


def run_user_study(
    case_results: list[CaseResult],
    n_users: int = 8,
    long_limit: float = 1200.0,
    short_limit: float = 300.0,
    seed: int = 11,
) -> StudyOutcome:
    """The on-site study: users alternate tools across six articles
    (two long with a 20-minute limit, four short with five minutes).

    Article selection mirrors the paper's: the study set must contain
    erroneous claims (their six articles held three), so error-bearing
    articles are preferred when picking the short ones.
    """
    ordered = sorted(case_results, key=lambda r: -len(r.case.ground_truth))
    long_cases = ordered[:2]
    rest = ordered[2:]
    with_errors = [r for r in rest if r.case.erroneous_count > 0]
    without = [r for r in rest if r.case.erroneous_count == 0]
    short_cases = (with_errors + without)[:4]
    simulator = UserSimulator(seed)
    users = default_users(n_users, seed + 1)
    outcome = StudyOutcome()
    for index, user in enumerate(users):
        for case_index, result in enumerate(long_cases + short_cases):
            limit = long_limit if result in long_cases else short_limit
            # Alternate tools; stagger by user so each article sees both.
            use_aggchecker = (index + case_index) % 2 == 0
            if use_aggchecker:
                outcome.sessions.append(
                    simulator.aggchecker_session(result, user, limit)
                )
            else:
                outcome.sessions.append(
                    simulator.sql_session(result, user, limit)
                )
    return outcome


def run_crowd_study(
    case_results: list[CaseResult],
    scope: str = "document",
    n_aggchecker: int = 19,
    n_sheet: int = 13,
    seed: int = 29,
) -> StudyOutcome:
    """The Mechanical Turk study (Appendix D): untrained workers, one
    article, AggChecker vs Google-Sheets-style verification."""
    simulator = UserSimulator(seed)
    rng = random.Random(seed + 1)
    outcome = StudyOutcome()
    # The AMT article must contain erroneous claims (the paper used [11],
    # which does); pick the first such case.
    target = next(
        (r for r in case_results if r.case.erroneous_count > 0),
        case_results[0],
    )
    if scope == "paragraph":
        limit = 600.0
    else:
        limit = 1200.0
    care = 0.75 if scope == "paragraph" else 0.35
    for index in range(n_aggchecker):
        worker = UserProfile(
            name=f"worker_a{index}", speed=rng.uniform(1.0, 1.8), sql_skill=0.3
        )
        # Crowd workers are untrained: custom-query success drops, and a
        # document-scope task invites rubber-stamping.
        outcome.sessions.append(
            simulator.aggchecker_session(
                target, worker, limit, skill=0.6, care=care
            )
        )
    for index in range(n_sheet):
        worker = UserProfile(
            name=f"worker_s{index}", speed=rng.uniform(1.0, 1.8), sql_skill=0.3
        )
        outcome.sessions.append(
            simulator.spreadsheet_session(target, worker, limit, scope=scope)
        )
    return outcome
