"""Run the AggChecker over corpus cases in fully automated mode.

Checker construction is the expensive per-case fixed cost (fragment
extraction, fragment indexing, compilation of the batched-matching
artifacts, join-graph setup); :class:`CheckerPool` amortizes it by keeping
one :class:`~repro.core.checker.AggChecker` per distinct database, so
cases sharing a database also share the engine's in-memory
:class:`~repro.db.cache.ResultCache` *and* the compiled fragment index
(shared term vocabulary, CSR postings, idf/norm arrays) that
``keyword_match_batch`` scores documents against. The sequential
:func:`run_corpus` and the process-parallel runner in
:mod:`repro.harness.parallel` are both built on the pool, which keeps
their per-case behavior (and therefore their results) identical.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.checker import AggChecker
from repro.core.config import AggCheckerConfig
from repro.corpus.generator import Corpus
from repro.corpus.spec import TestCase
from repro.db.engine import EngineStats
from repro.faults import fire
from repro.harness.checkpoint import open_checkpoint
from repro.harness.metrics import (
    CaseResult,
    RunMetrics,
    aggregate_metrics,
    evaluate_case,
)

if TYPE_CHECKING:
    from repro.harness.parallel import RetryPolicy


@dataclass
class CorpusRun:
    """All artifacts of one automated-verification pass over a corpus."""

    results: list[CaseResult]
    metrics: RunMetrics
    engine_stats: EngineStats = field(default_factory=EngineStats)
    #: Corpus index -> last error, for cases that exhausted their retry
    #: budget in the parallel runner (always empty for sequential runs,
    #: which let exceptions propagate). Quarantined cases contribute
    #: nothing to ``results`` or ``metrics``.
    quarantined: dict[int, str] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.metrics.total_seconds


@dataclass
class PoolEntry:
    """One pooled checker plus its per-database lock.

    ``lock`` serializes use of the (not thread-safe) checker: the service
    layer holds it for the duration of a request, so concurrent requests
    on *different* databases proceed in parallel while requests on the
    same database queue. ``keepalive`` pins whatever objects the entry's
    key was derived from (id()-keyed entries need their keyed objects
    alive for the key to stay unique).
    """

    key: object
    lock: threading.Lock
    checker: AggChecker | None = None
    keepalive: object = None


class CheckerPool:
    """One reusable :class:`AggChecker` per distinct database.

    Corpus cases are keyed by the identity of their database (and data
    dictionary) object: corpus generators that share a database across
    cases get fragment extraction, the fragment index, and the engine's
    result cache built once instead of once per case. The service layer
    keys by database *content* fingerprint instead (:meth:`entry_for` with
    an explicit key), so re-submitted requests find the warm checker and
    edited data transparently gets a fresh one.

    The pool is thread-safe: the entry map is guarded by one pool lock,
    and each entry carries its own lock under which its checker is built
    exactly once (and under which callers run requests). Checker
    construction for one database never blocks lookups or construction
    for another.
    """

    def __init__(self, config: AggCheckerConfig | None = None) -> None:
        self.config = config or AggCheckerConfig()
        self._lock = threading.Lock()
        self._entries: dict[object, PoolEntry] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entry_for(
        self,
        key: object,
        factory: Callable[[], AggChecker],
        keepalive: object = None,
    ) -> PoolEntry:
        """The pool entry for ``key``, its checker built (once) if needed.

        ``factory`` runs under the entry's own lock: concurrent callers
        with the same key block until the first finishes building, callers
        with different keys are unaffected.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = PoolEntry(key, threading.Lock(), None, keepalive)
                self._entries[key] = entry
        if entry.checker is None:
            with entry.lock:
                if entry.checker is None:
                    entry.checker = factory()
        return entry

    def checker_for(self, case: TestCase) -> AggChecker:
        key = ("id", id(case.database), id(case.data_dictionary))
        entry = self.entry_for(
            key,
            lambda: AggChecker(case.database, self.config, case.data_dictionary),
            keepalive=case,
        )
        assert entry.checker is not None
        return entry.checker

    def run(self, case: TestCase) -> CaseResult:
        """Verify one case against its ground truth."""
        checker = self.checker_for(case)
        report = checker.check_claims(case.document, case.claims)
        return evaluate_case(case, report)

    def stats_snapshot(self) -> EngineStats:
        """Merged cumulative engine stats across every pooled checker.

        A live snapshot: counters of checkers currently serving requests
        are read without their entry lock, so totals can be mid-request
        (individual fields are consistent, cross-field ratios
        approximate) — exactly what a monitoring endpoint wants.
        """
        totals = EngineStats()
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            if entry.checker is not None:
                totals += entry.checker.engine.stats
        return totals

    def peek(self, key: object) -> PoolEntry | None:
        """The entry for ``key`` if one exists — never builds a checker.

        The shadow auditor uses this to reach a production checker's
        in-memory caches after a divergence without constructing one as
        a side effect of the audit.
        """
        with self._lock:
            return self._entries.get(key)

    def discard(self, key: object) -> None:
        """Drop one entry (no-op if absent). Callers holding the entry
        keep a working checker; the pool just stops handing it out."""
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


def run_case(
    case: TestCase, config: AggCheckerConfig | None = None
) -> CaseResult:
    """Verify one test case against its ground truth."""
    return CheckerPool(config).run(case)


def run_corpus(
    corpus: Corpus,
    config: AggCheckerConfig | None = None,
    limit: int | None = None,
    workers: int = 1,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    retry: "RetryPolicy | None" = None,
) -> CorpusRun:
    """Verify every case of the corpus (or the first ``limit`` cases).

    ``workers=1`` runs in-process; any other value delegates to the
    sharded process-pool runner (``0`` = one worker per CPU). Both paths
    produce identical results and metrics. ``checkpoint`` persists partial
    results after every case (shard, when parallel) and ``resume`` reloads
    them (see :mod:`repro.harness.checkpoint`); ``retry`` tunes the
    parallel runner's crash recovery and is ignored in-process, where a
    case failure propagates to the caller instead of being sandboxed.
    """
    if workers != 1:
        from repro.harness.parallel import run_corpus_parallel

        return run_corpus_parallel(
            corpus, config, limit=limit, workers=workers,
            retry=retry, checkpoint=checkpoint, resume=resume,
        )
    cases = corpus.cases if limit is None else corpus.cases[:limit]
    done, quarantined, store = open_checkpoint(
        cases, config, checkpoint, resume
    )
    pool = CheckerPool(config)
    for index, case in enumerate(cases):
        if index in done or index in quarantined:
            continue
        fire("harness.case", str(index))
        done[index] = pool.run(case)
        if store is not None:
            store.save(done, quarantined)
    results = [done[index] for index in sorted(done)]
    return CorpusRun(
        results,
        aggregate_metrics(results),
        merge_stats(results),
        dict(sorted(quarantined.items())),
    )


def merge_stats(results: list[CaseResult]) -> EngineStats:
    """Pool per-case engine-stat deltas into corpus totals."""
    totals = EngineStats()
    for result in results:
        totals += result.report.engine_stats
    return totals
