"""Run the AggChecker over corpus cases in fully automated mode."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.checker import AggChecker
from repro.core.config import AggCheckerConfig
from repro.corpus.generator import Corpus
from repro.corpus.spec import TestCase
from repro.db.engine import EngineStats
from repro.harness.metrics import (
    CaseResult,
    RunMetrics,
    aggregate_metrics,
    evaluate_case,
)


@dataclass
class CorpusRun:
    """All artifacts of one automated-verification pass over a corpus."""

    results: list[CaseResult]
    metrics: RunMetrics
    engine_stats: EngineStats = field(default_factory=EngineStats)

    @property
    def total_seconds(self) -> float:
        return self.metrics.total_seconds


def run_case(
    case: TestCase, config: AggCheckerConfig | None = None
) -> CaseResult:
    """Verify one test case against its ground truth."""
    checker = AggChecker(
        case.database, config or AggCheckerConfig(), case.data_dictionary
    )
    report = checker.check_claims(case.document, case.claims)
    return evaluate_case(case, report)


def run_corpus(
    corpus: Corpus,
    config: AggCheckerConfig | None = None,
    limit: int | None = None,
) -> CorpusRun:
    """Verify every case of the corpus (or the first ``limit`` cases)."""
    cases = corpus.cases if limit is None else corpus.cases[:limit]
    results = []
    totals = EngineStats()
    for case in cases:
        result = run_case(case, config)
        results.append(result)
        stats = result.report.engine_stats
        totals.queries_requested += stats.queries_requested
        totals.physical_queries += stats.physical_queries
        totals.cube_queries += stats.cube_queries
        totals.cache_hits += stats.cache_hits
        totals.cache_misses += stats.cache_misses
        totals.rows_scanned += stats.rows_scanned
        totals.query_seconds += stats.query_seconds
    return CorpusRun(results, aggregate_metrics(results), totals)
