"""Run the AggChecker over corpus cases in fully automated mode.

Checker construction is the expensive per-case fixed cost (fragment
extraction, fragment indexing, compilation of the batched-matching
artifacts, join-graph setup); :class:`CheckerPool` amortizes it by keeping
one :class:`~repro.core.checker.AggChecker` per distinct database, so
cases sharing a database also share the engine's in-memory
:class:`~repro.db.cache.ResultCache` *and* the compiled fragment index
(shared term vocabulary, CSR postings, idf/norm arrays) that
``keyword_match_batch`` scores documents against. The sequential
:func:`run_corpus` and the process-parallel runner in
:mod:`repro.harness.parallel` are both built on the pool, which keeps
their per-case behavior (and therefore their results) identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.checker import AggChecker
from repro.core.config import AggCheckerConfig
from repro.corpus.generator import Corpus
from repro.corpus.spec import TestCase
from repro.db.engine import EngineStats
from repro.harness.metrics import (
    CaseResult,
    RunMetrics,
    aggregate_metrics,
    evaluate_case,
)


@dataclass
class CorpusRun:
    """All artifacts of one automated-verification pass over a corpus."""

    results: list[CaseResult]
    metrics: RunMetrics
    engine_stats: EngineStats = field(default_factory=EngineStats)

    @property
    def total_seconds(self) -> float:
        return self.metrics.total_seconds


class CheckerPool:
    """One reusable :class:`AggChecker` per distinct database.

    Cases are keyed by the identity of their database (and data
    dictionary) object: corpus generators that share a database across
    cases get fragment extraction, the fragment index, and the engine's
    result cache built once instead of once per case. The pool holds
    strong references, so keys stay valid for its lifetime.
    """

    def __init__(self, config: AggCheckerConfig | None = None) -> None:
        self.config = config or AggCheckerConfig()
        # Value keeps the keyed objects alive: id() keys are only unique
        # while the objects live, and AggChecker does not retain the data
        # dictionary it was built from.
        self._checkers: dict[
            tuple[int, int], tuple[AggChecker, TestCase]
        ] = {}

    def __len__(self) -> int:
        return len(self._checkers)

    def checker_for(self, case: TestCase) -> AggChecker:
        key = (id(case.database), id(case.data_dictionary))
        entry = self._checkers.get(key)
        if entry is None:
            checker = AggChecker(
                case.database, self.config, case.data_dictionary
            )
            self._checkers[key] = (checker, case)
            return checker
        return entry[0]

    def run(self, case: TestCase) -> CaseResult:
        """Verify one case against its ground truth."""
        checker = self.checker_for(case)
        report = checker.check_claims(case.document, case.claims)
        return evaluate_case(case, report)

    def clear(self) -> None:
        self._checkers.clear()


def run_case(
    case: TestCase, config: AggCheckerConfig | None = None
) -> CaseResult:
    """Verify one test case against its ground truth."""
    return CheckerPool(config).run(case)


def run_corpus(
    corpus: Corpus,
    config: AggCheckerConfig | None = None,
    limit: int | None = None,
    workers: int = 1,
) -> CorpusRun:
    """Verify every case of the corpus (or the first ``limit`` cases).

    ``workers=1`` runs in-process; any other value delegates to the
    sharded process-pool runner (``0`` = one worker per CPU). Both paths
    produce identical results and metrics.
    """
    if workers != 1:
        from repro.harness.parallel import run_corpus_parallel

        return run_corpus_parallel(
            corpus, config, limit=limit, workers=workers
        )
    cases = corpus.cases if limit is None else corpus.cases[:limit]
    pool = CheckerPool(config)
    results = [pool.run(case) for case in cases]
    return CorpusRun(results, aggregate_metrics(results), merge_stats(results))


def merge_stats(results: list[CaseResult]) -> EngineStats:
    """Pool per-case engine-stat deltas into corpus totals."""
    totals = EngineStats()
    for result in results:
        totals += result.report.engine_stats
    return totals
