"""Command-line interface: the AggChecker as a shippable tool.

Usage::

    python -m repro check --csv data.csv --article article.html
    python -m repro check --csv a.csv --csv b.csv --article draft.html \
        --data-dict dict.csv --hits 30 --json
    python -m repro corpus-stats

``check`` loads one or more CSV files as tables, verifies the article
(HTML subset or plain text), and prints spell-checker markup; ``--json``
emits a machine-readable report instead. ``corpus-stats`` prints the
statistics of the built-in evaluation corpus.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.core import AggChecker, render_markup
from repro.core.config import AggCheckerConfig
from repro.db.csvio import load_csv
from repro.db.datadict import load_data_dictionary
from repro.db.engine import ExecutionBackend, ExecutionMode
from repro.db.schema import Database
from repro.db.sql import render_sql
from repro.errors import ReproError
from repro.text.document import Document
from repro.text.htmlparse import parse_html


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AggChecker: verify text summaries of relational data sets",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="verify an article against CSV data")
    check.add_argument(
        "--csv",
        action="append",
        required=True,
        metavar="FILE",
        help="CSV data file (repeat for multiple tables)",
    )
    check.add_argument(
        "--article", required=True, metavar="FILE", help="article (HTML or text)"
    )
    check.add_argument(
        "--data-dict", metavar="FILE", help="data dictionary (column,description)"
    )
    check.add_argument(
        "--hits", type=int, default=20, help="predicate fragments per claim"
    )
    check.add_argument(
        "--p-true", type=float, default=0.999, help="assumed P(claim correct)"
    )
    check.add_argument(
        "--backend",
        choices=[backend.value for backend in ExecutionBackend],
        default=ExecutionBackend.COLUMNAR.value,
        help="query-engine backend: dictionary-encoded 'columnar' (default) "
        "or the row-wise reference 'row'",
    )
    check.add_argument(
        "--execution-mode",
        choices=[mode.value for mode in ExecutionMode],
        default=ExecutionMode.MERGED_CACHED.value,
        help="batch execution strategy (Table 6 ladder)",
    )
    check.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )

    commands.add_parser(
        "corpus-stats", help="statistics of the built-in evaluation corpus"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "check":
            return _run_check(args)
        return _run_corpus_stats()
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_check(args) -> int:
    tables = [load_csv(path) for path in args.csv]
    database = Database("cli", tables)
    dictionary = (
        load_data_dictionary(args.data_dict) if args.data_dict else None
    )
    config = AggCheckerConfig(
        predicate_hits=args.hits,
        backend=ExecutionBackend(args.backend),
        execution_mode=ExecutionMode(args.execution_mode),
    )
    config = config.with_em(p_true=args.p_true)
    checker = AggChecker(database, config, dictionary)

    document = _load_document(args.article)
    report = checker.check_document(document)

    if args.json:
        print(json.dumps(_report_json(report), indent=2))
    else:
        print(render_markup(report.verdicts))
        print()
        for verdict in report.verdicts:
            print(f"  {verdict.claim.mention.text!r}: {verdict.hover_text}")
        flagged = sum(1 for v in report.verdicts if v.status.flagged)
        print(
            f"\n{len(report.verdicts)} claims checked, {flagged} flagged, "
            f"{report.total_seconds:.2f}s"
        )
    return 1 if any(v.status.flagged for v in report.verdicts) else 0


def _load_document(path_text: str) -> Document:
    path = Path(path_text)
    text = path.read_text(encoding="utf-8-sig")
    if "<" in text and ">" in text:
        return parse_html(text)
    paragraphs = [p for p in text.split("\n\n") if p.strip()]
    return Document.from_plain_text(path.stem, paragraphs)


def _report_json(report) -> dict:
    claims = []
    for verdict in report.verdicts:
        claims.append(
            {
                "text": verdict.claim.mention.text,
                "sentence": verdict.claim.sentence.text,
                "claimed_value": verdict.claim.claimed_value,
                "status": verdict.status.value,
                "top_query": (
                    render_sql(verdict.top_query) if verdict.top_query else None
                ),
                "top_result": verdict.top_result,
                "probability_correct": round(verdict.probability_correct, 4),
            }
        )
    return {
        "claims": claims,
        "seconds": round(report.total_seconds, 3),
        "candidate_queries": report.engine_stats.queries_requested,
        "physical_queries": report.engine_stats.physical_queries,
    }


def _run_corpus_stats() -> int:
    from repro.corpus import generate_corpus

    corpus = generate_corpus()
    print(f"articles: {len(corpus)}")
    print(f"claims: {corpus.total_claims}")
    print(
        f"erroneous: {corpus.erroneous_claims} ({corpus.error_rate:.1%}), "
        f"in {corpus.cases_with_errors} articles"
    )
    print(f"predicate histogram: {corpus.predicate_histogram()}")
    coverage = corpus.characteristic_coverage(3)
    print(
        "top-3 characteristic coverage: "
        + ", ".join(f"{k}={v:.1f}%" for k, v in coverage.items())
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
