"""Command-line interface: the AggChecker as a shippable tool.

Usage::

    python -m repro check --csv data.csv --article article.html
    python -m repro check --csv a.csv --csv b.csv --article draft.html \
        --data-dict dict.csv --hits 30 --json
    python -m repro check --csv data.csv --article a.html --cache-dir .cubecache
    python -m repro corpus-stats
    python -m repro corpus-run --workers 4 --cache-dir .cubecache
    python -m repro serve --port 8765 --cache-dir .cubecache
    python -m repro scrub --cache-dir .cubecache --queue-dir .queue --json

``check`` loads one or more CSV files as tables, verifies the article
(HTML subset or plain text), and prints spell-checker markup; ``--json``
emits a machine-readable report instead. ``corpus-stats`` prints the
statistics of the built-in evaluation corpus; ``corpus-run`` verifies the
built-in corpus end to end, optionally sharded over worker processes
(``--workers``, 0 = one per CPU) with a shared persistent cube cache
(``--cache-dir``), and reports precision/recall/F1, coverage, throughput,
and cache hit rates; cases that exhaust their retry budget are printed
one per line and the exit code is 3. ``serve`` runs the resident
verification service: ``POST /check`` admits each document onto a
bounded durable job queue (``--queue-dir`` makes it crash-survivable)
and streams per-claim NDJSON verdicts as a worker pool leases, verifies,
and acks the jobs; ``GET /health``, ``GET /stats``, ``GET /deadletter``,
and ``GET /audit`` expose service, queue, engine, and integrity-audit
counters. ``scrub`` is the offline integrity pass over every persisted
state tier (disk cube cache, queue journal, corpus checkpoints); it
quarantines corruption and exits 4 when any was found (see
ARCHITECTURE.md, "Integrity auditing & trust ladder").
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.core import AggChecker, render_markup
from repro.core.config import AggCheckerConfig
from repro.db.csvio import load_csv
from repro.db.datadict import load_data_dictionary
from repro.db.adapters import adapter_names, load_sqlite_database
from repro.db.engine import EngineConfig, ExecutionMode
from repro.db.schema import Database
from repro.errors import ReproError
from repro.text.document import Document


def _worker_count(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid worker count: {raw!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 = one per CPU), got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AggChecker: verify text summaries of relational data sets",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="verify an article against CSV data")
    check.add_argument(
        "--csv",
        action="append",
        required=True,
        metavar="FILE",
        help="data file: CSV (repeat for multiple tables) or a single "
        "SQLite database file (.sqlite/.sqlite3/.db; schema, types and "
        "foreign keys are introspected, rows stay on disk)",
    )
    check.add_argument(
        "--article", required=True, metavar="FILE", help="article (HTML or text)"
    )
    check.add_argument(
        "--data-dict", metavar="FILE", help="data dictionary (column,description)"
    )
    check.add_argument(
        "--hits", type=int, default=20, help="predicate fragments per claim"
    )
    check.add_argument(
        "--p-true", type=float, default=0.999, help="assumed P(claim correct)"
    )
    check.add_argument(
        "--backend",
        choices=adapter_names(),
        default="columnar",
        help="storage adapter executing cube and aggregate queries: "
        "dictionary-encoded in-memory 'columnar' (default), the row-wise "
        "in-memory reference 'row', or SQL pushdown — stdlib 'sqlite' "
        "(bit-identical verdicts, runs out-of-core over SQLite files "
        "without materializing rows in Python) and 'duckdb' (optional; "
        "requires the duckdb package)",
    )
    check.add_argument(
        "--execution-mode",
        choices=[mode.value for mode in ExecutionMode],
        default=ExecutionMode.MERGED_CACHED.value,
        help="batch execution strategy (Table 6 ladder)",
    )
    check.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent cube-cell cache directory (keyed by data content; "
        "safe to share across runs and concurrent processes)",
    )
    _add_disk_cache_min_rows(check)
    check.add_argument(
        "--claim-deadline",
        type=float,
        metavar="SECONDS",
        help="per-claim verification budget; past it, verdicts degrade "
        "(reduced scope -> no execution -> unverifiable) instead of "
        "the run hanging",
    )
    _add_budget_arguments(check)
    check.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )

    commands.add_parser(
        "corpus-stats", help="statistics of the built-in evaluation corpus"
    )

    corpus_run = commands.add_parser(
        "corpus-run",
        help="verify the built-in corpus (parallel workers, cube cache)",
    )
    corpus_run.add_argument(
        "--limit", type=int, metavar="N", help="only run the first N cases"
    )
    corpus_run.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        metavar="N",
        help="worker processes; 1 runs in-process, 0 uses one per CPU "
        "(default: 1). Results are identical at any worker count.",
    )
    corpus_run.add_argument(
        "--backend",
        choices=adapter_names(),
        default="columnar",
        help="storage adapter for corpus databases (see 'check --backend')",
    )
    corpus_run.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent cube-cell cache shared by all workers and runs",
    )
    _add_disk_cache_min_rows(corpus_run)
    corpus_run.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="persist partial results here after every case/shard "
        "(atomic; survives kills)",
    )
    corpus_run.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint instead of starting over "
        "(refused if the checkpoint belongs to different work)",
    )
    corpus_run.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="attempts per case before quarantine when a worker crashes "
        "(parallel runs only; default: 3)",
    )
    corpus_run.add_argument(
        "--json", action="store_true", help="emit JSON metrics"
    )

    serve = commands.add_parser(
        "serve",
        help="run the resident verification service (durable queue, NDJSON streaming)",
        description="Serve POST /check (document + database reference -> "
        "streamed per-claim NDJSON verdicts), GET /health, GET /stats, and "
        "GET /deadletter from a long-running process. Admission decomposes "
        "each document into per-claim jobs on a bounded durable queue; a "
        "worker pool leases, verifies, and acks them with at-least-once "
        "delivery, retries with jittered backoff, and a dead-letter "
        "quarantine. With --queue-dir the queue journal survives crashes: "
        "a restarted server resumes unfinished jobs. "
        "Resource governance bounds every request in four layers: hostile "
        "or oversized input (CSV rows/columns/field bytes, inline tables, "
        "claims per document) is rejected with structured 400s before any "
        "work happens; --max-request-cost rejects expensive requests at "
        "admission (413, cost = tables x rows x claims) before they "
        "queue; per-claim space budgets (--max-rows-materialized, "
        "--max-cube-cells, --max-candidates) plus --request-timeout "
        "degrade execution through the reduced-scope -> no-execution -> "
        "unverifiable ladder instead of exhausting memory mid-query; and "
        "--max-rss-mb sheds all execution (explicit degraded verdicts, "
        "queue keeps draining) while process RSS is over the line, "
        "recovering automatically when pressure subsides. Per-client "
        "token buckets (--rate-limit) and queue-depth backpressure shed "
        "excess load with 429 + Retry-After. Checkers stay warm per "
        "database content fingerprint; verdicts are memoized per claim "
        "(budget-degraded verdicts never are) so resubmitting an edited "
        "document re-evaluates only changed claims. "
        "Integrity is audited online: --audit-rate samples that fraction "
        "of acked fresh verdict groups and re-verifies them in the "
        "background against the naive row-wise oracle with every cache "
        "bypassed; each audit also deep-scrubs a sample of the database's "
        "disk cube-cache entries (bit-exact recompute, corrupt files "
        "quarantined as *.corrupt). A divergence repairs the memoized "
        "verdict, invalidates the database's cached state, and demotes "
        "the database one rung on a per-database trust ladder (full "
        "caches -> disk tier bypassed -> oracle-only execution); "
        "consecutive clean audits climb back up. GET /audit reports "
        "divergences, repairs, scrub counters, and ladder positions; "
        "/health turns 'degraded' while any database sits below full "
        "trust. --audit-rate 0 disables the subsystem. --legacy-server "
        "restores the PR-5 thread-per-request front end (no queue, no "
        "audit).",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = any free port)"
    )
    serve.add_argument(
        "--hits", type=int, default=20, help="predicate fragments per claim"
    )
    serve.add_argument(
        "--p-true", type=float, default=0.999, help="assumed P(claim correct)"
    )
    serve.add_argument(
        "--backend",
        choices=adapter_names(),
        default="columnar",
        help="storage adapter for served databases (see 'check --backend')",
    )
    serve.add_argument(
        "--execution-mode",
        choices=[mode.value for mode in ExecutionMode],
        default=ExecutionMode.MERGED_CACHED.value,
        help="batch execution strategy (Table 6 ladder)",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent cube-cell cache shared by all served databases",
    )
    _add_disk_cache_min_rows(serve)
    serve.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable the per-claim incremental re-check tier",
    )
    serve.add_argument(
        "--incremental-capacity",
        type=int,
        default=16384,
        metavar="N",
        help="max memoized claim verdicts before LRU eviction",
    )
    serve.add_argument(
        "--max-databases",
        type=int,
        default=64,
        metavar="N",
        help="max warm checkers (one per distinct database content + "
        "dictionary) before LRU eviction",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help="(legacy server only) max concurrent /check requests before "
        "shedding with 429 + Retry-After (default: 8)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget per /check request; past it, verdicts "
        "degrade instead of the request holding a slot indefinitely",
    )
    serve.add_argument(
        "--queue-dir",
        metavar="DIR",
        help="durable queue directory (journal survives crashes; omit for "
        "an in-memory queue)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="max live (pending + leased) claim jobs before admission "
        "sheds with 429 + Retry-After (default: 1024)",
    )
    serve.add_argument(
        "--queue-workers",
        type=int,
        default=2,
        metavar="N",
        help="verification worker threads leasing off the queue (default: 2)",
    )
    serve.add_argument(
        "--visibility-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="lease duration; a job unacked past this is presumed lost "
        "and re-delivered (default: 30)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="RPS",
        help="per-client request rate (X-Client-Id header or peer "
        "address); 0 disables (default: 0)",
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        metavar="N",
        help="per-client burst allowance (default: max(1, 2x rate))",
    )
    _add_budget_arguments(serve)
    serve.add_argument(
        "--max-request-cost",
        type=int,
        metavar="N",
        help="admission cost ceiling (tables x rows x claims); costlier "
        "requests are rejected with 413 + a machine-readable reason "
        "before they reach the queue (asyncio server only)",
    )
    serve.add_argument(
        "--max-rss-mb",
        type=float,
        metavar="MB",
        help="process RSS watermark; above it all execution sheds to "
        "explicit degraded verdicts until memory pressure subsides "
        "(asyncio server only; needs /proc)",
    )
    serve.add_argument(
        "--audit-rate",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="fraction of acked fresh verdict groups shadow-verified in "
        "the background against the naive row-wise oracle (caches "
        "bypassed); divergences repair the memoized verdict and demote "
        "the database's trust rung. 0 disables auditing (default: 0.05, "
        "asyncio server only)",
    )
    serve.add_argument(
        "--audit-backlog",
        type=int,
        default=64,
        metavar="N",
        help="max sampled groups queued for audit; excess samples are "
        "dropped (counted), never blocking the serving path (default: 64)",
    )
    serve.add_argument(
        "--trust-recover-after",
        type=int,
        default=8,
        metavar="N",
        help="consecutive clean audited verdicts a demoted database needs "
        "to climb one trust rung back toward full caching (default: 8)",
    )
    serve.add_argument(
        "--legacy-server",
        action="store_true",
        help="serve with the thread-per-request front end instead of the "
        "queue-backed asyncio core",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request"
    )

    scrub = commands.add_parser(
        "scrub",
        help="offline integrity scrub of persisted state (cube cache, "
        "queue journal, checkpoints)",
        description="Walk every requested persisted-state tier and verify "
        "its integrity: disk cube-cache entries (--cache-dir) are checked "
        "structurally (magic + CRC32 + payload decode) and, when the "
        "owning database's CSVs are supplied via --csv, semantically "
        "(every cached cube cell recomputed from source and compared "
        "bit-exact); the durable queue journal (--queue-dir) and corpus "
        "checkpoints (--checkpoint, repeatable) are scanned record by "
        "record against their per-record CRC32 framing, tolerating a "
        "truncated tail (a crashed writer) but flagging interior "
        "corruption. Corrupt cube entries are quarantined by renaming to "
        "*.corrupt so the serving path never reads them again; journals "
        "and checkpoints are never modified (their owners skip bad "
        "records on load). The report is machine-readable with --json. "
        "Exit status: 0 when every walked tier is clean, 4 when any "
        "corruption was found (a second scrub over the now-quarantined "
        "state exits 0), 2 on usage errors.",
    )
    scrub.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="disk cube-cache directory to scrub (corrupt entries are "
        "quarantined as *.corrupt)",
    )
    scrub.add_argument(
        "--queue-dir",
        metavar="DIR",
        help="durable queue directory whose journal to scan (read-only)",
    )
    scrub.add_argument(
        "--checkpoint",
        action="append",
        default=[],
        metavar="FILE",
        help="corpus checkpoint file to scan (repeatable, read-only)",
    )
    scrub.add_argument(
        "--csv",
        action="append",
        default=[],
        metavar="FILE",
        help="CSV source file(s) forming the database cached entries were "
        "computed from (repeatable); enables semantic recompute "
        "validation of cube entries whose content fingerprint matches",
    )
    scrub.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    return parser


def _add_disk_cache_min_rows(parser) -> None:
    parser.add_argument(
        "--disk-cache-min-rows",
        type=int,
        metavar="N",
        help="skip the disk cube-cache tier for databases with fewer "
        "total rows than N (recomputing tiny cubes beats the pickle + "
        "fsync round-trip; skips are counted in DiskCacheStats)",
    )


def _add_budget_arguments(parser) -> None:
    """Space-budget flags shared by ``check`` and ``serve``.

    Identical flags feeding identical config fields keep the CLI-vs-service
    bit-identity guarantee: a request degraded by a budget on the server
    degrades the same way under ``check`` with the same limits.
    """
    parser.add_argument(
        "--max-rows-materialized",
        type=int,
        metavar="N",
        help="largest joined relation a query or cube may materialize; "
        "past it, verdicts degrade (reduced scope -> no execution -> "
        "unverifiable) instead of exhausting memory",
    )
    parser.add_argument(
        "--max-cube-cells",
        type=int,
        metavar="N",
        help="cube group-count ceiling, checked against a cardinality "
        "estimate BEFORE materialization and against real group counts "
        "before rollup",
    )
    parser.add_argument(
        "--max-candidates",
        type=int,
        metavar="N",
        help="candidate-query ceiling per claim batch; oversized "
        "candidate spaces degrade instead of executing",
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "check":
            return _run_check(args)
        if args.command == "corpus-run":
            return _run_corpus(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "scrub":
            return _run_scrub(args)
        return _run_corpus_stats()
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def _load_cli_database(paths: list[str]) -> Database:
    """Build the ``check`` database from CSV files or one SQLite file."""
    sqlite_paths = [
        path
        for path in paths
        if Path(path).suffix.lower() in _SQLITE_SUFFIXES
    ]
    if not sqlite_paths:
        return Database("cli", [load_csv(path) for path in paths])
    if len(paths) > 1:
        raise ReproError(
            "a SQLite database file must be the only --csv argument "
            f"(got {len(paths)} data files)"
        )
    return load_sqlite_database(sqlite_paths[0], name="cli")


def _run_check(args) -> int:
    database = _load_cli_database(args.csv)
    dictionary = (
        load_data_dictionary(args.data_dict) if args.data_dict else None
    )
    config = AggCheckerConfig(
        predicate_hits=args.hits,
        engine=EngineConfig(
            mode=ExecutionMode(args.execution_mode),
            backend=args.backend,
            cache_dir=args.cache_dir,
            disk_cache_min_rows=args.disk_cache_min_rows,
        ),
        claim_deadline=args.claim_deadline,
        max_rows_materialized=args.max_rows_materialized,
        max_cube_cells=args.max_cube_cells,
        max_candidates=args.max_candidates,
    )
    config = config.with_em(p_true=args.p_true)
    checker = AggChecker(database, config, dictionary)

    document = _load_document(args.article)
    report = checker.check_document(document)

    if args.json:
        print(json.dumps(_report_json(report), indent=2))
    else:
        print(render_markup(report.verdicts))
        print()
        for verdict in report.verdicts:
            print(f"  {verdict.claim.mention.text!r}: {verdict.hover_text}")
        flagged = sum(1 for v in report.verdicts if v.status.flagged)
        print(
            f"\n{len(report.verdicts)} claims checked, {flagged} flagged, "
            f"{report.total_seconds:.2f}s"
        )
    return 1 if any(v.status.flagged for v in report.verdicts) else 0


def _load_document(path_text: str) -> Document:
    # One sniffing implementation shared with the service layer: the
    # served-vs-CLI bit-identity guarantee includes document parsing.
    from repro.service.protocol import parse_article

    path = Path(path_text)
    return parse_article(path.read_text(encoding="utf-8-sig"), path.stem)


def _report_json(report) -> dict:
    # The per-claim shape is shared with the service's NDJSON claim
    # events, so one-shot and served verdicts compare bit-for-bit.
    from repro.service.protocol import verdict_payload

    claims = [verdict_payload(verdict) for verdict in report.verdicts]
    return {
        "claims": claims,
        "seconds": round(report.total_seconds, 3),
        "candidate_queries": report.engine_stats.queries_requested,
        "physical_queries": report.engine_stats.physical_queries,
    }


def _run_corpus(args) -> int:
    from repro.corpus import generate_corpus
    from repro.harness import run_corpus
    from repro.harness.metrics import COVERAGE_KS

    import time

    from repro.harness.parallel import RetryPolicy, resolve_workers

    workers = resolve_workers(args.workers)
    config = AggCheckerConfig(
        engine=EngineConfig(
            backend=args.backend,
            cache_dir=args.cache_dir,
            disk_cache_min_rows=args.disk_cache_min_rows,
        ),
    )
    corpus = generate_corpus()
    started = time.perf_counter()
    run = run_corpus(
        corpus, config, limit=args.limit, workers=workers,
        checkpoint=args.checkpoint, resume=args.resume,
        retry=RetryPolicy(max_attempts=args.max_retries),
    )
    wall_seconds = time.perf_counter() - started
    metrics = run.metrics
    stats = run.engine_stats
    seconds = max(wall_seconds, 1e-9)
    payload = {
        "cases": len(run.results),
        "claims": metrics.n_claims,
        "erroneous": metrics.n_erroneous,
        "flagged": metrics.n_flagged,
        "precision": round(metrics.precision, 4),
        "recall": round(metrics.recall, 4),
        "f1": round(metrics.f1, 4),
        "top_k_coverage": {
            k: round(metrics.top_k_coverage(k), 1) for k in COVERAGE_KS
        },
        "seconds": round(wall_seconds, 3),
        "case_seconds": round(metrics.total_seconds, 3),
        "claims_per_sec": round(metrics.n_claims / seconds, 2),
        "workers": workers,
        "physical_queries": stats.physical_queries,
        "cube_queries": stats.cube_queries,
        "memory_cache_hit_rate": round(stats.cache_hit_rate(), 4),
        "disk_cache_hit_rate": round(stats.disk_hit_rate(), 4),
        "quarantined": len(run.quarantined),
        "quarantined_cases": {
            str(index): error for index, error in run.quarantined.items()
        },
    }
    # Quarantined cases are incomplete work: surface each one and exit
    # non-zero so CI and scripts cannot mistake a partial run for a
    # clean one.
    if args.json:
        print(json.dumps(payload, indent=2))
        return 3 if run.quarantined else 0
    print(f"cases: {payload['cases']}, claims: {payload['claims']}")
    if run.quarantined:
        print(
            f"quarantined: {len(run.quarantined)} case(s) exhausted their "
            f"retry budget"
        )
        for index in sorted(run.quarantined):
            print(f"  case {index}: {run.quarantined[index]}")
    print(
        f"precision: {payload['precision']:.3f}, "
        f"recall: {payload['recall']:.3f}, f1: {payload['f1']:.3f}"
    )
    coverage = ", ".join(
        f"top-{k}={v:.1f}%" for k, v in payload["top_k_coverage"].items()
    )
    print(f"coverage: {coverage}")
    print(
        f"throughput: {payload['claims_per_sec']:.1f} claims/s "
        f"({payload['seconds']:.1f}s, workers={workers})"
    )
    print(
        f"engine: {stats.physical_queries} physical queries, "
        f"memory hit rate {payload['memory_cache_hit_rate']:.1%}, "
        f"disk hit rate {payload['disk_cache_hit_rate']:.1%}"
    )
    return 3 if run.quarantined else 0


def _run_serve(args) -> int:
    config = AggCheckerConfig(
        predicate_hits=args.hits,
        engine=EngineConfig(
            mode=ExecutionMode(args.execution_mode),
            backend=args.backend,
            cache_dir=args.cache_dir,
            disk_cache_min_rows=args.disk_cache_min_rows,
        ),
        max_rows_materialized=args.max_rows_materialized,
        max_cube_cells=args.max_cube_cells,
        max_candidates=args.max_candidates,
    ).with_em(p_true=args.p_true)
    tier = "off" if args.no_incremental else "on"

    if args.legacy_server:
        from repro.service.server import create_server

        server = create_server(
            host=args.host,
            port=args.port,
            config=config,
            incremental=not args.no_incremental,
            incremental_capacity=args.incremental_capacity,
            max_databases=args.max_databases,
            max_inflight=args.max_inflight,
            request_timeout=args.request_timeout,
            verbose=args.verbose,
        )
        print(
            f"repro service listening on {server.url} "
            f"(incremental re-check {tier}; Ctrl-C drains and stops)"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("draining in-flight requests ...", file=sys.stderr)
        finally:
            server.server_close()
        return 0

    from repro.service.aio import create_async_server

    server = create_async_server(
        host=args.host,
        port=args.port,
        config=config,
        queue_dir=args.queue_dir,
        queue_capacity=args.queue_capacity,
        workers=args.queue_workers,
        visibility_timeout=args.visibility_timeout,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        incremental=not args.no_incremental,
        incremental_capacity=args.incremental_capacity,
        max_databases=args.max_databases,
        request_timeout=args.request_timeout,
        max_request_cost=args.max_request_cost,
        max_rss_mb=args.max_rss_mb,
        audit_rate=args.audit_rate,
        audit_backlog=args.audit_backlog,
        trust_recover_after=args.trust_recover_after,
        verbose=args.verbose,
    )

    def _announce(instance) -> None:
        resumed = instance.service.queue.resumed
        durable = "durable" if args.queue_dir else "in-memory"
        note = f"; resumed {resumed} journaled job(s)" if resumed else ""
        print(
            f"repro service listening on {instance.url} "
            f"({durable} queue, {args.queue_workers} worker(s), "
            f"incremental re-check {tier}{note}; Ctrl-C drains and stops)",
            flush=True,
        )

    server.run_blocking(on_ready=_announce)
    journaled = server.service.journaled_on_drain
    if journaled:
        print(
            f"drained: {journaled} job(s) journaled for resume",
            file=sys.stderr,
        )
    return 0


def _run_scrub(args) -> int:
    from repro.audit.scrub import scrub_state

    if not args.cache_dir and not args.queue_dir and not args.checkpoint:
        print(
            "error: nothing to scrub; give at least one of --cache-dir, "
            "--queue-dir, --checkpoint",
            file=sys.stderr,
        )
        return 2
    databases = None
    if args.csv:
        if not args.cache_dir:
            print(
                "error: --csv (semantic validation) requires --cache-dir",
                file=sys.stderr,
            )
            return 2
        databases = [
            Database("cli", [load_csv(path) for path in args.csv])
        ]
    report = scrub_state(
        cache_dir=args.cache_dir,
        queue_dir=args.queue_dir,
        checkpoints=args.checkpoint,
        databases=databases,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for tier in report["tiers"]:
            fields = ", ".join(
                f"{key}={value}"
                for key, value in tier.items()
                if key not in ("tier", "path")
            )
            print(f"{tier['tier']}: {fields}")
        verdict = "clean" if report["clean"] else (
            f"CORRUPT: {report['corrupt_total']} record(s)"
            + (" + truncation" if report["truncated"] else "")
        )
        print(f"scrub: {verdict}")
    return 0 if report["clean"] else 4


def _run_corpus_stats() -> int:
    from repro.corpus import generate_corpus

    corpus = generate_corpus()
    print(f"articles: {len(corpus)}")
    print(f"claims: {corpus.total_claims}")
    print(
        f"erroneous: {corpus.erroneous_claims} ({corpus.error_rate:.1%}), "
        f"in {corpus.cases_with_errors} articles"
    )
    print(f"predicate histogram: {corpus.predicate_histogram()}")
    coverage = corpus.characteristic_coverage(3)
    print(
        "top-3 characteristic coverage: "
        + ", ".join(f"{k}={v:.1f}%" for k, v in coverage.items())
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
