"""Resource budgets: wall-clock deadlines generalized to time + space.

PR 6 bounded claim verification in *time* only — a :class:`~repro.deadline.
Deadline` checked at stage boundaries. Nothing bounded *space*: a wide
cross product, a million-group cube, or a huge candidate space could OOM
a worker before any deadline fired. A :class:`ResourceBudget` carries the
optional deadline plus three space limits:

- ``max_rows`` — rows a single materialized relation (join result) may
  hold before the engine executes a query over it;
- ``max_cube_cells`` — an upper bound on rolled-up cube cells, estimated
  *before* ``execute_cube`` from per-dimension literal cardinalities;
- ``max_candidates`` — candidate (query, claim) pairs a claim's candidate
  space may enumerate.

Space checks are predictive where possible: :func:`estimate_cube_cells`
bounds the rolled-up result of a cube without touching a row, so the
engine can refuse to build an intractable cube entirely. Exceeding any
limit raises :class:`~repro.errors.BudgetExceeded`, which the checker
converts into the same reduced-scope -> unverifiable degradation ladder
as deadline expiry (budget-degraded verdicts are never memoized).

Like :class:`~repro.deadline.Deadline`, a budget is shared by reference:
the checker installs one budget on the engine for the duration of a
document, so nested consumers count against one set of limits.
"""

from __future__ import annotations

from repro.deadline import Deadline
from repro.errors import BudgetExceeded


def estimate_cube_cells(
    dimensions: tuple[str, ...] | list[str],
    literal_map: dict[str, object],
    estimated_rows: int | None = None,
) -> int:
    """Upper-bound the rolled-up cell count of a cube before executing it.

    Each dimension of a rolled-up cube cell takes one of ``|literals| + 2``
    values: a distinct literal, ``DEFAULT_LITERAL`` (the collapsed
    complement), or ``ALL`` (rolled up). The product over dimensions is
    therefore a true upper bound on the number of cells ``execute_cube``
    can produce after rollup — computable from the literal map alone,
    before any row is touched.

    ``estimated_rows``, when given, is an upper bound on the base
    relation's cardinality (storage adapters derive it join-fan-out-aware
    without materializing; see ``StorageAdapter.estimated_cardinality``).
    It tightens the bound: at most ``min(prod(|literals_d| + 1), rows)``
    base groups can be non-empty, and each contributes at most ``2^d``
    rolled cells — so a cube over a tiny relation is admitted even when
    its literal-product bound alone would trip the budget.
    """
    cells = 1
    for dim in dimensions:
        literals = literal_map.get(dim) or ()
        cells *= len(literals) + 2
    if estimated_rows is not None:
        groups = 1
        for dim in dimensions:
            literals = literal_map.get(dim) or ()
            groups *= len(literals) + 1
        rolled = min(groups, max(estimated_rows, 0)) * (1 << len(dimensions))
        cells = min(cells, rolled)
    return cells


class ResourceBudget:
    """Time + space limits checked cooperatively at stage boundaries.

    Any limit may be ``None`` (unlimited); a budget with no limits at all
    is valid and checks are no-ops. ``deadline`` is shared by reference,
    so one wall clock governs every consumer holding this budget.
    """

    __slots__ = ("deadline", "max_rows", "max_cube_cells", "max_candidates")

    def __init__(
        self,
        deadline: Deadline | None = None,
        max_rows: int | None = None,
        max_cube_cells: int | None = None,
        max_candidates: int | None = None,
    ) -> None:
        for name, value in (
            ("max_rows", max_rows),
            ("max_cube_cells", max_cube_cells),
            ("max_candidates", max_candidates),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        self.deadline = deadline
        self.max_rows = max_rows
        self.max_cube_cells = max_cube_cells
        self.max_candidates = max_candidates

    def check_time(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the wall clock is spent."""
        if self.deadline is not None:
            self.deadline.check(stage)

    def check_rows(self, n_rows: int, stage: str) -> None:
        """Refuse to execute over a relation larger than ``max_rows``."""
        if self.max_rows is not None and n_rows > self.max_rows:
            raise BudgetExceeded("rows", stage, self.max_rows, n_rows)

    def check_cube(self, estimated_cells: int, stage: str) -> None:
        """Refuse to build a cube whose estimate exceeds ``max_cube_cells``."""
        if (
            self.max_cube_cells is not None
            and estimated_cells > self.max_cube_cells
        ):
            raise BudgetExceeded(
                "cube_cells", stage, self.max_cube_cells, estimated_cells
            )

    def check_candidates(self, n_candidates: int, stage: str) -> None:
        """Refuse to enumerate a candidate space over ``max_candidates``."""
        if (
            self.max_candidates is not None
            and n_candidates > self.max_candidates
        ):
            raise BudgetExceeded(
                "candidates", stage, self.max_candidates, n_candidates
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResourceBudget(deadline={self.deadline!r}, "
            f"max_rows={self.max_rows}, "
            f"max_cube_cells={self.max_cube_cells}, "
            f"max_candidates={self.max_candidates})"
        )
