"""Article generation: themed documents with ground-truth claims.

Each article is built around a *document theme* (concentrated choices of
aggregation function, aggregation column, and predicate columns — the
property measured in the paper's Figure 9b), rendered into a hierarchical
HTML document. Difficulty is injected the way the paper describes real
articles behaving:

- predicate context moved out of the claim sentence into headlines or
  paragraph-leading sentences (Algorithm 2's reason to exist),
- value phrases that differ from stored data values ("lifetime bans" vs
  "indef"),
- claims that do not state their aggregation function explicitly.

Roughly 12% of claims are perturbed into errors (clustered into a third of
the articles, matching Appendix B), and every claim's label is verified
with the admissible-rounding predicate before the article is emitted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.spec import ColumnSpec, GroundTruthClaim, TestCase, ThemeSpec
from repro.db.aggregates import AggregateFunction
from repro.db.executor import execute_query
from repro.db.joins import JoinGraph
from repro.db.predicates import Predicate
from repro.db.query import AggregateSpec, ColumnRef, STAR, SimpleAggregateQuery
from repro.db.schema import Database
from repro.db.sql import render_sql
from repro.errors import CorpusError
from repro.nlp.numbers import extract_number_mentions, round_to_significant, rounds_to
from repro.nlp.tokens import tokenize_with_punct

_SPELLED = {
    1: "one", 2: "two", 3: "three", 4: "four", 5: "five", 6: "six",
    7: "seven", 8: "eight", 9: "nine", 10: "ten", 11: "eleven", 12: "twelve",
}

_FILLER_SENTENCES = (
    "The data tells a remarkably consistent story.",
    "Readers kept asking for the details behind these figures.",
    "The pattern holds across the whole data set.",
    "That finding surprised almost everybody we talked to.",
    "The records were collected and cleaned by hand.",
    "Context matters when reading tables like this.",
    "We double-checked the raw files before publishing.",
)

_PARAGRAPH_LEADS = (
    "This section focuses on {phrase}.",
    "Consider the records about {phrase}.",
    "Now look at {phrase} specifically.",
    "The story is different for {phrase}.",
)

_HEADLINE_TEMPLATES = (
    "{phrase}",
    "A closer look at {phrase}",
    "What the data says about {phrase}",
)


@dataclass(frozen=True)
class ArticleConfig:
    """Knobs calibrated to the paper's corpus statistics (Appendix B)."""

    claims_range: tuple[int, int] = (5, 11)
    #: zero / one / two predicate shares (paper Figure 9c: 17/61/23).
    predicate_mix: tuple[float, float, float] = (0.17, 0.60, 0.23)
    #: Fraction of articles containing at least one error (17/53).
    error_article_rate: float = 0.32
    #: Per-claim error rate inside an error-prone article (0.32*0.36~12%).
    error_claim_rate: float = 0.36
    #: Chance that a section-shared predicate lives only in the headline.
    headline_context_rate: float = 0.55
    #: Chance that a predicate is conveyed by the paragraph lead sentence.
    paragraph_context_rate: float = 0.2
    #: Chance that a non-shared predicate is left implicit — mentioned
    #: nowhere in the text, as real articles routinely do ("claim sentence
    #: is often missing required context", paper Section 1).
    implicit_context_rate: float = 0.3
    #: Chance to spell small integer values out as words.
    spell_rate: float = 0.5
    #: Chance of a hedged claim ("more than 120") — correct to a human
    #: reader but outside the admissible-rounding model, so the system
    #: flags it (a false-positive source real articles exhibit).
    hedge_rate: float = 0.1
    max_claim_attempts: int = 40


@dataclass
class _PlannedClaim:
    query: SimpleAggregateQuery
    truth: GroundTruthClaim
    sentence: str
    section_value: str | None  # section-shared predicate value (or None)
    context_mode: str


class ArticleBuilder:
    """Generates one article for a theme + database pair."""

    def __init__(
        self,
        theme: ThemeSpec,
        database: Database,
        rng: random.Random,
        config: ArticleConfig | None = None,
    ) -> None:
        self.theme = theme
        self.database = database
        self.table = database.table(theme.table_name)
        self.rng = rng
        self.config = config or ArticleConfig()
        self._join_graph = JoinGraph(database)
        # Document theme: concentrated function / column / predicate focus.
        self.primary_function = self._pick_primary_function()
        self.primary_predicate = theme.predicate_targets[0]
        self.secondary_predicates = list(theme.predicate_targets[1:])

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def build(self, case_id: str) -> TestCase:
        error_prone = self.rng.random() < self.config.error_article_rate
        n_claims = self.rng.randint(*self.config.claims_range)
        section_values = self._section_values()
        planned: list[_PlannedClaim] = []
        for index in range(n_claims):
            section_value = section_values[index % len(section_values)]
            claim = self._plan_claim(section_value, error_prone)
            if claim is not None:
                planned.append(claim)
        if len(planned) < 3:
            raise CorpusError(
                f"theme {self.theme.name}: could not plan enough claims"
            )
        # Render sections in a fixed order and keep ground truth aligned
        # with the claims' document order.
        ordered = [
            claim
            for value in section_values
            for claim in planned
            if claim.section_value == value
        ]
        html = self._render_html(ordered, section_values)
        case = TestCase(
            case_id=case_id,
            theme_name=self.theme.name,
            html=html,
            database=self.database,
            ground_truth=[claim.truth for claim in ordered],
        )
        case.claims  # force alignment validation
        return case

    # ------------------------------------------------------------------
    # claim planning
    # ------------------------------------------------------------------

    def _pick_primary_function(self) -> AggregateFunction:
        choices = [
            (AggregateFunction.COUNT, 0.5),
            (AggregateFunction.PERCENTAGE, 0.2),
            (AggregateFunction.SUM, 0.1),
            (AggregateFunction.AVG, 0.1),
            (AggregateFunction.COUNT_DISTINCT, 0.05),
            (AggregateFunction.MAX, 0.05),
        ]
        functions, weights = zip(*choices)
        return self.rng.choices(functions, weights=weights, k=1)[0]

    def _section_values(self) -> list[str]:
        column = self.theme.column(self.primary_predicate)
        values = [
            str(v)
            for v in self.table.distinct_values(column.name, limit=10)
        ]
        self.rng.shuffle(values)
        count = min(len(values), self.rng.randint(2, 3))
        return values[:count] or [""]

    def _plan_claim(
        self, section_value: str, error_prone: bool
    ) -> _PlannedClaim | None:
        for _ in range(self.config.max_claim_attempts):
            claim = self._try_plan_claim(section_value, error_prone)
            if claim is not None:
                return claim
        return None

    def _try_plan_claim(
        self, section_value: str, error_prone: bool
    ) -> _PlannedClaim | None:
        function = self._claim_function()
        n_predicates = self._claim_predicate_count(function)
        predicates = self._claim_predicates(n_predicates, section_value)
        if len(predicates) < n_predicates:
            return None
        aggregate = self._claim_aggregate(function)
        if aggregate is None:
            return None
        if function is AggregateFunction.CONDITIONAL_PROBABILITY:
            condition, *event = predicates
            query = SimpleAggregateQuery(aggregate, tuple(event), condition)
        else:
            query = SimpleAggregateQuery(aggregate, tuple(predicates))
        result = execute_query(self.database, query, self._join_graph)
        if not isinstance(result, (int, float)):
            return None
        claimed = self._choose_claimed_value(function, result)
        if claimed is None:
            return None
        is_correct = True
        hedge_prefix = ""
        if (
            function in (AggregateFunction.COUNT, AggregateFunction.SUM)
            and result >= 20
            and self.rng.random() < self.config.hedge_rate
        ):
            hedged = self._hedge_value(result)
            if hedged is not None:
                claimed = hedged
                hedge_prefix = self.rng.choice(("more than ", "well over "))
        elif error_prone and self.rng.random() < self.config.error_claim_rate:
            wrong = self._perturb(result, claimed)
            if wrong is not None:
                claimed = wrong
                is_correct = False
        rendered, spelled = self._render_value(function, claimed)
        rendered = f"{hedge_prefix}{rendered}" if hedge_prefix else rendered
        sentence, context_mode = self._render_sentence(
            function, aggregate, query, rendered, section_value
        )
        if sentence is None:
            return None
        if not self._sentence_is_clean(sentence, claimed):
            return None
        truth = GroundTruthClaim(
            sql=render_sql(query),
            query=query,
            true_result=float(result),
            claimed_value=float(claimed),
            claimed_text=rendered,
            is_correct=is_correct,
            context_mode=context_mode,
        )
        return _PlannedClaim(query, truth, sentence, section_value, context_mode)

    def _claim_function(self) -> AggregateFunction:
        # Strong document theme: primary function dominates (Figure 9b).
        if self.rng.random() < 0.7:
            return self.primary_function
        pool = [
            AggregateFunction.COUNT,
            AggregateFunction.PERCENTAGE,
            AggregateFunction.SUM,
            AggregateFunction.AVG,
            AggregateFunction.MIN,
            AggregateFunction.MAX,
            AggregateFunction.COUNT_DISTINCT,
            AggregateFunction.CONDITIONAL_PROBABILITY,
        ]
        return self.rng.choice(pool)

    def _claim_predicate_count(self, function: AggregateFunction) -> int:
        if function is AggregateFunction.CONDITIONAL_PROBABILITY:
            return 2
        mix = self.config.predicate_mix
        n = self.rng.choices((0, 1, 2), weights=mix, k=1)[0]
        if function is AggregateFunction.PERCENTAGE:
            n = max(n, 1)
        return n

    def _claim_predicates(
        self, count: int, section_value: str
    ) -> list[Predicate]:
        if count == 0:
            return []
        predicates: list[Predicate] = []
        columns: list[str] = []
        # The section's shared predicate comes first most of the time.
        if section_value and self.rng.random() < 0.75:
            columns.append(self.primary_predicate)
        pool = [c for c in self.secondary_predicates if c not in columns]
        self.rng.shuffle(pool)
        columns.extend(pool)
        for name in columns[:count]:
            column = self.theme.column(name)
            if name == self.primary_predicate and section_value:
                value = self._data_value(name, section_value)
            else:
                choices = self.table.distinct_values(name, limit=12)
                if not choices:
                    continue
                value = self.rng.choice(choices)
            if value is None:
                continue
            predicates.append(
                Predicate(ColumnRef(self.table.name, name), value)
            )
        return predicates

    def _data_value(self, column_name: str, wanted: str):
        for value in self.table.distinct_values(column_name, limit=50):
            if str(value) == wanted:
                return value
        return None

    def _claim_aggregate(
        self, function: AggregateFunction
    ) -> AggregateSpec | None:
        if function in (
            AggregateFunction.COUNT,
            AggregateFunction.PERCENTAGE,
            AggregateFunction.CONDITIONAL_PROBABILITY,
        ):
            return AggregateSpec(function, STAR)
        if function is AggregateFunction.COUNT_DISTINCT:
            entity_columns = [
                spec for spec in self.theme.columns if spec.kind == "entity"
            ]
            if not entity_columns:
                return None
            column = self.rng.choice(entity_columns)
            return AggregateSpec(
                function, ColumnRef(self.table.name, column.name)
            )
        numeric_targets = [
            name for name in self.theme.aggregation_targets if name
        ]
        if not numeric_targets:
            return None
        name = self.rng.choice(numeric_targets)
        return AggregateSpec(function, ColumnRef(self.table.name, name))

    # ------------------------------------------------------------------
    # value selection and rendering
    # ------------------------------------------------------------------

    def _choose_claimed_value(
        self, function: AggregateFunction, result: float
    ) -> float | None:
        if function in (
            AggregateFunction.COUNT,
            AggregateFunction.COUNT_DISTINCT,
        ):
            if result <= 0:
                return None
            return float(result)
        if function.is_ratio:
            if not 0.5 <= result <= 99.5:
                return None
            candidate = float(round(result))
            if rounds_to(result, candidate):
                return candidate
            candidate = round_to_significant(result, 2)
            return candidate if rounds_to(result, candidate) else None
        # Sum / Avg / Min / Max: round to 2-3 significant digits.
        digits = self.rng.choice((2, 3))
        candidate = round_to_significant(result, digits)
        if candidate == 0 or not rounds_to(result, candidate):
            return None
        return candidate

    def _hedge_value(self, result: float) -> float | None:
        """A round number strictly below the result that no admissible
        rounding reaches (the hedge carries the truth, not the digits)."""
        import math

        for digits in (1, 2):
            magnitude = math.floor(math.log10(abs(result)))
            unit = 10.0 ** (magnitude - digits + 1)
            floored = math.floor(result / unit) * unit
            if (
                0 < floored < result
                and not rounds_to(result, floored)
                and _format_roundtrips(floored)
            ):
                return floored
        return None

    def _perturb(self, result: float, claimed: float) -> float | None:
        """A wrong claimed value that no admissible rounding rescues."""
        deltas = [1.0, -1.0, 2.0, -2.0]
        magnitude = max(abs(claimed), 1.0)
        scaled = [
            round_to_significant(claimed * factor, 3)
            for factor in (1.25, 0.75, 1.5)
        ]
        candidates = [claimed + d * _last_digit_unit(claimed) for d in deltas]
        candidates += [claimed + d for d in deltas if magnitude < 10]
        candidates += scaled
        for candidate in candidates:
            if candidate <= 0:
                continue
            if rounds_to(result, candidate):
                continue
            if _format_roundtrips(candidate):
                return candidate
        return None

    def _render_value(
        self, function: AggregateFunction, claimed: float
    ) -> tuple[str, bool]:
        is_int = float(claimed).is_integer()
        value = int(claimed) if is_int else claimed
        if (
            is_int
            and 1 <= value <= 12
            and self.rng.random() < self.config.spell_rate
        ):
            return _SPELLED[int(value)], True
        if is_int:
            return (f"{int(value):,}" if value >= 1000 else str(int(value))), False
        return _format_float(claimed), False

    # ------------------------------------------------------------------
    # sentence rendering
    # ------------------------------------------------------------------

    def _render_sentence(
        self,
        function: AggregateFunction,
        aggregate: AggregateSpec,
        query: SimpleAggregateQuery,
        rendered_value: str,
        section_value: str,
    ) -> tuple[str | None, str]:
        # Decide which predicates appear in the sentence vs the context.
        context_mode = "sentence"
        sentence_predicates = list(query.all_predicates)
        shared = [
            p
            for p in sentence_predicates
            if p.column.column == self.primary_predicate
            and str(p.value) == section_value
        ]
        if shared and self.rng.random() < self.config.headline_context_rate:
            for predicate in shared:
                sentence_predicates.remove(predicate)
            context_mode = "headline"
        elif shared and self.rng.random() < self.config.paragraph_context_rate:
            for predicate in shared:
                sentence_predicates.remove(predicate)
            context_mode = "paragraph"
        elif (
            len(sentence_predicates) > 1
            and self.rng.random() < self.config.implicit_context_rate
        ):
            # Drop one predicate from the text entirely: the reader is
            # expected to infer it, the system has to guess.
            dropped = self.rng.choice(sentence_predicates)
            sentence_predicates.remove(dropped)
            context_mode = "implicit"
        predicate_phrase = self._predicate_phrase(sentence_predicates)
        text = self._sentence_template(
            function, aggregate, rendered_value, predicate_phrase
        )
        return text, context_mode

    def _predicate_phrase(self, predicates: list[Predicate]) -> str:
        parts = []
        for predicate in predicates:
            column = self.theme.column(predicate.column.column)
            phrase = column.phrase_for(predicate.value)
            if column.kind == "year":
                parts.append(f"in {phrase}")
            elif self.rng.random() < 0.5:
                parts.append(f"for {phrase}")
            else:
                parts.append(f"with {column.text_phrase()} of {phrase}")
        return " and ".join(parts)

    def _sentence_template(
        self,
        function: AggregateFunction,
        aggregate: AggregateSpec,
        value: str,
        preds: str,
    ) -> str:
        entity = self.theme.entity_noun
        preds = f" {preds}" if preds else ""
        rng = self.rng
        if function is AggregateFunction.COUNT:
            return rng.choice(
                (
                    f"There were {value} {entity}{preds}.",
                    f"The data lists {value} {entity}{preds}.",
                    f"In total, the records show {value} {entity}{preds}.",
                )
            )
        if function is AggregateFunction.COUNT_DISTINCT:
            phrase = self.theme.column(aggregate.column.column).text_phrase()
            return rng.choice(
                (
                    f"Money went to {value} different {phrase}s{preds}.",
                    f"The records name {value} distinct {phrase}s{preds}.",
                )
            )
        if function is AggregateFunction.PERCENTAGE:
            return rng.choice(
                (
                    f"{value} percent of {entity} were{preds}.",
                    f"About {value} percent of all {entity} were{preds}.",
                )
            )
        if function is AggregateFunction.CONDITIONAL_PROBABILITY:
            return (
                f"Among those{preds}, {value} percent of {entity} fall in "
                "that group."
            )
        phrase = self.theme.column(aggregate.column.column).text_phrase()
        if function is AggregateFunction.SUM:
            return rng.choice(
                (
                    f"The combined {phrase}{preds} reached {value}.",
                    f"Altogether the total {phrase}{preds} came to {value}.",
                )
            )
        if function is AggregateFunction.AVG:
            return rng.choice(
                (
                    f"The typical {phrase}{preds} was {value}.",
                    f"On average, the {phrase}{preds} stood at {value}.",
                )
            )
        if function is AggregateFunction.MIN:
            return f"The lowest {phrase}{preds} was {value}."
        return f"The highest {phrase}{preds} was {value}."

    def _sentence_is_clean(self, sentence: str, claimed: float) -> bool:
        """Exactly one claim-like number, and it parses to the claimed
        value (guarantees detect_claims alignment)."""
        mentions = [
            m
            for m in extract_number_mentions(tokenize_with_punct(sentence))
            if not m.is_ordinal and not m.is_year_like
        ]
        return len(mentions) == 1 and abs(mentions[0].value - claimed) < 1e-9

    # ------------------------------------------------------------------
    # document assembly
    # ------------------------------------------------------------------

    def _render_html(
        self, planned: list[_PlannedClaim], section_values: list[str]
    ) -> str:
        column = self.theme.column(self.primary_predicate)
        parts = [f"<title>{self.theme.title}</title>"]
        for value in section_values:
            section_claims = [c for c in planned if c.section_value == value]
            if not section_claims:
                continue
            phrase = column.phrase_for(value)
            headline = self.rng.choice(_HEADLINE_TEMPLATES).format(phrase=phrase)
            parts.append(f"<h2>{_capitalize(headline)}</h2>")
            parts.extend(self._render_paragraphs(section_claims, phrase))
        return "\n".join(parts)

    def _render_paragraphs(
        self, claims: list[_PlannedClaim], phrase: str
    ) -> list[str]:
        paragraphs: list[str] = []
        index = 0
        while index < len(claims):
            batch = claims[index : index + self.rng.randint(1, 3)]
            index += len(batch)
            sentences: list[str] = []
            if any(c.context_mode == "paragraph" for c in batch):
                lead = self.rng.choice(_PARAGRAPH_LEADS).format(phrase=phrase)
                sentences.append(_capitalize(lead))
            elif self.rng.random() < 0.4:
                sentences.append(self.rng.choice(_FILLER_SENTENCES))
            sentences.extend(c.sentence for c in batch)
            if self.rng.random() < 0.3:
                sentences.append(self.rng.choice(_FILLER_SENTENCES))
            paragraphs.append(f"<p>{' '.join(sentences)}</p>")
        return paragraphs


def _last_digit_unit(value: float) -> float:
    """Unit of the last significant digit (perturbation granularity)."""
    import math

    if value == 0:
        return 1.0
    magnitude = math.floor(math.log10(abs(value)))
    return 10.0 ** max(magnitude - 1, 0)


def _format_float(value: float) -> str:
    text = f"{value:,.2f}".rstrip("0").rstrip(".")
    return text if text else "0"


def _format_roundtrips(value: float) -> bool:
    """The value survives rendering and re-parsing (keeps labels exact)."""
    from repro.nlp.numbers import extract_number_mentions
    from repro.nlp.tokens import tokenize_with_punct

    if float(value).is_integer():
        rendered = f"{int(value):,}" if value >= 1000 else str(int(value))
    else:
        rendered = _format_float(value)
    mentions = extract_number_mentions(tokenize_with_punct(rendered))
    return bool(mentions) and abs(mentions[0].value - value) < 1e-9


def _capitalize(text: str) -> str:
    return text[:1].upper() + text[1:] if text else text
