"""Hand-built test case: the paper's NFL-suspensions running example.

Reconstructs the passage from [12] (FiveThirtyEight, "The NFL's Uneven
History Of Punishing Domestic Violence") and a data set consistent with
it: four lifetime bans, three of them for repeated substance abuse, one
for gambling. The third claim from the paper's Table 9 — the stale "four"
after a data update — is available via ``stale=True``.
"""

from __future__ import annotations

from repro.corpus.spec import GroundTruthClaim, TestCase
from repro.db.schema import Column, ColumnType, Database, Table
from repro.db.sql import parse_query

_ROWS = [
    ("Ray Rice", "BAL", "2", "domestic violence", 2014),
    ("Sean Payton", "NO", "16", "bounty scandal", 2012),
    ("Art Schlichter", "BAL", "indef", "gambling", 1983),
    ("Stanley Wilson", "CIN", "indef", "substance abuse, repeated offense", 1989),
    ("Dexter Manley", "WAS", "indef", "substance abuse, repeated offense", 1991),
    ("Roy Tarpley", "DAL", "indef", "substance abuse, repeated offense", 1995),
    ("Adam Jones", "CIN", "16", "personal conduct", 2007),
    ("Tanard Jackson", "WAS", "16", "substance abuse", 2012),
    ("Josh Gordon", "CLE", "16", "substance abuse", 2014),
]

#: A fifth lifetime ban added after publication (the authors' comment in
#: Table 9: "the data was updated on Sept. 22 ... the article text should
#: also have been updated").
_UPDATE_ROW = ("Late Addition", "SEA", "indef", "personal conduct", 2014)

_HTML = """
<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>Lifetime bans</h1>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
"""


def nfl_database(stale: bool = False) -> Database:
    rows = list(_ROWS) + ([_UPDATE_ROW] if stale else [])
    table = Table(
        "nflsuspensions",
        [
            Column("Name"),
            Column("Team"),
            Column("Games"),
            Column("Category"),
            Column("Year", ColumnType.NUMERIC),
        ],
        rows,
    )
    return Database("nfl", [table])


def nfl_suspensions_case(stale: bool = False) -> TestCase:
    """The running example; with ``stale=True`` the first claim is wrong
    (the paper's confirmed real-world error)."""
    database = nfl_database(stale)
    truths = [
        GroundTruthClaim(
            sql="SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'",
            query=parse_query(
                "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef'",
                database,
            ),
            true_result=5.0 if stale else 4.0,
            claimed_value=4.0,
            claimed_text="four",
            is_correct=not stale,
            context_mode="sentence",
        ),
        GroundTruthClaim(
            sql=(
                "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
                "AND Category = 'substance abuse, repeated offense'"
            ),
            query=parse_query(
                "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
                "AND Category = 'substance abuse, repeated offense'",
                database,
            ),
            true_result=3.0,
            claimed_value=3.0,
            claimed_text="Three",
            is_correct=True,
            context_mode="paragraph",
        ),
        GroundTruthClaim(
            sql=(
                "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
                "AND Category = 'gambling'"
            ),
            query=parse_query(
                "SELECT Count(*) FROM nflsuspensions WHERE Games = 'indef' "
                "AND Category = 'gambling'",
                database,
            ),
            true_result=1.0,
            claimed_value=1.0,
            claimed_text="one",
            is_correct=True,
            context_mode="sentence",
        ),
    ]
    return TestCase(
        case_id="builtin_nfl" + ("_stale" if stale else ""),
        theme_name="nfl_suspensions",
        html=_HTML,
        database=database,
        ground_truth=truths,
    )
