"""Specifications for corpus themes, test cases, and ground truth."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.db.query import SimpleAggregateQuery
from repro.db.schema import Database
from repro.errors import CorpusError
from repro.text.claims import Claim, detect_claims
from repro.text.document import Document
from repro.text.htmlparse import parse_html


@dataclass(frozen=True)
class ColumnSpec:
    """Blueprint for one generated column.

    ``kind``:
      - ``category``: values drawn from ``values``; predicate target.
      - ``entity``: unique-ish names (rarely predicates).
      - ``numeric``: numbers in ``numeric_range``; aggregation target.
      - ``year``: calendar years (numeric, also a predicate target).

    ``phrase`` is how article text refers to the column ("category",
    "team"); ``value_phrases`` maps data values to the wording used in text
    — when the wording differs from the stored value ("indef" vs "lifetime
    bans") the claim is hard for keyword matching, reproducing the paper's
    abbreviation challenge.
    """

    name: str
    kind: str
    values: tuple[str, ...] = ()
    numeric_range: tuple[float, float] = (0.0, 100.0)
    integer: bool = True
    phrase: str = ""
    value_phrases: dict[str, str] = field(default_factory=dict)

    def text_phrase(self) -> str:
        return self.phrase or self.name.replace("_", " ").lower()

    def phrase_for(self, value: object) -> str:
        return self.value_phrases.get(str(value), str(value))


@dataclass(frozen=True)
class ThemeSpec:
    """Blueprint for one article domain."""

    name: str
    table_name: str
    title: str
    entity_noun: str  # "suspensions", "respondents", ...
    columns: tuple[ColumnSpec, ...]
    row_range: tuple[int, int] = (40, 200)
    #: Columns claims aggregate over (numeric column names; "" means '*').
    aggregation_targets: tuple[str, ...] = ("",)
    #: Columns claims restrict (category/year column names), most
    #: thematic first — documents concentrate on the leading ones.
    predicate_targets: tuple[str, ...] = ()
    #: Extra filler columns to widen the schema (Figure 8 scale).
    filler_columns: int = 0

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise CorpusError(f"theme {self.name!r} has no column {name!r}")


@dataclass
class GroundTruthClaim:
    """One generated claim with its hand-checkable ground truth."""

    sql: str
    query: SimpleAggregateQuery
    true_result: float
    claimed_value: float
    claimed_text: str
    is_correct: bool
    #: How the predicate context was conveyed: "sentence", "headline",
    #: or "paragraph" (difficulty marker; drives Figure 11 shape).
    context_mode: str = "sentence"


@dataclass
class TestCase:
    """A generated article plus its database and ground truth."""

    case_id: str
    theme_name: str
    html: str
    database: Database
    ground_truth: list[GroundTruthClaim]
    data_dictionary: dict[str, str] | None = None

    @cached_property
    def document(self) -> Document:
        return parse_html(self.html)

    @cached_property
    def claims(self) -> list[Claim]:
        """Detected claims, aligned 1:1 with ground truth."""
        claims = detect_claims(self.document)
        if len(claims) != len(self.ground_truth):
            raise CorpusError(
                f"case {self.case_id}: detected {len(claims)} claims but "
                f"generated {len(self.ground_truth)}"
            )
        for claim, truth in zip(claims, self.ground_truth):
            if abs(claim.claimed_value - truth.claimed_value) > 1e-9:
                raise CorpusError(
                    f"case {self.case_id}: claim value {claim.claimed_value} "
                    f"!= ground truth {truth.claimed_value}"
                )
        return claims

    def truth_for(self, claim: Claim) -> GroundTruthClaim:
        index = self.claims.index(claim)
        return self.ground_truth[index]

    @property
    def erroneous_count(self) -> int:
        return sum(1 for truth in self.ground_truth if not truth.is_correct)
