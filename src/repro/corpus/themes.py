"""The theme catalog: domain blueprints for the synthetic corpus.

Themes mirror the paper's source mix — sports (538), politics (NYT
Upshot), developer surveys (Stack Overflow), economics and general
knowledge (Vox, Wikipedia). Several themes carry deliberate difficulty:
abbreviated data values ("indef"), wordy value phrases, and overlapping
vocabulary between columns.
"""

from __future__ import annotations

from repro.corpus.spec import ColumnSpec, ThemeSpec

_FIRST = (
    "Alex", "Jordan", "Casey", "Riley", "Morgan", "Avery", "Quinn",
    "Hayden", "Rowan", "Sawyer", "Emerson", "Finley", "Skyler", "Dakota",
)
_LAST = (
    "Smith", "Jones", "Miller", "Davis", "Garcia", "Wilson", "Moore",
    "Taylor", "Clark", "Lewis", "Walker", "Hall", "Young", "King",
)


def person_names() -> tuple[str, ...]:
    return tuple(f"{first} {last}" for first in _FIRST for last in _LAST)


NFL_SUSPENSIONS = ThemeSpec(
    name="nfl_suspensions",
    table_name="nflsuspensions",
    title="The League's Uneven History Of Punishing Players",
    entity_noun="suspensions",
    columns=(
        ColumnSpec("Name", "entity", values=person_names(), phrase="player"),
        ColumnSpec(
            "Team",
            "category",
            values=("BAL", "CIN", "WAS", "DAL", "CLE", "NO", "SEA", "DEN"),
            phrase="team",
        ),
        ColumnSpec(
            "Games",
            "category",
            values=("1", "2", "4", "8", "16", "indef"),
            phrase="games",
            value_phrases={
                "1": "single-game bans",
                "2": "brief bans",
                "4": "quarter-season bans",
                "8": "half-season bans",
                "16": "season-long bans",
                "indef": "lifetime bans",
            },
        ),
        ColumnSpec(
            "Category",
            "category",
            values=(
                "substance abuse",
                "substance abuse, repeated offense",
                "gambling",
                "domestic violence",
                "personal conduct",
                "performance enhancers",
            ),
            phrase="violation category",
        ),
        ColumnSpec("Year", "year", numeric_range=(1980, 2014), phrase="season"),
    ),
    row_range=(60, 120),
    aggregation_targets=("",),
    predicate_targets=("Games", "Category", "Team"),
)

CAMPAIGN_FINANCE = ThemeSpec(
    name="campaign_finance",
    table_name="donations",
    title="Race In The Primary Involves Donating Dollars",
    entity_noun="donations",
    columns=(
        ColumnSpec("Recipient", "entity", values=person_names(), phrase="candidate"),
        ColumnSpec(
            "Party",
            "category",
            values=("democrat", "republican", "independent"),
            phrase="party",
        ),
        ColumnSpec(
            "Committee",
            "category",
            values=("campaign fund", "leadership pac", "joint committee"),
            phrase="committee",
            value_phrases={"leadership pac": "leadership political action committees"},
        ),
        ColumnSpec(
            "State",
            "category",
            values=("CA", "TX", "NY", "FL", "OH"),
            phrase="state",
            value_phrases={
                "CA": "California", "TX": "Texas", "NY": "New York",
                "FL": "Florida", "OH": "Ohio",
            },
        ),
        ColumnSpec(
            "Amount",
            "numeric",
            numeric_range=(250, 5200),
            phrase="donation amount",
        ),
    ),
    row_range=(80, 200),
    aggregation_targets=("", "Amount", "Recipient"),
    predicate_targets=("Party", "Committee", "State"),
)

DEVELOPER_SURVEY = ThemeSpec(
    name="developer_survey",
    table_name="stackoverflow2016",
    title="Developer Survey Results",
    entity_noun="respondents",
    columns=(
        ColumnSpec(
            "Education",
            "category",
            values=(
                "bachelor's degree",
                "master's degree",
                "i'm self-taught",
                "online course",
                "bootcamp",
            ),
            phrase="education",
            value_phrases={"i'm self-taught": "only self-taught"},
        ),
        ColumnSpec(
            "Occupation",
            "category",
            values=(
                "full-stack developer",
                "back-end developer",
                "front-end developer",
                "data scientist",
                "devops",
            ),
            phrase="occupation",
        ),
        ColumnSpec(
            "Country",
            "category",
            values=("united states", "germany", "india", "brazil", "japan"),
            phrase="country",
        ),
        ColumnSpec(
            "Remote",
            "category",
            values=("never", "sometimes", "full-time remote"),
            phrase="remote work",
        ),
        ColumnSpec(
            "Salary",
            "numeric",
            numeric_range=(28000, 160000),
            phrase="salary",
        ),
        ColumnSpec(
            "YearsExperience",
            "numeric",
            numeric_range=(1, 30),
            phrase="years of experience",
        ),
    ),
    row_range=(150, 400),
    aggregation_targets=("", "Salary", "YearsExperience"),
    predicate_targets=("Education", "Occupation", "Country", "Remote"),
    # The paper's Stack Overflow survey has 154 columns and >10^12
    # candidate queries (Figure 8); the filler schema reproduces that
    # heavy tail.
    filler_columns=90,
)

AIRLINE_ETIQUETTE = ThemeSpec(
    name="airline_etiquette",
    table_name="flyingetiquette",
    title="41 Percent Of Fliers Say Reclining Your Seat Is Rude",
    entity_noun="fliers",
    columns=(
        ColumnSpec(
            "RecliningRude",
            "category",
            values=("very rude", "somewhat rude", "not rude"),
            phrase="reclining opinion",
        ),
        ColumnSpec(
            "TravelFrequency",
            "category",
            values=("never", "once a year", "monthly", "weekly"),
            phrase="travel frequency",
        ),
        ColumnSpec(
            "SeatPreference",
            "category",
            values=("window", "middle", "aisle"),
            phrase="seat preference",
        ),
        ColumnSpec("Age", "numeric", numeric_range=(18, 80), phrase="age"),
        ColumnSpec(
            "Height",
            "numeric",
            numeric_range=(150, 200),
            phrase="height",
        ),
    ),
    row_range=(120, 300),
    aggregation_targets=("", "Age", "Height"),
    predicate_targets=("RecliningRude", "TravelFrequency", "SeatPreference"),
)

FIFA_SPENDING = ThemeSpec(
    name="fifa_spending",
    table_name="fifaprojects",
    title="The Reign At FIFA Hasn't Helped Soccer's Poor",
    entity_noun="projects",
    columns=(
        ColumnSpec(
            "Region",
            "category",
            values=("africa", "asia", "europe", "south america", "oceania"),
            phrase="region",
        ),
        ColumnSpec(
            "ProjectType",
            "category",
            values=("stadium", "training center", "youth program", "office"),
            phrase="project type",
        ),
        ColumnSpec(
            "Status",
            "category",
            values=("completed", "in progress", "cancelled"),
            phrase="status",
        ),
        ColumnSpec(
            "Budget",
            "numeric",
            numeric_range=(50000, 2000000),
            phrase="budget",
        ),
        ColumnSpec("Year", "year", numeric_range=(2000, 2015), phrase="year"),
    ),
    row_range=(60, 150),
    aggregation_targets=("", "Budget"),
    predicate_targets=("Region", "ProjectType", "Status"),
)

HIPHOP_LYRICS = ThemeSpec(
    name="hiphop_lyrics",
    table_name="candidatelyrics",
    title="Hip-Hop Is Turning On The Candidate",
    entity_noun="mentions",
    columns=(
        ColumnSpec("Artist", "entity", values=person_names(), phrase="artist"),
        ColumnSpec(
            "Sentiment",
            "category",
            values=("positive", "negative", "neutral"),
            phrase="sentiment",
        ),
        ColumnSpec(
            "Theme",
            "category",
            values=("money", "power", "politics", "fame"),
            phrase="theme",
        ),
        ColumnSpec("Year", "year", numeric_range=(1989, 2016), phrase="year"),
        ColumnSpec(
            "ChartPeak",
            "numeric",
            numeric_range=(1, 100),
            phrase="chart peak",
        ),
    ),
    row_range=(50, 180),
    aggregation_targets=("", "ChartPeak"),
    predicate_targets=("Sentiment", "Theme", "Year"),
)

COMMENCEMENT_SPEECHES = ThemeSpec(
    name="commencement_speeches",
    table_name="speeches",
    title="Sitting Presidents Give Way More Commencement Speeches",
    entity_noun="speeches",
    columns=(
        ColumnSpec("Speaker", "entity", values=person_names(), phrase="speaker"),
        ColumnSpec(
            "Role",
            "category",
            values=("president", "governor", "senator", "ceo", "author"),
            phrase="role",
        ),
        ColumnSpec(
            "SchoolType",
            "category",
            values=("public university", "private college", "military academy"),
            phrase="school type",
        ),
        ColumnSpec("Year", "year", numeric_range=(1990, 2016), phrase="year"),
        ColumnSpec(
            "Attendance",
            "numeric",
            numeric_range=(500, 30000),
            phrase="attendance",
        ),
    ),
    row_range=(60, 160),
    aggregation_targets=("", "Attendance"),
    predicate_targets=("Role", "SchoolType", "Year"),
)

SUNDAY_SHOWS = ThemeSpec(
    name="sunday_shows",
    table_name="sundayshows",
    title="Looking For A Senator? Try A Sunday Morning Show",
    entity_noun="appearances",
    columns=(
        ColumnSpec("Guest", "entity", values=person_names(), phrase="guest"),
        ColumnSpec(
            "Show",
            "category",
            values=(
                "meet the press",
                "face the nation",
                "this week",
                "state of the union",
            ),
            phrase="show",
        ),
        ColumnSpec(
            "Role",
            "category",
            values=("senator", "representative", "governor", "analyst"),
            phrase="role",
        ),
        ColumnSpec(
            "Party",
            "category",
            values=("democrat", "republican"),
            phrase="party",
        ),
        ColumnSpec("Year", "year", numeric_range=(2009, 2014), phrase="year"),
    ),
    row_range=(80, 220),
    aggregation_targets=("", "Guest"),
    predicate_targets=("Show", "Role", "Party"),
)

CITY_WEATHER = ThemeSpec(
    name="city_weather",
    table_name="weatherstations",
    title="A Year Of Weather Extremes Across The Country",
    entity_noun="readings",
    columns=(
        ColumnSpec(
            "Station",
            "category",
            values=("north ridge", "lakeside", "downtown", "airport", "harbor"),
            phrase="station",
        ),
        ColumnSpec(
            "Season",
            "category",
            values=("winter", "spring", "summer", "autumn"),
            phrase="season",
        ),
        ColumnSpec(
            "Rainfall",
            "numeric",
            numeric_range=(0, 300),
            phrase="rainfall",
        ),
        ColumnSpec(
            "Temperature",
            "numeric",
            numeric_range=(-10, 40),
            phrase="temperature",
        ),
    ),
    row_range=(100, 250),
    aggregation_targets=("Rainfall", "Temperature", ""),
    predicate_targets=("Station", "Season"),
)

MOVIE_RELEASES = ThemeSpec(
    name="movie_releases",
    table_name="moviereleases",
    title="The Economics Of A Crowded Movie Summer",
    entity_noun="releases",
    columns=(
        ColumnSpec(
            "Studio",
            "category",
            values=("paramount", "universal", "warner", "sony", "disney"),
            phrase="studio",
        ),
        ColumnSpec(
            "Genre",
            "category",
            values=("action", "comedy", "drama", "horror", "documentary"),
            phrase="genre",
        ),
        ColumnSpec(
            "Rating",
            "category",
            values=("g", "pg", "pg-13", "r"),
            phrase="rating",
        ),
        ColumnSpec(
            "BoxOffice",
            "numeric",
            numeric_range=(1, 400),
            phrase="box office millions",
        ),
        ColumnSpec("Year", "year", numeric_range=(2005, 2016), phrase="year"),
    ),
    row_range=(80, 200),
    aggregation_targets=("", "BoxOffice"),
    predicate_targets=("Genre", "Studio", "Rating"),
)

HOSPITAL_STATS = ThemeSpec(
    name="hospital_stats",
    table_name="hospitaladmissions",
    title="Where Hospital Beds Fill Up Fastest",
    entity_noun="admissions",
    columns=(
        ColumnSpec(
            "Department",
            "category",
            values=("cardiology", "oncology", "pediatrics", "emergency"),
            phrase="department",
        ),
        ColumnSpec(
            "Severity",
            "category",
            values=("minor", "moderate", "severe", "critical"),
            phrase="severity",
        ),
        ColumnSpec(
            "Insurance",
            "category",
            values=("private", "public", "uninsured"),
            phrase="insurance",
        ),
        ColumnSpec(
            "StayDays",
            "numeric",
            numeric_range=(1, 40),
            phrase="stay length",
        ),
        ColumnSpec(
            "Cost",
            "numeric",
            numeric_range=(400, 90000),
            phrase="cost",
        ),
    ),
    row_range=(120, 300),
    aggregation_targets=("", "StayDays", "Cost"),
    predicate_targets=("Department", "Severity", "Insurance"),
)

ELECTION_RESULTS = ThemeSpec(
    name="election_results",
    table_name="precinctvotes",
    title="What The Precinct Returns Tell Us About Turnout",
    entity_noun="precincts",
    columns=(
        ColumnSpec(
            "County",
            "category",
            values=("adams", "boone", "clay", "dekalb", "eaton"),
            phrase="county",
        ),
        ColumnSpec(
            "Winner",
            "category",
            values=("democrat", "republican", "independent"),
            phrase="winner",
        ),
        ColumnSpec(
            "UrbanRural",
            "category",
            values=("urban", "suburban", "rural"),
            phrase="area type",
        ),
        ColumnSpec(
            "Turnout",
            "numeric",
            numeric_range=(20, 90),
            phrase="turnout",
        ),
        ColumnSpec(
            "RegisteredVoters",
            "numeric",
            numeric_range=(400, 9000),
            phrase="registered voters",
        ),
    ),
    row_range=(100, 260),
    aggregation_targets=("", "Turnout", "RegisteredVoters"),
    predicate_targets=("Winner", "County", "UrbanRural"),
)

#: All single-table themes, cycled over when generating the corpus.
THEMES: tuple[ThemeSpec, ...] = (
    NFL_SUSPENSIONS,
    CAMPAIGN_FINANCE,
    DEVELOPER_SURVEY,
    AIRLINE_ETIQUETTE,
    FIFA_SPENDING,
    HIPHOP_LYRICS,
    COMMENCEMENT_SPEECHES,
    SUNDAY_SHOWS,
    CITY_WEATHER,
    MOVIE_RELEASES,
    HOSPITAL_STATS,
    ELECTION_RESULTS,
)
