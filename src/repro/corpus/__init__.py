"""Synthetic test-case corpus (substitute for the paper's 53 articles).

The paper evaluates on 53 scraped articles (538, NYT, Vox, Stack Overflow,
Wikipedia) with 392 claims, which are not available offline. This package
generates a corpus calibrated to the paper's reported statistics
(Appendix B): ~53 articles, ~7 claims each, ~12% erroneous claims, themed
documents whose top-3 query characteristics cover ~90% of claims, and a
predicate-count mix of roughly 17% / 61% / 23% for zero / one / two
predicates. The paper's NFL-suspensions running example ships as a
hand-built test case (:mod:`repro.corpus.builtin`).
"""

from repro.corpus.builtin import nfl_suspensions_case
from repro.corpus.generator import Corpus, CorpusConfig, generate_corpus
from repro.corpus.spec import ColumnSpec, GroundTruthClaim, TestCase, ThemeSpec
from repro.corpus.themes import THEMES

__all__ = [
    "ColumnSpec",
    "Corpus",
    "CorpusConfig",
    "GroundTruthClaim",
    "THEMES",
    "TestCase",
    "ThemeSpec",
    "generate_corpus",
    "nfl_suspensions_case",
]
