"""Synthetic dataset construction from theme blueprints."""

from __future__ import annotations

import random

from repro.corpus.spec import ColumnSpec, ThemeSpec
from repro.db.schema import Column, ColumnType, Database, Table
from repro.db.values import Value


def build_database(theme: ThemeSpec, rng: random.Random) -> Database:
    """Materialize one seeded database for a theme.

    Category values are drawn from a Zipf-ish distribution so that counts
    differ across values (uniform draws would make many claims
    coincidentally equal). Filler columns widen the schema for the
    query-space experiment (Figure 8) without affecting claims.
    """
    n_rows = rng.randint(*theme.row_range)
    columns: list[Column] = []
    generators = []
    for spec in theme.columns:
        columns.append(Column(spec.name, _column_type(spec)))
        generators.append(_value_generator(spec, rng))
    # Enough distinct values per filler column to reproduce the paper's
    # query-space scale (Figure 8) without touching any generated claim.
    filler_values = tuple(f"option {i:02d}" for i in range(1, 31))
    for index in range(theme.filler_columns):
        columns.append(Column(f"extra_{index + 1:02d}", ColumnType.STRING))
        generators.append(lambda rng=rng: rng.choice(filler_values))
    rows = [
        tuple(generate() for generate in generators) for _ in range(n_rows)
    ]
    table = Table(theme.table_name, columns, rows)
    return Database(theme.name, [table])


def _column_type(spec: ColumnSpec) -> ColumnType:
    if spec.kind in ("numeric", "year"):
        return ColumnType.NUMERIC
    return ColumnType.STRING


def _value_generator(spec: ColumnSpec, rng: random.Random):
    if spec.kind == "category":
        values = list(spec.values)
        weights = [1.0 / (rank + 1) for rank in range(len(values))]
        return lambda: rng.choices(values, weights=weights, k=1)[0]
    if spec.kind == "entity":
        values = list(spec.values)
        return lambda: rng.choice(values)
    if spec.kind == "year":
        low, high = spec.numeric_range
        return lambda: rng.randint(int(low), int(high))
    low, high = spec.numeric_range

    def numeric() -> Value:
        # Occasional missing cells, as in scraped data.
        if rng.random() < 0.03:
            return None
        value = rng.uniform(low, high)
        return round(value) if spec.integer else round(value, 2)

    return numeric
