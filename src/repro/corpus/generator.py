"""Corpus orchestration: 53 articles calibrated to the paper's statistics."""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.corpus.articles import ArticleBuilder, ArticleConfig
from repro.corpus.datasets import build_database
from repro.corpus.spec import TestCase, ThemeSpec
from repro.corpus.themes import THEMES
from repro.errors import CorpusError


@dataclass(frozen=True)
class CorpusConfig:
    """Corpus-level knobs (defaults match the paper's Appendix B)."""

    n_articles: int = 53
    seed: int = 2019
    article: ArticleConfig = field(default_factory=ArticleConfig)
    themes: tuple[ThemeSpec, ...] = THEMES


@dataclass
class Corpus:
    """A generated corpus with the statistics helpers the paper reports."""

    cases: list[TestCase]

    def __len__(self) -> int:
        return len(self.cases)

    @property
    def total_claims(self) -> int:
        return sum(len(case.ground_truth) for case in self.cases)

    @property
    def erroneous_claims(self) -> int:
        return sum(case.erroneous_count for case in self.cases)

    @property
    def error_rate(self) -> float:
        total = self.total_claims
        return self.erroneous_claims / total if total else 0.0

    @property
    def cases_with_errors(self) -> int:
        return sum(1 for case in self.cases if case.erroneous_count > 0)

    def claims_per_case(self) -> list[int]:
        return [len(case.ground_truth) for case in self.cases]

    def predicate_histogram(self) -> dict[int, int]:
        """Claims by number of predicates (paper Figure 9c)."""
        histogram: Counter[int] = Counter()
        for case in self.cases:
            for truth in case.ground_truth:
                histogram[len(truth.query.all_predicates)] += 1
        return dict(sorted(histogram.items()))

    def characteristic_coverage(self, top_n: int) -> dict[str, float]:
        """Average fraction of claims per document covered by the N most
        frequent instances of each query characteristic (Figure 9b)."""
        coverages: dict[str, list[float]] = {
            "function": [],
            "column": [],
            "predicates": [],
        }
        for case in self.cases:
            queries = [truth.query for truth in case.ground_truth]
            if not queries:
                continue
            coverages["function"].append(
                _top_n_share([q.aggregate.function for q in queries], top_n)
            )
            coverages["column"].append(
                _top_n_share([q.aggregate.column for q in queries], top_n)
            )
            coverages["predicates"].append(
                _top_n_share(
                    [frozenset(q.predicate_columns) for q in queries], top_n
                )
            )
        return {
            key: 100.0 * sum(values) / len(values) if values else 0.0
            for key, values in coverages.items()
        }


def generate_corpus(config: CorpusConfig | None = None) -> Corpus:
    """Generate the full corpus deterministically from the seed."""
    config = config or CorpusConfig()
    rng = random.Random(config.seed)
    cases: list[TestCase] = []
    failures = 0
    index = 0
    while len(cases) < config.n_articles:
        theme = config.themes[index % len(config.themes)]
        index += 1
        case_rng = random.Random(rng.randrange(2**62))
        try:
            database = build_database(theme, case_rng)
            builder = ArticleBuilder(theme, database, case_rng, config.article)
            case_id = f"case_{len(cases) + 1:02d}_{theme.name}"
            cases.append(builder.build(case_id))
        except CorpusError:
            failures += 1
            if failures > 4 * config.n_articles:
                raise
    return Corpus(cases)


def _top_n_share(items: list, top_n: int) -> float:
    counts = Counter(items)
    total = sum(counts.values())
    covered = sum(count for _, count in counts.most_common(top_n))
    return covered / total if total else 0.0
