"""Keyword matching: claims -> weighted keyword contexts -> relevance scores.

Implements the paper's Algorithm 1 (``KeywordMatch``) and Algorithm 2
(``ClaimKeywords``): keywords in the claim sentence are weighted by inverse
dependency-tree distance from the claimed value; keywords from the previous
sentence, the paragraph start, and enclosing headlines are added with
discounted weights; the weighted context queries the fragment index.
"""

from repro.matching.context import ContextConfig, claim_contexts, claim_keywords
from repro.matching.matcher import keyword_match, keyword_match_batch

__all__ = [
    "ContextConfig",
    "claim_contexts",
    "claim_keywords",
    "keyword_match",
    "keyword_match_batch",
]
