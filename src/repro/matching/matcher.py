"""Relevance-score computation per claim (paper Algorithm 1)."""

from __future__ import annotations

from repro.fragments.indexer import FragmentIndex, RelevanceScores
from repro.matching.context import ContextConfig, claim_keywords
from repro.text.claims import Claim


def keyword_match(
    claims: list[Claim],
    index: FragmentIndex,
    context_config: ContextConfig | None = None,
    predicate_hits: int = 20,
    column_hits: int = 10,
) -> dict[Claim, RelevanceScores]:
    """Map each claim to relevance scores over query fragments.

    This is the paper's ``KeywordMatch``: extract the claim's weighted
    keyword context (Algorithm 2), then query the fragment indexes.
    """
    scores: dict[Claim, RelevanceScores] = {}
    for claim in claims:
        keywords = claim_keywords(claim, context_config)
        scores[claim] = index.retrieve(
            keywords, predicate_hits=predicate_hits, column_hits=column_hits
        )
    return scores
