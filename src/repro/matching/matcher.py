"""Relevance-score computation per claim (paper Algorithm 1).

Two implementations of ``KeywordMatch`` coexist:

- :func:`keyword_match` — the per-claim reference oracle: one keyword
  context extraction plus one :meth:`FragmentIndex.retrieve` per claim;
- :func:`keyword_match_batch` — the batched front end: contexts for the
  whole document are extracted with a shared dependency-tree cache,
  analyzed once each, and scored against the compiled CSR category
  indexes in one vectorized pass per category
  (:meth:`CompiledFragmentIndex.retrieve_batch`). Scores are
  float-for-float identical to the oracle; when NumPy is absent the
  compiled path degrades to a pure-Python kernel over the same arrays.
"""

from __future__ import annotations

from repro.fragments.indexer import FragmentIndex, RelevanceScores
from repro.matching.context import ContextConfig, claim_contexts, claim_keywords
from repro.text.claims import Claim


def keyword_match(
    claims: list[Claim],
    index: FragmentIndex,
    context_config: ContextConfig | None = None,
    predicate_hits: int = 20,
    column_hits: int = 10,
) -> dict[Claim, RelevanceScores]:
    """Map each claim to relevance scores over query fragments.

    This is the paper's ``KeywordMatch``: extract the claim's weighted
    keyword context (Algorithm 2), then query the fragment indexes. Kept
    as the reference oracle for :func:`keyword_match_batch`.
    """
    scores: dict[Claim, RelevanceScores] = {}
    for claim in claims:
        keywords = claim_keywords(claim, context_config)
        scores[claim] = index.retrieve(
            keywords, predicate_hits=predicate_hits, column_hits=column_hits
        )
    return scores


def keyword_match_batch(
    claims: list[Claim],
    index: FragmentIndex,
    context_config: ContextConfig | None = None,
    predicate_hits: int = 20,
    column_hits: int = 10,
) -> dict[Claim, RelevanceScores]:
    """One vectorized keyword->fragment scoring pass for a whole document.

    Produces exactly what :func:`keyword_match` produces — same fragment
    sets, same dict insertion order, bit-identical scores — but pays
    context analysis once per claim (not once per category index) and
    replaces the per-term Python postings walk with array kernels over the
    compiled index, which checker pools reuse across every document of a
    database.
    """
    contexts = claim_contexts(claims, context_config)
    results = index.compiled().retrieve_batch(
        contexts, predicate_hits=predicate_hits, column_hits=column_hits
    )
    return dict(zip(claims, results))
