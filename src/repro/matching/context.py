"""Claim keyword-context extraction (paper Algorithm 2).

For a claim ``c`` in sentence ``s``:

- every word of ``s`` gets weight ``1 / TreeDistance(word, c)``;
- ``m`` is the minimum of those weights;
- words of the previous sentence and of the paragraph's first sentence get
  ``0.4 * m``;
- words of every enclosing headline get ``0.7 * m``;
- (ablation source) synonyms of claim-sentence words get a discounted
  share of the source word's weight.

Weights for repeated words combine by maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.analysis import STOPWORDS
from repro.nlp.dependency import build_dependency_tree
from repro.nlp.tokens import Token
from repro.nlp.wordnet import synonyms
from repro.text.claims import Claim

#: Discounts from the paper's Algorithm 2.
PARAGRAPH_WEIGHT = 0.4
HEADLINE_WEIGHT = 0.7
#: Weight share given to claim-side synonym expansions (not specified in
#: the paper; held fixed across all experiments).
SYNONYM_SHARE = 0.6


@dataclass(frozen=True)
class ContextConfig:
    """Keyword sources, matching the ablation ladder of Table 5 block 1."""

    use_previous_sentence: bool = True
    use_paragraph_start: bool = True
    use_synonyms: bool = True
    use_headlines: bool = True

    @classmethod
    def sentence_only(cls) -> "ContextConfig":
        return cls(False, False, False, False)


def claim_keywords(
    claim: Claim, config: ContextConfig | None = None
) -> dict[str, float]:
    """Weighted keyword context for one claim."""
    config = config or ContextConfig()
    weights: dict[str, float] = {}

    sentence = claim.sentence
    tree = build_dependency_tree(sentence.tokens)
    claim_indexes = set(claim.mention.token_indexes)
    sentence_minimum = 1.0
    for token in sentence.tokens:
        if token.index in claim_indexes or not _is_keyword(token):
            continue
        distance = max(
            min(tree.distance(token.index, index) for index in claim_indexes),
            1,
        )
        weight = 1.0 / distance
        sentence_minimum = min(sentence_minimum, weight)
        _accumulate(weights, token.lower, weight)
        if config.use_synonyms:
            for synonym in synonyms(token.lower):
                _accumulate(weights, synonym, weight * SYNONYM_SHARE)

    m = sentence_minimum

    if config.use_previous_sentence and sentence.previous is not None:
        _add_sentence_words(weights, sentence.previous.tokens, PARAGRAPH_WEIGHT * m)
    if config.use_paragraph_start:
        first = sentence.paragraph.first_sentence
        if first is not None and first is not sentence:
            _add_sentence_words(weights, first.tokens, PARAGRAPH_WEIGHT * m)
    if config.use_headlines:
        for section in sentence.paragraph.section.ancestors():
            if section.headline:
                _add_headline_words(weights, section.headline, HEADLINE_WEIGHT * m)
    return weights


def _is_keyword(token: Token) -> bool:
    return (
        token.is_word
        and token.lower not in STOPWORDS
        and not token.is_punctuation
    )


def _add_sentence_words(
    weights: dict[str, float], tokens: list[Token], weight: float
) -> None:
    for token in tokens:
        if _is_keyword(token):
            _accumulate(weights, token.lower, weight)


def _add_headline_words(
    weights: dict[str, float], headline: str, weight: float
) -> None:
    from repro.nlp.tokens import tokenize_with_punct

    _add_sentence_words(weights, tokenize_with_punct(headline), weight)


def _accumulate(weights: dict[str, float], word: str, weight: float) -> None:
    weights[word] = max(weights.get(word, 0.0), weight)
