"""Claim keyword-context extraction (paper Algorithm 2).

For a claim ``c`` in sentence ``s``:

- every word of ``s`` gets weight ``1 / TreeDistance(word, c)``;
- ``m`` is the minimum of those weights;
- words of the previous sentence and of the paragraph's first sentence get
  ``0.4 * m``;
- words of every enclosing headline get ``0.7 * m``;
- (ablation source) synonyms of claim-sentence words get a discounted
  share of the source word's weight.

Weights for repeated words combine by maximum.

Claims of one document overwhelmingly share sentences, paragraphs, and
headlines, so :func:`claim_contexts` threads an :class:`ExtractionCache`
through the per-claim calls: dependency trees, per-sentence keyword lists,
and per-headline token lists are computed once per document instead of
once per claim. The cache changes no weights — only how often the shared
work runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.analysis import STOPWORDS
from repro.nlp.dependency import build_dependency_tree
from repro.nlp.tokens import Token
from repro.nlp.wordnet import synonym_list
from repro.text.claims import Claim

#: Discounts from the paper's Algorithm 2.
PARAGRAPH_WEIGHT = 0.4
HEADLINE_WEIGHT = 0.7
#: Weight share given to claim-side synonym expansions (not specified in
#: the paper; held fixed across all experiments).
SYNONYM_SHARE = 0.6


@dataclass(frozen=True)
class ContextConfig:
    """Keyword sources, matching the ablation ladder of Table 5 block 1."""

    use_previous_sentence: bool = True
    use_paragraph_start: bool = True
    use_synonyms: bool = True
    use_headlines: bool = True

    @classmethod
    def sentence_only(cls) -> "ContextConfig":
        return cls(False, False, False, False)


@dataclass
class ExtractionCache:
    """Per-document extraction artifacts, keyed by object identity.

    Valid for as long as the caller keeps the claims (and thus their
    sentences/sections) alive — :func:`claim_contexts` scopes one cache to
    one document pass.
    """

    #: dependency tree per sentence id
    trees: dict[int, object] = field(default_factory=dict)
    #: (token index, lowercased word) keyword pairs per sentence id
    sentence_keywords: dict[int, list[tuple[int, str]]] = field(
        default_factory=dict
    )
    #: lowercased keyword words per headline string
    headline_keywords: dict[str, list[str]] = field(default_factory=dict)

    def tree_for(self, sentence) -> object:
        tree = self.trees.get(id(sentence))
        if tree is None:
            tree = build_dependency_tree(sentence.tokens)
            self.trees[id(sentence)] = tree
        return tree

    def keywords_of(self, sentence) -> list[tuple[int, str]]:
        pairs = self.sentence_keywords.get(id(sentence))
        if pairs is None:
            pairs = [
                (token.index, token.lower)
                for token in sentence.tokens
                if _is_keyword(token)
            ]
            self.sentence_keywords[id(sentence)] = pairs
        return pairs

    def headline_words(self, headline: str) -> list[str]:
        words = self.headline_keywords.get(headline)
        if words is None:
            from repro.nlp.tokens import tokenize_with_punct

            words = [
                token.lower
                for token in tokenize_with_punct(headline)
                if _is_keyword(token)
            ]
            self.headline_keywords[headline] = words
        return words


def claim_contexts(
    claims: list[Claim], config: ContextConfig | None = None
) -> list[dict[str, float]]:
    """Weighted keyword contexts for all claims of one document.

    One shared :class:`ExtractionCache` builds each sentence's dependency
    tree, keyword list, and each headline's token list once per document.
    """
    cache = ExtractionCache()
    return [claim_keywords(claim, config, _cache=cache) for claim in claims]


def claim_keywords(
    claim: Claim,
    config: ContextConfig | None = None,
    _cache: ExtractionCache | None = None,
) -> dict[str, float]:
    """Weighted keyword context for one claim."""
    config = config or ContextConfig()
    cache = _cache if _cache is not None else ExtractionCache()
    weights: dict[str, float] = {}

    sentence = claim.sentence
    tree = cache.tree_for(sentence)
    claim_indexes = set(claim.mention.token_indexes)
    sentence_minimum = 1.0
    for token_index, word in cache.keywords_of(sentence):
        if token_index in claim_indexes:
            continue
        distance = max(
            min(tree.distance(token_index, index) for index in claim_indexes),
            1,
        )
        weight = 1.0 / distance
        sentence_minimum = min(sentence_minimum, weight)
        _accumulate(weights, word, weight)
        if config.use_synonyms:
            for synonym in synonym_list(word):
                _accumulate(weights, synonym, weight * SYNONYM_SHARE)

    m = sentence_minimum

    if config.use_previous_sentence and sentence.previous is not None:
        _add_keyword_pairs(
            weights, cache.keywords_of(sentence.previous), PARAGRAPH_WEIGHT * m
        )
    if config.use_paragraph_start:
        first = sentence.paragraph.first_sentence
        if first is not None and first is not sentence:
            _add_keyword_pairs(
                weights, cache.keywords_of(first), PARAGRAPH_WEIGHT * m
            )
    if config.use_headlines:
        for section in sentence.paragraph.section.ancestors():
            if section.headline:
                for word in cache.headline_words(section.headline):
                    _accumulate(weights, word, HEADLINE_WEIGHT * m)
    return weights


def _is_keyword(token: Token) -> bool:
    return (
        token.is_word
        and token.lower not in STOPWORDS
        and not token.is_punctuation
    )


def _add_keyword_pairs(
    weights: dict[str, float], pairs: list[tuple[int, str]], weight: float
) -> None:
    for _, word in pairs:
        _accumulate(weights, word, weight)


def _accumulate(weights: dict[str, float], word: str, weight: float) -> None:
    weights[word] = max(weights.get(word, 0.0), weight)
