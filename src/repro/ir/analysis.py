"""Text analysis pipeline: tokenize, lowercase, stopword filter, stem.

This mirrors Lucene's ``EnglishAnalyzer`` closely enough for keyword
matching: claim keywords and fragment keywords must map to the same token
stream for scores to be meaningful, so both sides always go through one
shared :class:`Analyzer` instance.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.ir.stemmer import porter_stem

#: Standard English stopword list (Lucene's default set plus a few claim
#: verbs that carry no retrieval signal).
STOPWORDS = frozenset(
    """
    a an and are as at be but by for if in into is it no not of on or such
    that the their then there these they this to was will with i you your
    we our us were been being have has had do does did than so its
    """.split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")


def tokenize(text: str) -> list[str]:
    """Lowercase alphanumeric tokens; apostrophes keep contractions whole."""
    return _TOKEN_RE.findall(text.lower())


class Analyzer:
    """Configurable analysis chain shared by indexing and querying."""

    def __init__(self, stem: bool = True, keep_stopwords: bool = False) -> None:
        self.stem = stem
        self.keep_stopwords = keep_stopwords
        self._cache: dict[str, str] = {}
        self._keyword_terms: dict[str, tuple[str, ...]] = {}

    def analyze(self, text: str) -> list[str]:
        """Full pipeline over raw text."""
        return self.analyze_tokens(tokenize(text))

    def analyze_tokens(self, tokens: Iterable[str]) -> list[str]:
        """Pipeline over pre-tokenized input (already lowercase)."""
        output = []
        for token in tokens:
            if not self.keep_stopwords and token in STOPWORDS:
                continue
            output.append(self._stem(token) if self.stem else token)
        return output

    def analyze_weighted(self, weighted: dict[str, float]) -> dict[str, float]:
        """Analyze a weighted keyword context into weighted *terms*.

        Keywords with non-positive weight are dropped; weights of keywords
        mapping to the same term combine by max (repeating a keyword must
        not dilute others). Term order is first-occurrence order, which
        downstream scoring relies on for reproducible float accumulation.
        Analyzing the context once and reusing the result across all
        category indexes is what makes retrieval pay stemming once per
        claim instead of once per claim per index.
        """
        keyword_terms = self._keyword_terms
        query: dict[str, float] = {}
        for keyword, weight in weighted.items():
            if weight <= 0:
                continue
            terms = keyword_terms.get(keyword)
            if terms is None:
                # Contexts draw from a small recurring vocabulary, so the
                # keyword -> terms mapping is memoized per analyzer.
                terms = keyword_terms[keyword] = tuple(self.analyze(keyword))
            for token in terms:
                previous = query.get(token)
                if previous is None:
                    query[token] = max(0.0, weight)
                else:
                    query[token] = max(previous, weight)
        return query

    def term(self, token: str) -> str | None:
        """Analyze a single token; None if it is dropped as a stopword."""
        token = token.lower()
        if not self.keep_stopwords and token in STOPWORDS:
            return None
        return self._stem(token) if self.stem else token

    def _stem(self, token: str) -> str:
        cached = self._cache.get(token)
        if cached is None:
            cached = porter_stem(token)
            self._cache[token] = cached
        return cached
