"""Weighted-term TF-IDF retrieval (Lucene classic similarity).

The claim-keyword context produced by Algorithm 2 is a *weighted* keyword
set; scoring multiplies each term's contribution by its context weight, so
keywords near the claimed value dominate (paper Section 4.3).

score(q, d) = sum_t  w_t * sqrt(tf(t, d)) * idf(t)^2 * norm(d)
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any

from repro.ir.index import InvertedIndex


@dataclass(frozen=True)
class Hit:
    """One search result: the indexed payload and its relevance score."""

    payload: Any
    score: float


def search(
    index: InvertedIndex,
    weighted_terms: dict[str, float],
    top_k: int | None = None,
) -> list[Hit]:
    """Rank indexed documents against a weighted keyword query.

    ``weighted_terms`` maps *raw* keywords to weights; analysis (stopword
    removal, stemming) is applied here so callers never need to know the
    index's analyzer configuration. Weights of keywords mapping to the same
    term accumulate by max (repeating a keyword shouldn't dilute others).
    """
    analyzer = index.analyzer
    query: dict[str, float] = {}
    for keyword, weight in weighted_terms.items():
        if weight <= 0:
            continue
        for token in analyzer.analyze(keyword):
            query[token] = max(query.get(token, 0.0), weight)
    if not query:
        return []
    scores: dict[int, float] = {}
    for term, weight in query.items():
        idf = index.idf(term)
        for posting in index.postings(term):
            contribution = (
                weight * math.sqrt(posting.frequency) * idf * idf
            )
            scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + contribution
    hits = [
        Hit(index.payload(doc_id), score * index.norm(doc_id))
        for doc_id, score in scores.items()
    ]
    if top_k is None or top_k >= len(hits):
        return sorted(hits, key=lambda hit: -hit.score)
    return heapq.nlargest(top_k, hits, key=lambda hit: hit.score)
