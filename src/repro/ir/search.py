"""Weighted-term TF-IDF retrieval (Lucene classic similarity).

The claim-keyword context produced by Algorithm 2 is a *weighted* keyword
set; scoring multiplies each term's contribution by its context weight, so
keywords near the claimed value dominate (paper Section 4.3).

score(q, d) = sum_t  w_t * sqrt(tf(t, d)) * idf(t)^2 * norm(d)

Three entry points share the scoring math:

- :func:`search` — analyze a raw keyword context, then score one
  :class:`~repro.ir.index.InvertedIndex` (the reference oracle);
- :func:`search_terms` — same, for a context that is already analyzed
  (lets one analysis pass feed several category indexes);
- :func:`search_compiled_batch` — score *every claim of a document* against
  one :class:`~repro.ir.index.CompiledPostings` in a single vectorized
  pass (gather + bincount), falling back to a pure-Python kernel over the
  same arrays when NumPy is absent.

All paths rank by ``(-score, doc_id)``: equal scores break ties by the
stable document id (fragment ids are catalog positions), so per-claim and
batched retrieval — and reruns under different hash seeds — agree exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.ir.index import CompiledPostings, InvertedIndex, _np


@dataclass(frozen=True)
class Hit:
    """One search result: the indexed payload and its relevance score."""

    payload: Any
    score: float


def search(
    index: InvertedIndex,
    weighted_terms: dict[str, float],
    top_k: int | None = None,
) -> list[Hit]:
    """Rank indexed documents against a weighted keyword query.

    ``weighted_terms`` maps *raw* keywords to weights; analysis (stopword
    removal, stemming) is applied here so callers never need to know the
    index's analyzer configuration. Weights of keywords mapping to the same
    term accumulate by max (repeating a keyword shouldn't dilute others).
    """
    return search_terms(
        index, index.analyzer.analyze_weighted(weighted_terms), top_k
    )


def search_terms(
    index: InvertedIndex,
    query: dict[str, float],
    top_k: int | None = None,
) -> list[Hit]:
    """Rank indexed documents against an *analyzed* term->weight query.

    Callers holding a claim's analyzed context (e.g. a fragment index
    scoring the same context against three category indexes) skip the
    per-index re-analysis this way.
    """
    if not query:
        return []
    scores: dict[int, float] = {}
    for term, weight in query.items():
        idf = index.idf(term)
        for posting in index.postings(term):
            contribution = (
                weight * math.sqrt(posting.frequency) * idf * idf
            )
            scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + contribution
    ranked = sorted(
        (
            (doc_id, score * index.norm(doc_id))
            for doc_id, score in scores.items()
        ),
        key=_rank_key,
    )
    if top_k is not None:
        ranked = ranked[:top_k]
    return [Hit(index.payload(doc_id), score) for doc_id, score in ranked]


def _rank_key(entry: tuple[int, float]) -> tuple[float, int]:
    return (-entry[1], entry[0])


def search_compiled_batch(
    compiled: CompiledPostings,
    queries: list[tuple[list[int], list[float]]],
    top_k: int | None = None,
) -> list[list[tuple[int, float]]]:
    """Score many claims against one compiled index in a single pass.

    ``queries`` holds one ``(term_ids, weights)`` pair per claim (resolved
    through the shared :class:`~repro.ir.index.TermVocabulary`). Returns,
    per claim, the ``(doc_id, score)`` hits ranked by ``(-score, doc_id)``
    and truncated to ``top_k`` — float-for-float identical to running
    :func:`search_terms` per claim, because contributions accumulate per
    (claim, document) in the same (query-term, posting) order and through
    the same sequence of float64 operations.
    """
    if _np is None or not isinstance(compiled.indptr, _np.ndarray):
        return [
            _search_compiled_python(compiled, term_ids, weights, top_k)
            for term_ids, weights in queries
        ]
    return _search_compiled_numpy(compiled, queries, top_k)


def _search_compiled_python(
    compiled: CompiledPostings,
    term_ids: list[int],
    weights: list[float],
    top_k: int | None,
) -> list[tuple[int, float]]:
    """Pure-Python kernel over the CSR lists (NumPy-free fallback)."""
    indptr = compiled.indptr
    doc_ids = compiled.doc_ids
    tf_sqrt = compiled.tf_sqrt
    idf_table = compiled.idf
    scores: dict[int, float] = {}
    for term_id, weight in zip(term_ids, weights):
        idf = idf_table[term_id]
        for position in range(indptr[term_id], indptr[term_id + 1]):
            doc_id = doc_ids[position]
            contribution = weight * tf_sqrt[position] * idf * idf
            scores[doc_id] = scores.get(doc_id, 0.0) + contribution
    norms = compiled.norms
    ranked = sorted(
        ((doc_id, score * norms[doc_id]) for doc_id, score in scores.items()),
        key=_rank_key,
    )
    if top_k is not None:
        ranked = ranked[:top_k]
    return ranked


def _search_compiled_numpy(
    compiled: CompiledPostings,
    queries: list[tuple[list[int], list[float]]],
    top_k: int | None,
) -> list[list[tuple[int, float]]]:
    n_claims = len(queries)
    n_docs = compiled.n_docs
    if n_claims == 0 or n_docs == 0:
        return [[] for _ in queries]

    # One flat (claim, query-term) pair list, in claim-then-term order.
    pair_terms: list[int] = []
    pair_weights: list[float] = []
    pair_claim: list[int] = []
    for claim_index, (term_ids, weights) in enumerate(queries):
        pair_terms.extend(term_ids)
        pair_weights.extend(weights)
        pair_claim.extend([claim_index] * len(term_ids))
    if not pair_terms:
        return [[] for _ in queries]

    terms = _np.asarray(pair_terms, dtype=_np.int64)
    starts = compiled.indptr[terms]
    lengths = compiled.indptr[terms + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return [[] for _ in queries]

    # Ragged gather: postings positions of every pair, concatenated in
    # pair order (so per-(claim, doc) accumulation order matches the
    # per-claim reference loop exactly).
    ends = lengths.cumsum()
    offsets = _np.repeat(starts - (ends - lengths), lengths)
    positions = offsets + _np.arange(total, dtype=_np.int64)

    rows = _np.repeat(_np.asarray(pair_claim, dtype=_np.int64), lengths)
    expanded_weights = _np.repeat(
        _np.asarray(pair_weights, dtype=_np.float64), lengths
    )
    expanded_idf = _np.repeat(compiled.idf[terms], lengths)
    docs = compiled.doc_ids[positions]
    # Same float64 operation sequence as the scalar path:
    # ((w * sqrt_tf) * idf) * idf.
    contributions = (
        (expanded_weights * compiled.tf_sqrt[positions]) * expanded_idf
    ) * expanded_idf

    flat = rows * n_docs + docs
    length = n_claims * n_docs
    # np.bincount adds weights in input order, reproducing the reference
    # accumulation order per (claim, doc) bin. The membership mask is a
    # separate unweighted bincount rather than ``sums > 0``: the oracle
    # includes a document as soon as a posting exists, even if extreme
    # (sub-normal) weights underflow its score sum to exactly 0.0.
    sums = _np.bincount(flat, weights=contributions, minlength=length)
    touched = _np.bincount(flat, minlength=length) > 0
    scores = sums.reshape(n_claims, n_docs) * compiled.norms[_np.newaxis, :]
    touched = touched.reshape(n_claims, n_docs)

    results: list[list[tuple[int, float]]] = []
    for claim_index in range(n_claims):
        hit_docs = _np.flatnonzero(touched[claim_index])
        if not len(hit_docs):
            results.append([])
            continue
        values = scores[claim_index, hit_docs]
        # Stable argsort on -score keeps doc-ascending order within ties —
        # the same (-score, doc_id) key the per-claim path sorts by.
        order = _np.argsort(-values, kind="stable")
        if top_k is not None:
            order = order[:top_k]
        results.append(
            [
                (int(doc), float(score))
                for doc, score in zip(
                    hit_docs[order].tolist(), values[order].tolist()
                )
            ]
        )
    return results
