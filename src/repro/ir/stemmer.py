"""Porter stemming algorithm (Porter, 1980).

A faithful implementation of the original five-step algorithm, matching the
reference behaviour on the classic examples (caresses -> caress,
relational -> relat, hopeful -> hope, ...). Lucene's EnglishAnalyzer uses a
close variant; for keyword matching between claim text and database
identifiers the original algorithm is an adequate stand-in.
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word: str, i: int) -> bool:
    char = word[i]
    if char in _VOWELS:
        return False
    if char == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter measure m: number of VC sequences in the stem."""
    m = 0
    previous_vowel = False
    for i in range(len(stem)):
        consonant = _is_consonant(stem, i)
        if consonant and previous_vowel:
            m += 1
        previous_vowel = not consonant
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return stem + "ee"
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP_2 = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
]

_STEP_3 = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP_4 = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _apply_rules(word: str, rules, min_measure: int) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > min_measure - 1:
                return stem + replacement
            return word
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP_4:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if suffix == "ion" and not stem.endswith(("s", "t")):
                return word
            if _measure(stem) > 1:
                return stem
            return word
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word: str) -> str:
    if word.endswith("ll") and _measure(word) > 1:
        return word[:-1]
    return word


#: Process-wide stem memo. Claim contexts and fragment keywords draw from a
#: small shared vocabulary, so across documents (and Analyzer instances —
#: one per FragmentIndex) the same words are stemmed over and over; the
#: algorithm is pure, so results are cached unboundedly.
_MEMO: dict[str, str] = {}


def porter_stem(word: str) -> str:
    """Stem one lowercase word; words of length <= 2 are returned as-is."""
    if len(word) <= 2:
        return word
    cached = _MEMO.get(word)
    if cached is not None:
        return cached
    stem = _step_1a(word)
    stem = _step_1b(stem)
    stem = _step_1c(stem)
    stem = _apply_rules(stem, _STEP_2, 1)
    stem = _apply_rules(stem, _STEP_3, 1)
    stem = _step_4(stem)
    stem = _step_5a(stem)
    stem = _step_5b(stem)
    _MEMO[word] = stem
    return stem
