"""Information-retrieval engine (Apache Lucene substitute).

The AggChecker indexes query-fragment keyword sets and retrieves them with
weighted claim-keyword queries (paper Section 4). This subpackage provides
the same capability: an :class:`~repro.ir.analysis.Analyzer`
(tokenize / stopword / Porter stem), an
:class:`~repro.ir.index.InvertedIndex`, and Lucene-classic TF-IDF scoring
with weighted query terms (:mod:`repro.ir.search`).
"""

from repro.ir.analysis import Analyzer, tokenize
from repro.ir.index import CompiledPostings, InvertedIndex, TermVocabulary
from repro.ir.search import Hit, search, search_compiled_batch, search_terms
from repro.ir.stemmer import porter_stem

__all__ = [
    "Analyzer",
    "CompiledPostings",
    "Hit",
    "InvertedIndex",
    "TermVocabulary",
    "porter_stem",
    "search",
    "search_compiled_batch",
    "search_terms",
    "tokenize",
]
