"""Inverted index over keyword documents.

Each indexed document is a keyword set describing one query fragment
(paper Section 4.2). Documents carry an opaque payload — the fragment —
returned with search hits.

Two representations coexist:

- :class:`InvertedIndex` — the dict-of-postings reference form that
  per-claim :func:`repro.ir.search.search` walks term by term;
- :class:`CompiledPostings` — a CSR (compressed sparse row) compilation of
  one inverted index over a :class:`TermVocabulary` *shared across several
  indexes*, with term frequencies pre-square-rooted, idf pre-computed per
  term id, and length norms as one array. The batched matching front end
  scores whole documents' claim sets against these arrays in a handful of
  NumPy gather/bincount passes (:func:`repro.ir.search.search_compiled_batch`);
  without NumPy the same structure holds plain lists and a pure-Python
  kernel walks it.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

try:  # pragma: no cover - exercised via monkeypatching in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.ir.analysis import Analyzer


def numpy_available() -> bool:
    """True when the vectorized scoring kernels can run."""
    return _np is not None


@dataclass
class _Posting:
    doc_id: int
    frequency: int


class InvertedIndex:
    """Term -> postings index with document length norms."""

    def __init__(self, analyzer: Analyzer | None = None) -> None:
        self.analyzer = analyzer or Analyzer()
        self._postings: dict[str, list[_Posting]] = {}
        self._payloads: list[Any] = []
        self._norms: list[float] = []

    def __len__(self) -> int:
        return len(self._payloads)

    def add(self, payload: Any, text: str = "", tokens: Iterable[str] = ()) -> int:
        """Index one document given raw text and/or pre-split tokens."""
        terms = []
        if text:
            terms.extend(self.analyzer.analyze(text))
        token_list = list(tokens)
        if token_list:
            terms.extend(self.analyzer.analyze_tokens(token_list))
        doc_id = len(self._payloads)
        self._payloads.append(payload)
        counts = Counter(terms)
        for term, frequency in counts.items():
            self._postings.setdefault(term, []).append(_Posting(doc_id, frequency))
        # Lucene's classic length norm: 1/sqrt(#terms).
        self._norms.append(1.0 / math.sqrt(len(terms)) if terms else 0.0)
        return doc_id

    def payload(self, doc_id: int) -> Any:
        return self._payloads[doc_id]

    def norm(self, doc_id: int) -> float:
        return self._norms[doc_id]

    def postings(self, term: str) -> list[_Posting]:
        return self._postings.get(term, [])

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def idf(self, term: str) -> float:
        """Lucene-classic idf: 1 + ln(N / (df + 1))."""
        n_docs = len(self._payloads)
        if n_docs == 0:
            return 0.0
        return 1.0 + math.log(n_docs / (self.document_frequency(term) + 1.0))

    def vocabulary(self) -> set[str]:
        return set(self._postings)


class TermVocabulary:
    """Interned term-id table shared across several inverted indexes.

    Sharing one vocabulary means a claim's keyword context is analyzed and
    term-id-resolved exactly once per document, then reused verbatim by the
    functions / columns / predicates scorers.
    """

    __slots__ = ("terms", "_ids")

    def __init__(self) -> None:
        self.terms: list[str] = []
        self._ids: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.terms)

    def intern(self, term: str) -> int:
        """Id of ``term``, assigning the next id on first sight."""
        term_id = self._ids.get(term)
        if term_id is None:
            term_id = len(self.terms)
            self._ids[term] = term_id
            self.terms.append(term)
        return term_id

    def id_of(self, term: str) -> int | None:
        """Id of ``term`` or None when it appears in no compiled index."""
        return self._ids.get(term)

    def resolve_query(self, query: dict[str, float]) -> tuple[list[int], list[float]]:
        """Analyzed term->weight query as aligned (term-id, weight) lists.

        Terms outside the vocabulary have no postings in any compiled
        index, so dropping them changes no score; order of the survivors is
        preserved so float accumulation order matches the reference path.
        """
        ids = self._ids
        term_ids: list[int] = []
        weights: list[float] = []
        for term, weight in query.items():
            term_id = ids.get(term)
            if term_id is not None:
                term_ids.append(term_id)
                weights.append(weight)
        return term_ids, weights


class CompiledPostings:
    """CSR compilation of one :class:`InvertedIndex` over a shared vocabulary.

    - ``indptr[t] : indptr[t + 1]`` is the postings slice of vocabulary
      term ``t`` (empty for terms this index never saw);
    - ``doc_ids`` / ``tf_sqrt`` hold the posting document ids and
      pre-computed ``sqrt(term frequency)`` values, doc-ascending per term;
    - ``idf`` is the Lucene-classic idf of every vocabulary term *in this
      index* (``1 + ln(N / (df + 1))``, computed with ``math.log`` so the
      values are bit-identical to :meth:`InvertedIndex.idf`);
    - ``norms`` is the per-document length norm.

    Arrays are NumPy when available and plain lists otherwise; both carry
    exactly the same float values.
    """

    __slots__ = ("n_docs", "indptr", "doc_ids", "tf_sqrt", "idf", "norms")

    def __init__(self, index: InvertedIndex, vocab: TermVocabulary) -> None:
        self.n_docs = len(index)
        n_terms = len(vocab)
        by_term_id: list[list[_Posting] | None] = [None] * n_terms
        df = [0] * n_terms
        for term, postings in index._postings.items():
            term_id = vocab.id_of(term)
            if term_id is None:  # pragma: no cover - vocab always pre-interned
                continue
            by_term_id[term_id] = postings
            df[term_id] = len(postings)

        indptr = [0] * (n_terms + 1)
        doc_ids: list[int] = []
        tf_sqrt: list[float] = []
        for term_id in range(n_terms):
            postings = by_term_id[term_id]
            if postings:
                for posting in postings:
                    doc_ids.append(posting.doc_id)
                    tf_sqrt.append(math.sqrt(posting.frequency))
            indptr[term_id + 1] = len(doc_ids)

        if self.n_docs:
            idf = [
                1.0 + math.log(self.n_docs / (count + 1.0)) for count in df
            ]
        else:
            idf = [0.0] * n_terms
        norms = list(index._norms)

        if _np is not None:
            self.indptr = _np.asarray(indptr, dtype=_np.int64)
            self.doc_ids = _np.asarray(doc_ids, dtype=_np.int64)
            self.tf_sqrt = _np.asarray(tf_sqrt, dtype=_np.float64)
            self.idf = _np.asarray(idf, dtype=_np.float64)
            self.norms = _np.asarray(norms, dtype=_np.float64)
        else:
            self.indptr = indptr
            self.doc_ids = doc_ids
            self.tf_sqrt = tf_sqrt
            self.idf = idf
            self.norms = norms
