"""Inverted index over keyword documents.

Each indexed document is a keyword set describing one query fragment
(paper Section 4.2). Documents carry an opaque payload — the fragment —
returned with search hits.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.ir.analysis import Analyzer


@dataclass
class _Posting:
    doc_id: int
    frequency: int


class InvertedIndex:
    """Term -> postings index with document length norms."""

    def __init__(self, analyzer: Analyzer | None = None) -> None:
        self.analyzer = analyzer or Analyzer()
        self._postings: dict[str, list[_Posting]] = {}
        self._payloads: list[Any] = []
        self._norms: list[float] = []

    def __len__(self) -> int:
        return len(self._payloads)

    def add(self, payload: Any, text: str = "", tokens: Iterable[str] = ()) -> int:
        """Index one document given raw text and/or pre-split tokens."""
        terms = []
        if text:
            terms.extend(self.analyzer.analyze(text))
        token_list = list(tokens)
        if token_list:
            terms.extend(self.analyzer.analyze_tokens(token_list))
        doc_id = len(self._payloads)
        self._payloads.append(payload)
        counts = Counter(terms)
        for term, frequency in counts.items():
            self._postings.setdefault(term, []).append(_Posting(doc_id, frequency))
        # Lucene's classic length norm: 1/sqrt(#terms).
        self._norms.append(1.0 / math.sqrt(len(terms)) if terms else 0.0)
        return doc_id

    def payload(self, doc_id: int) -> Any:
        return self._payloads[doc_id]

    def norm(self, doc_id: int) -> float:
        return self._norms[doc_id]

    def postings(self, term: str) -> list[_Posting]:
        return self._postings.get(term, [])

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def idf(self, term: str) -> float:
        """Lucene-classic idf: 1 + ln(N / (df + 1))."""
        n_docs = len(self._payloads)
        if n_docs == 0:
            return 0.0
        return 1.0 + math.log(n_docs / (self.document_frequency(term) + 1.0))

    def vocabulary(self) -> set[str]:
        return set(self._postings)
