"""Queue-backed service under sustained open-loop load, plus a chaos soak.

Drives a live queue-backed ``AsyncVerificationServer`` on a loopback
port — the deployment shape of ``python -m repro serve`` — and writes
``BENCH_service_load.json``:

- ``load``: open-loop arrivals (documents POSTed on a fixed schedule,
  independent of completion — the arrival process never slows down to
  flatter the server) across several databases, run **twice**: once with
  the shadow auditor disabled and once with every acked group audited
  (``audit_rate=1.0``, a superset of the default 5% sampling). Reports
  sustained claims/sec and per-document stream latency p50/p99 for the
  audited pass, the baseline claims/sec, and their ratio — the audit
  overhead, asserted to stay within the 10% budget — and asserts the
  delivery contract: zero lost claims (every stream reaches its summary
  with every claim index present exactly once) and zero duplicated acks.
- ``chaos``: the same workload shape at reduced scale with
  :mod:`repro.faults` armed — workers killed mid-lease (lease-expiry
  recovery), a clean executor failure (nack -> retry), a slow pipeline
  stage, a space-budget blowup (``budget.estimate``), a cost-admission
  refusal (``admission.cost``) — plus ``audit.bitflip`` corruption in
  every state tier: a verdict payload flipped just before it is acked, a
  cube cell poisoned before its CRC, an incremental-memo payload
  poisoned after its CRC, and a byte flipped in the queue journal. The
  soak passes only if, despite the injected failures, every *admitted*
  job is acked exactly once, the shadow auditor (sampling at 100%)
  catches **exactly** the injected wrong verdict — zero *undetected*
  wrong verdicts acked — repairs it, and demotes the database's trust;
  and the offline scrub (``repro scrub``'s engine) detects every
  surviving corruption, after which the state verifies clean.

The regression gate (``benchmarks/check_regression.py``) tracks the two
``completion_ratio`` values (acked/submitted — hardware-independent and
expected to stay 1.0); throughput and latency are reported for humans
but never gated, since they track runner hardware.

Smoke knobs (CI): ``BENCH_LOAD_DBS``, ``BENCH_LOAD_DOCS``,
``BENCH_LOAD_CLAIMS``, ``BENCH_LOAD_ROWS``, ``BENCH_LOAD_RATE``,
``BENCH_LOAD_WORKERS``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import urllib.error
from pathlib import Path

from bench_service import _claims_of, _env_int, _post_check, _write_article, _write_database_csv

from repro.audit.scrub import scrub_state
from repro.db import Database, load_csv
from repro.faults import FaultSpec, active
from repro.harness.parallel import RetryPolicy
from repro.harness.reporting import format_table
from repro.ir.index import numpy_available
from repro.service import create_async_server
from repro.service.queue import JOURNAL_NAME, scan_journal

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_service_load.json"

#: Sustained-throughput floor of the fully-audited pass vs. the baseline.
AUDIT_OVERHEAD_FLOOR = 0.90


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


def _build_workload(tmp_path: Path, n_databases: int, docs_per_db: int,
                    claims_per_doc: int, rows: int) -> list[dict]:
    """One POST payload per document, round-robin over the databases."""
    jobs: list[dict] = []
    for db in range(n_databases):
        csv_path = tmp_path / f"records_{db}.csv"
        _write_database_csv(csv_path, rows, seed=300 + db)
        for doc in range(docs_per_db):
            article_path = tmp_path / f"report_{db}_{doc}.html"
            _write_article(
                article_path, db * docs_per_db + doc, claims_per_doc,
                seed=400 + db * docs_per_db + doc,
            )
            jobs.append(
                {"csv": [str(csv_path)], "article_path": str(article_path)}
            )
    return jobs


def _workload_databases(jobs: list[dict]) -> list[Database]:
    """The workload's databases, rebuilt for semantic scrub validation."""
    return [
        Database(Path(csv).stem, [load_csv(csv)])
        for csv in sorted({job["csv"][0] for job in jobs})
    ]


def _open_loop(url: str, jobs: list[dict], rate: float) -> list[dict]:
    """POST each document at its scheduled arrival time; gather results.

    Open-loop means the schedule is fixed up front (arrival k at
    ``k / rate`` seconds): a slow server accumulates queue depth instead
    of slowing the arrival process, which is what exposes admission and
    backpressure behavior.
    """
    interval = 1.0 / max(rate, 1e-6)
    outcomes: list[dict] = [{} for _ in jobs]
    epoch = time.perf_counter()

    def submit(ordinal: int, payload: dict) -> None:
        scheduled = epoch + ordinal * interval
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        started = time.perf_counter()
        try:
            events = _post_check(url, payload)
        except urllib.error.HTTPError as error:
            # A structured admission rejection (413) is an *answered*
            # request, not a lost stream: record it as such so the
            # delivery assertion can count it separately.
            body = error.read()
            error.close()
            if error.code == 413:
                try:
                    detail = json.loads(body)
                except ValueError:
                    detail = {}
                outcomes[ordinal] = {"rejected": error.code, "detail": detail}
            else:
                outcomes[ordinal] = {"error": repr(error)}
            return
        except Exception as error:  # a lost stream is a failed run
            outcomes[ordinal] = {"error": repr(error)}
            return
        outcomes[ordinal] = {
            "events": events,
            # Latency from *scheduled* arrival: queue wait included.
            "latency": time.perf_counter() - max(scheduled, epoch),
            "started": started,
        }

    threads = [
        threading.Thread(target=submit, args=(ordinal, payload))
        for ordinal, payload in enumerate(jobs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    return outcomes


def _assert_delivery(
    outcomes: list[dict], claims_per_doc: int, max_rejected: int = 0
) -> tuple[int, int]:
    """Zero lost / zero duplicated, per stream.

    Streams the admission layer rejected with a structured 413 are
    counted (up to ``max_rejected``) rather than treated as lost: a
    refusal the client can read is the governance contract working, not
    a delivery failure. Returns ``(total_claims, rejected_streams)``.
    """
    total = 0
    rejected = 0
    for ordinal, outcome in enumerate(outcomes):
        if outcome.get("rejected") == 413:
            rejected += 1
            continue
        assert "events" in outcome, (ordinal, outcome.get("error"))
        events = outcome["events"]
        summary = events[-1]
        assert summary["event"] == "summary", (ordinal, summary)
        assert summary["errors"] == 0, (ordinal, summary)
        indexes = [e["index"] for e in events if e["event"] == "claim"]
        # Every claim exactly once: nothing lost, nothing duplicated.
        assert sorted(indexes) == list(range(claims_per_doc)), (
            ordinal, indexes,
        )
        for claim in _claims_of(events):
            assert claim["status"], (ordinal, claim)
        total += len(indexes)
    assert rejected <= max_rejected, (rejected, max_rejected)
    return total, rejected


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = min(
        len(sorted_values) - 1, round(q * (len(sorted_values) - 1))
    )
    return sorted_values[position]


def _fired(state_dir: Path, spec: FaultSpec) -> int:
    """How many times ``spec`` fired, from its cross-process markers."""
    digest = hashlib.sha256(spec.encode().encode("utf-8")).hexdigest()[:16]
    return len(list(Path(state_dir).glob(f"{digest}.*")))


def _merge_output(section: str, payload: dict) -> dict:
    """Update one section of BENCH_service_load.json, keeping the other."""
    merged = {
        "benchmark": "queue-backed service: open-loop load + chaos soak",
        "numpy": numpy_available(),
        "cpu_count": os.cpu_count() or 1,
    }
    if OUTPUT.exists():
        try:
            previous = json.loads(OUTPUT.read_text())
        except (OSError, ValueError):
            previous = {}
        for key in ("load", "chaos"):
            if key in previous:
                merged[key] = previous[key]
    merged[section] = payload
    OUTPUT.write_text(json.dumps(merged, indent=2) + "\n")
    return merged


def _run_load_pass(
    jobs: list[dict], claims_per_doc: int, rate: float, workers: int,
    audit_rate: float,
) -> dict:
    """One open-loop pass on a fresh server; returns its measurements."""
    server = create_async_server(
        port=0,
        workers=workers,
        queue_capacity=max(256, len(jobs) * claims_per_doc),
        visibility_timeout=120.0,
        audit_rate=audit_rate,
    )
    server.start_in_thread()
    try:
        wall_started = time.perf_counter()
        outcomes = _open_loop(server.url, jobs, rate)
        wall = time.perf_counter() - wall_started
        audit = None
        if server.service.auditor is not None:
            assert server.service.auditor.flush(120.0)
            audit = server.service.auditor.snapshot()
        stats = server.service.stats()
    finally:
        server.shutdown_gracefully()

    total_claims, rejected = _assert_delivery(outcomes, claims_per_doc)
    assert rejected == 0, "no admission faults armed in the load leg"
    queue = stats["queue"]
    assert queue["acked"] == queue["enqueued"], queue   # zero lost
    assert queue["duplicate_acks"] == 0, queue          # zero duplicated
    assert queue["deadlettered"] == 0, queue
    assert stats["workers"]["worker_deaths"] == 0, stats["workers"]
    return {
        "outcomes": outcomes,
        "queue": queue,
        "audit": audit,
        "wall": wall,
        "claims_per_sec": total_claims / max(wall, 1e-9),
    }


def test_service_open_loop_load(capsys, tmp_path):
    n_databases = _env_int("BENCH_LOAD_DBS", 2)
    docs_per_db = _env_int("BENCH_LOAD_DOCS", 4)
    claims_per_doc = _env_int("BENCH_LOAD_CLAIMS", 6)
    rows = _env_int("BENCH_LOAD_ROWS", 600)
    rate = _env_float("BENCH_LOAD_RATE", 4.0)
    workers = _env_int("BENCH_LOAD_WORKERS", 4)

    jobs = _build_workload(
        tmp_path, n_databases, docs_per_db, claims_per_doc, rows
    )
    # Two passes on fresh servers: the audited one samples at 100% — a
    # strict superset of the default 5% rate, so its overhead bounds the
    # default's from above.
    baseline = _run_load_pass(
        jobs, claims_per_doc, rate, workers, audit_rate=0.0
    )
    audited = _run_load_pass(
        jobs, claims_per_doc, rate, workers, audit_rate=1.0
    )
    assert audited["audit"] is not None
    assert audited["audit"]["divergences"] == 0, audited["audit"]
    assert audited["audit"]["checks"] >= 1, audited["audit"]
    overhead_ratio = audited["claims_per_sec"] / max(
        baseline["claims_per_sec"], 1e-9
    )
    assert overhead_ratio >= AUDIT_OVERHEAD_FLOOR, (
        f"shadow audit cost too high: {audited['claims_per_sec']:.1f} vs "
        f"{baseline['claims_per_sec']:.1f} claims/s "
        f"(ratio {overhead_ratio:.3f} < {AUDIT_OVERHEAD_FLOOR})"
    )

    queue = audited["queue"]
    submitted = queue["enqueued"]
    latencies = sorted(o["latency"] for o in audited["outcomes"])
    total_claims = round(audited["claims_per_sec"] * audited["wall"])
    results = {
        "databases": n_databases,
        "documents": len(jobs),
        "claims_per_doc": claims_per_doc,
        "rows_per_database": rows,
        "arrival_rate_docs_per_sec": rate,
        "workers": workers,
        "submitted_jobs": submitted,
        "acked_jobs": queue["acked"],
        "duplicate_acks": queue["duplicate_acks"],
        "completion_ratio": round(queue["acked"] / max(submitted, 1), 4),
        "claims_per_sec": round(audited["claims_per_sec"], 2),
        "baseline_claims_per_sec": round(baseline["claims_per_sec"], 2),
        "audit_rate": 1.0,
        "audit_checks": audited["audit"]["checks"],
        "audit_divergences": audited["audit"]["divergences"],
        "audit_overhead_ratio": round(overhead_ratio, 4),
        "p50_seconds": round(_percentile(latencies, 0.50), 4),
        "p99_seconds": round(_percentile(latencies, 0.99), 4),
        "wall_seconds": round(audited["wall"], 4),
    }
    _merge_output("load", results)

    with capsys.disabled():
        print(
            "\n"
            + format_table(
                "Queue-backed service: open-loop load",
                ["Metric", "Value"],
                [
                    ["documents", str(len(jobs))],
                    ["claims", str(total_claims)],
                    ["claims/s (audited)", f"{results['claims_per_sec']:.1f}"],
                    ["claims/s (baseline)",
                     f"{results['baseline_claims_per_sec']:.1f}"],
                    ["audit overhead",
                     f"{results['audit_overhead_ratio']:.3f}x"],
                    ["audit checks", str(results["audit_checks"])],
                    ["p50", f"{results['p50_seconds']:.3f}s"],
                    ["p99", f"{results['p99_seconds']:.3f}s"],
                    ["completion", f"{results['completion_ratio']:.4f}"],
                ],
            )
        )
        print(f"written: {OUTPUT}")


def test_service_chaos_soak(capsys, tmp_path):
    """The same load with failures injected: nothing lost, nothing doubled,
    nothing silently wrong.

    Armed faults (see :mod:`repro.faults`): two workers die mid-lease
    (``queue.lease``/``raise`` — no ack, no nack; recovery is lease
    expiry + re-delivery by a respawned worker), one clean executor
    failure (``queue.exec``/``raise`` — nack -> jittered retry), one slow
    matching stage (``checker.stage``/``sleep``), one space-budget
    blowup (``budget.estimate``/``raise`` — one cube execution reports an
    over-budget estimate; the checker ladder must degrade that document's
    verdicts instead of crashing the worker), one admission rejection
    (``admission.cost``/``raise`` — one document refused with a
    structured 413 before it ever enqueues), and the ``audit.bitflip``
    corruptions: one verdict payload flipped just before ack (the shadow
    auditor, sampling at 100%, must catch exactly this one divergence —
    every other acked verdict audits clean), one incremental-memo
    payload poisoned *after* its CRC (the next hit must self-detect and
    recompute), and one byte flipped in the durable queue journal
    (caught by the per-record CRC scan over a pre-compaction snapshot).
    The cube tier is corrupted post-drain — one cell poisoned before its
    CRC (semantic) and one byte flipped in a stored file (structural) —
    and the offline scrub (the engine behind ``python -m repro scrub``)
    must detect both, quarantine them, and leave the state verifiably
    clean.
    """
    n_databases = _env_int("BENCH_LOAD_CHAOS_DBS", 1)
    docs_per_db = _env_int("BENCH_LOAD_CHAOS_DOCS", 3)
    claims_per_doc = _env_int("BENCH_LOAD_CHAOS_CLAIMS", 4)
    rows = _env_int("BENCH_LOAD_ROWS", 600)
    rate = _env_float("BENCH_LOAD_RATE", 4.0)

    jobs = _build_workload(
        tmp_path, n_databases, docs_per_db, claims_per_doc, rows
    )
    queue_dir = tmp_path / "queue"
    cache_dir = tmp_path / "cube-cache"
    from repro.core.config import AggCheckerConfig

    server = create_async_server(
        port=0,
        config=AggCheckerConfig(cache_dir=str(cache_dir)),
        queue_dir=queue_dir,
        queue_capacity=256,
        workers=2,
        visibility_timeout=1.0,
        retry=RetryPolicy(max_attempts=6, backoff_base=0.05, backoff_cap=0.2),
        audit_rate=1.0,
        # Keep the demoted database demoted through the resubmission pass
        # so the DISK_BYPASS rung is observably exercised (recovery
        # itself is covered by the unit/service tests).
        trust_recover_after=10_000,
    )
    server.start_in_thread()
    specs = (
        FaultSpec("queue.lease", "raise", times=2),
        FaultSpec("queue.exec", "raise", times=1),
        FaultSpec("checker.stage", "sleep", match="match",
                  seconds=0.3, times=1),
        FaultSpec("budget.estimate", "raise", times=1),
        FaultSpec("admission.cost", "raise", times=1),
        # The integrity tier: one wrong verdict and one journal flip.
        # (The memo poison is armed separately below — on the first soak
        # group it would land on the same claim as the verdict poison,
        # and the auditor's repair of that claim would overwrite the
        # corrupted entry before its CRC check ever ran. The cube-tier
        # corruptions are planted after drain: the divergence repair
        # wholesale-invalidates the demoted database's disk entries, so
        # corruption injected during the soak is destroyed — correctly,
        # but unobservably — by the trust ladder's own containment.)
        FaultSpec("audit.bitflip", "raise", match="verdict:*", times=1),
        FaultSpec("audit.bitflip", "bitflip", match="journal", times=1),
    )
    memo_spec = FaultSpec("audit.bitflip", "raise", match="memo:*", times=1)

    def resubmit_all() -> None:
        for payload in jobs:
            try:
                _post_check(server.url, payload)
            except urllib.error.HTTPError as error:
                error.close()  # the one admission-refused doc, if re-shed

    try:
        with active(*specs) as state_dir:
            wall_started = time.perf_counter()
            outcomes = _open_loop(server.url, jobs, rate)
            wall = time.perf_counter() - wall_started
            assert server.service.auditor.flush(120.0)
            fired = {
                f"{spec.point}:{spec.match}": _fired(state_dir, spec)
                for spec in specs
            }
        divergences_after_soak = server.service.auditor.stats.audit_divergences
        # First resubmission pass: repaired claims serve from the memo,
        # the soak's degraded claims recompute at full quality — and the
        # memo fault poisons one of those fresh verdicts after its CRC
        # was taken.
        with active(memo_spec) as memo_state:
            resubmit_all()
            assert server.service.auditor.flush(120.0)
            fired[f"{memo_spec.point}:{memo_spec.match}"] = _fired(
                memo_state, memo_spec
            )
        # Second resubmission pass, nothing armed: the poisoned memo
        # entry must fail its CRC on the hit, degrade to a miss, and
        # recompute. The recomputed singleton batches are themselves
        # shadow-audited — zero *new* divergences across both passes
        # proves no wrong verdict survived anywhere.
        resubmit_all()
        assert server.service.auditor.flush(120.0)
        audit = server.service.auditor.snapshot()
        stats = server.service.stats()
        # Snapshot the journal *before* drain: close() compacts (rewrites)
        # it, which would scrub away the injected flip.
        journal_snapshot = tmp_path / "journal.snapshot"
        journal_snapshot.write_bytes((queue_dir / JOURNAL_NAME).read_bytes())
    finally:
        server.shutdown_gracefully()

    total_claims, rejected = _assert_delivery(
        outcomes, claims_per_doc, max_rejected=1
    )
    queue = stats["queue"]
    submitted = queue["enqueued"]
    # The acceptance contract of the chaos soak: at-least-once execution
    # converged to exactly-once delivery despite injected worker deaths.
    assert queue["acked"] == submitted, queue          # zero lost
    assert queue["duplicate_acks"] == 0, queue         # zero duplicated
    assert queue["deadlettered"] == 0, queue
    assert stats["workers"]["worker_deaths"] >= 2, stats["workers"]
    assert queue["expired_leases"] >= 1, queue
    # Resource-governance faults: the admission fault refused exactly one
    # document with a machine-readable 413 before it enqueued, and the
    # budget fault degraded (not crashed) at least one delivered claim.
    assert rejected == 1, [o for o in outcomes if "events" not in o]
    [refusal] = [o for o in outcomes if o.get("rejected") == 413]
    assert refusal["detail"].get("reason") == "cost_exceeded", refusal
    assert stats["admission"]["rejected_cost"] == 1, stats["admission"]
    degraded_claims = sum(
        1
        for outcome in outcomes
        if "events" in outcome
        for claim in _claims_of(outcome["events"])
        if claim.get("degraded")
    )
    assert degraded_claims >= 1, "budget fault should degrade one stream"

    # --- integrity: the injected wrong verdict was the ONLY divergence,
    # it was caught, repaired, and the database's trust demoted. Nothing
    # was silently dropped from sampling, so "exactly one divergence"
    # really means zero undetected wrong verdicts were acked.
    assert fired["audit.bitflip:verdict:*"] == 1, fired
    assert audit["divergences"] == 1, audit
    assert divergences_after_soak == 1, divergences_after_soak
    assert audit["repairs"] >= 1, audit
    assert audit["dropped_tasks"] == 0, audit
    assert audit["audit_errors"] == 0, audit
    assert audit["skipped_stale"] == 0, audit
    assert audit["ladder"]["demotions"] >= 1, audit["ladder"]
    assert audit["disk_bypassed_groups"] >= 1, audit

    # --- integrity: the poisoned memo entry self-detected on its next
    # hit (CRC mismatch -> counted -> recomputed) during the resubmission
    # pass.
    assert fired["audit.bitflip:memo:*"] == 1, fired
    assert stats["incremental"]["corrupted"] >= 1, stats["incremental"]

    # --- integrity: the journal flip is caught by the per-record CRC
    # scan of the pre-compaction snapshot.
    assert fired["audit.bitflip:journal"] == 1, fired
    journal_scan = scan_journal(journal_snapshot)
    journal_detected = journal_scan["corrupt"] + int(journal_scan["truncated"])
    assert journal_detected >= 1, journal_scan

    # --- integrity: the cube tier, post-drain. The cache directory is
    # empty here — the verdict-divergence repair invalidated the demoted
    # database's disk entries and DISK_BYPASS prevented re-stores — so
    # it is repopulated offline and both corruption classes are planted:
    # one cell poisoned *before* its CRC (semantic — invisible to any
    # framing check, only the scrub's recompute can see it) and one byte
    # flipped in a stored file (structural — the per-entry CRC catches
    # it). After quarantine the state must verify clean end to end.
    from repro.db import EngineConfig, QueryEngine, parse_query

    databases = _workload_databases(jobs)
    probe_db = databases[0]
    first_row = probe_db.tables[0].rows[0]
    table = probe_db.tables[0].name
    cell_spec = FaultSpec("audit.bitflip", "raise", match="cell:*", times=1)
    with active(cell_spec):
        QueryEngine(probe_db, EngineConfig(cache_dir=cache_dir)).evaluate(
            [parse_query(
                f"SELECT Count(*) FROM {table} "
                f"WHERE category = '{first_row[2]}'",
                probe_db,
            )]
        )
    # A second entry on a different dimension (hence a different cube
    # key and file): the structurally-flipped victim below.
    QueryEngine(probe_db, EngineConfig(cache_dir=cache_dir)).evaluate(
        [parse_query(
            f"SELECT Count(*) FROM {table} "
            f"WHERE category = '{first_row[2]}' AND beta = '{first_row[1]}'",
            probe_db,
        )]
    )
    scrub_first = scrub_state(cache_dir=cache_dir, databases=databases)
    [cube_first] = [
        t for t in scrub_first["tiers"] if t["tier"] == "disk_cache"
    ]
    semantic_detected = cube_first["semantic_mismatch"]
    assert semantic_detected >= 1, cube_first

    survivor = sorted(cache_dir.glob("*.cube"))[0]
    blob = bytearray(survivor.read_bytes())
    blob[len(blob) // 2] ^= 0x40
    survivor.write_bytes(bytes(blob))
    scrub_second = scrub_state(
        cache_dir=cache_dir, queue_dir=queue_dir, databases=databases
    )
    assert scrub_second["corrupt_total"] >= 1, scrub_second
    scrub_final = scrub_state(
        cache_dir=cache_dir, queue_dir=queue_dir, databases=databases
    )
    assert scrub_final["clean"], scrub_final

    results = {
        "databases": n_databases,
        "documents": len(jobs),
        "claims_per_doc": claims_per_doc,
        "submitted_jobs": submitted,
        "acked_jobs": queue["acked"],
        "duplicate_acks": queue["duplicate_acks"],
        "completion_ratio": round(queue["acked"] / max(submitted, 1), 4),
        "worker_deaths": stats["workers"]["worker_deaths"],
        "expired_leases": queue["expired_leases"],
        "retried": queue["retried"],
        "deadlettered": queue["deadlettered"],
        "admission_rejected": rejected,
        "degraded_claims": degraded_claims,
        "audit_checks": audit["checks"],
        "audit_divergences": audit["divergences"],
        "audit_repairs": audit["repairs"],
        "audit_cell_scrubs": audit["cell_scrubs"],
        "trust_demotions": audit["ladder"]["demotions"],
        "memo_corruption_detected": stats["incremental"]["corrupted"],
        "journal_corruption_detected": journal_detected,
        "semantic_corruption_detected": semantic_detected,
        "scrub_corrupt_detected": scrub_first["corrupt_total"]
        + scrub_second["corrupt_total"],
        "scrub_final_clean": scrub_final["clean"],
        "claims_per_sec": round(total_claims / max(wall, 1e-9), 2),
        "wall_seconds": round(wall, 4),
    }
    _merge_output("chaos", results)

    with capsys.disabled():
        print(
            "\n"
            + format_table(
                "Queue-backed service: chaos soak",
                ["Metric", "Value"],
                [
                    ["documents", str(len(jobs))],
                    ["worker deaths", str(results["worker_deaths"])],
                    ["retries", str(results["retried"])],
                    ["lost", str(submitted - queue["acked"])],
                    ["duplicated", str(queue["duplicate_acks"])],
                    ["413 refusals", str(rejected)],
                    ["degraded claims", str(degraded_claims)],
                    ["audit checks", str(audit["checks"])],
                    ["divergences caught", str(audit["divergences"])],
                    ["corruption detected",
                     str(results["scrub_corrupt_detected"]
                         + journal_detected
                         + results["memo_corruption_detected"])],
                    ["final scrub clean", str(scrub_final["clean"])],
                    ["completion", f"{results['completion_ratio']:.4f}"],
                ],
            )
        )
        print(f"written: {OUTPUT}")
