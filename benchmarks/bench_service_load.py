"""Queue-backed service under sustained open-loop load, plus a chaos soak.

Drives a live queue-backed ``AsyncVerificationServer`` on a loopback
port — the deployment shape of ``python -m repro serve`` — and writes
``BENCH_service_load.json``:

- ``load``: open-loop arrivals (documents POSTed on a fixed schedule,
  independent of completion — the arrival process never slows down to
  flatter the server) across several databases. Reports sustained
  claims/sec and per-document stream latency p50/p99, and asserts the
  delivery contract: zero lost claims (every stream reaches its summary
  with every claim index present exactly once) and zero duplicated acks.
- ``chaos``: the same workload shape at reduced scale with
  :mod:`repro.faults` armed — workers killed mid-lease (lease-expiry
  recovery), a clean executor failure (nack -> retry), a slow pipeline
  stage, a corrupt-cache probe, a space-budget blowup
  (``budget.estimate``), and a cost-admission refusal
  (``admission.cost``). The soak passes only if, despite the injected
  failures, every *admitted* job is acked exactly once (zero lost, zero
  duplicated), the one refused document got a structured 413, and the
  budget blowup degraded verdicts instead of killing a worker.

The regression gate (``benchmarks/check_regression.py``) tracks the two
``completion_ratio`` values (acked/submitted — hardware-independent and
expected to stay 1.0); throughput and latency are reported for humans
but never gated, since they track runner hardware.

Smoke knobs (CI): ``BENCH_LOAD_DBS``, ``BENCH_LOAD_DOCS``,
``BENCH_LOAD_CLAIMS``, ``BENCH_LOAD_ROWS``, ``BENCH_LOAD_RATE``,
``BENCH_LOAD_WORKERS``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
from pathlib import Path

from bench_service import _claims_of, _env_int, _post_check, _write_article, _write_database_csv

from repro.faults import FaultSpec, active
from repro.harness.parallel import RetryPolicy
from repro.harness.reporting import format_table
from repro.ir.index import numpy_available
from repro.service import create_async_server

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_service_load.json"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


def _build_workload(tmp_path: Path, n_databases: int, docs_per_db: int,
                    claims_per_doc: int, rows: int) -> list[dict]:
    """One POST payload per document, round-robin over the databases."""
    jobs: list[dict] = []
    for db in range(n_databases):
        csv_path = tmp_path / f"records_{db}.csv"
        _write_database_csv(csv_path, rows, seed=300 + db)
        for doc in range(docs_per_db):
            article_path = tmp_path / f"report_{db}_{doc}.html"
            _write_article(
                article_path, db * docs_per_db + doc, claims_per_doc,
                seed=400 + db * docs_per_db + doc,
            )
            jobs.append(
                {"csv": [str(csv_path)], "article_path": str(article_path)}
            )
    return jobs


def _open_loop(url: str, jobs: list[dict], rate: float) -> list[dict]:
    """POST each document at its scheduled arrival time; gather results.

    Open-loop means the schedule is fixed up front (arrival k at
    ``k / rate`` seconds): a slow server accumulates queue depth instead
    of slowing the arrival process, which is what exposes admission and
    backpressure behavior.
    """
    interval = 1.0 / max(rate, 1e-6)
    outcomes: list[dict] = [{} for _ in jobs]
    epoch = time.perf_counter()

    def submit(ordinal: int, payload: dict) -> None:
        scheduled = epoch + ordinal * interval
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        started = time.perf_counter()
        try:
            events = _post_check(url, payload)
        except urllib.error.HTTPError as error:
            # A structured admission rejection (413) is an *answered*
            # request, not a lost stream: record it as such so the
            # delivery assertion can count it separately.
            body = error.read()
            error.close()
            if error.code == 413:
                try:
                    detail = json.loads(body)
                except ValueError:
                    detail = {}
                outcomes[ordinal] = {"rejected": error.code, "detail": detail}
            else:
                outcomes[ordinal] = {"error": repr(error)}
            return
        except Exception as error:  # a lost stream is a failed run
            outcomes[ordinal] = {"error": repr(error)}
            return
        outcomes[ordinal] = {
            "events": events,
            # Latency from *scheduled* arrival: queue wait included.
            "latency": time.perf_counter() - max(scheduled, epoch),
            "started": started,
        }

    threads = [
        threading.Thread(target=submit, args=(ordinal, payload))
        for ordinal, payload in enumerate(jobs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    return outcomes


def _assert_delivery(
    outcomes: list[dict], claims_per_doc: int, max_rejected: int = 0
) -> tuple[int, int]:
    """Zero lost / zero duplicated, per stream.

    Streams the admission layer rejected with a structured 413 are
    counted (up to ``max_rejected``) rather than treated as lost: a
    refusal the client can read is the governance contract working, not
    a delivery failure. Returns ``(total_claims, rejected_streams)``.
    """
    total = 0
    rejected = 0
    for ordinal, outcome in enumerate(outcomes):
        if outcome.get("rejected") == 413:
            rejected += 1
            continue
        assert "events" in outcome, (ordinal, outcome.get("error"))
        events = outcome["events"]
        summary = events[-1]
        assert summary["event"] == "summary", (ordinal, summary)
        assert summary["errors"] == 0, (ordinal, summary)
        indexes = [e["index"] for e in events if e["event"] == "claim"]
        # Every claim exactly once: nothing lost, nothing duplicated.
        assert sorted(indexes) == list(range(claims_per_doc)), (
            ordinal, indexes,
        )
        for claim in _claims_of(events):
            assert claim["status"], (ordinal, claim)
        total += len(indexes)
    assert rejected <= max_rejected, (rejected, max_rejected)
    return total, rejected


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = min(
        len(sorted_values) - 1, round(q * (len(sorted_values) - 1))
    )
    return sorted_values[position]


def _merge_output(section: str, payload: dict) -> dict:
    """Update one section of BENCH_service_load.json, keeping the other."""
    merged = {
        "benchmark": "queue-backed service: open-loop load + chaos soak",
        "numpy": numpy_available(),
        "cpu_count": os.cpu_count() or 1,
    }
    if OUTPUT.exists():
        try:
            previous = json.loads(OUTPUT.read_text())
        except (OSError, ValueError):
            previous = {}
        for key in ("load", "chaos"):
            if key in previous:
                merged[key] = previous[key]
    merged[section] = payload
    OUTPUT.write_text(json.dumps(merged, indent=2) + "\n")
    return merged


def test_service_open_loop_load(capsys, tmp_path):
    n_databases = _env_int("BENCH_LOAD_DBS", 2)
    docs_per_db = _env_int("BENCH_LOAD_DOCS", 4)
    claims_per_doc = _env_int("BENCH_LOAD_CLAIMS", 6)
    rows = _env_int("BENCH_LOAD_ROWS", 600)
    rate = _env_float("BENCH_LOAD_RATE", 4.0)
    workers = _env_int("BENCH_LOAD_WORKERS", 4)

    jobs = _build_workload(
        tmp_path, n_databases, docs_per_db, claims_per_doc, rows
    )
    server = create_async_server(
        port=0,
        workers=workers,
        queue_capacity=max(256, len(jobs) * claims_per_doc),
        visibility_timeout=120.0,
    )
    server.start_in_thread()
    try:
        wall_started = time.perf_counter()
        outcomes = _open_loop(server.url, jobs, rate)
        wall = time.perf_counter() - wall_started
        stats = server.service.stats()
    finally:
        server.shutdown_gracefully()

    total_claims, rejected = _assert_delivery(outcomes, claims_per_doc)
    assert rejected == 0, "no admission faults armed in the load leg"
    queue = stats["queue"]
    submitted = queue["enqueued"]
    assert queue["acked"] == submitted, queue          # zero lost
    assert queue["duplicate_acks"] == 0, queue         # zero duplicated
    assert queue["deadlettered"] == 0, queue
    assert stats["workers"]["worker_deaths"] == 0, stats["workers"]

    latencies = sorted(o["latency"] for o in outcomes)
    results = {
        "databases": n_databases,
        "documents": len(jobs),
        "claims_per_doc": claims_per_doc,
        "rows_per_database": rows,
        "arrival_rate_docs_per_sec": rate,
        "workers": workers,
        "submitted_jobs": submitted,
        "acked_jobs": queue["acked"],
        "duplicate_acks": queue["duplicate_acks"],
        "completion_ratio": round(queue["acked"] / max(submitted, 1), 4),
        "claims_per_sec": round(total_claims / max(wall, 1e-9), 2),
        "p50_seconds": round(_percentile(latencies, 0.50), 4),
        "p99_seconds": round(_percentile(latencies, 0.99), 4),
        "wall_seconds": round(wall, 4),
    }
    _merge_output("load", results)

    with capsys.disabled():
        print(
            "\n"
            + format_table(
                "Queue-backed service: open-loop load",
                ["Metric", "Value"],
                [
                    ["documents", str(len(jobs))],
                    ["claims", str(total_claims)],
                    ["claims/s", f"{results['claims_per_sec']:.1f}"],
                    ["p50", f"{results['p50_seconds']:.3f}s"],
                    ["p99", f"{results['p99_seconds']:.3f}s"],
                    ["completion", f"{results['completion_ratio']:.4f}"],
                ],
            )
        )
        print(f"written: {OUTPUT}")


def test_service_chaos_soak(capsys, tmp_path):
    """The same load with failures injected: nothing lost, nothing doubled.

    Armed faults (see :mod:`repro.faults`): two workers die mid-lease
    (``queue.lease``/``raise`` — no ack, no nack; recovery is lease
    expiry + re-delivery by a respawned worker), one clean executor
    failure (``queue.exec``/``raise`` — nack -> jittered retry), one slow
    matching stage (``checker.stage``/``sleep``), one corrupt-cache
    probe (``diskcache.read``/``corrupt`` — a no-op unless the pipeline
    reads a disk cache, armed to prove the service path tolerates it),
    one space-budget blowup (``budget.estimate``/``raise`` — one cube
    execution reports an over-budget estimate; the checker ladder must
    degrade that document's verdicts instead of crashing the worker),
    and one admission rejection (``admission.cost``/``raise`` — one
    document is refused with a structured 413 before it ever enqueues;
    the rejection is counted, the other documents still deliver).
    """
    n_databases = _env_int("BENCH_LOAD_CHAOS_DBS", 1)
    docs_per_db = _env_int("BENCH_LOAD_CHAOS_DOCS", 3)
    claims_per_doc = _env_int("BENCH_LOAD_CHAOS_CLAIMS", 4)
    rows = _env_int("BENCH_LOAD_ROWS", 600)
    rate = _env_float("BENCH_LOAD_RATE", 4.0)

    jobs = _build_workload(
        tmp_path, n_databases, docs_per_db, claims_per_doc, rows
    )
    server = create_async_server(
        port=0,
        workers=2,
        queue_capacity=256,
        visibility_timeout=1.0,
        retry=RetryPolicy(max_attempts=6, backoff_base=0.05, backoff_cap=0.2),
    )
    server.start_in_thread()
    try:
        with active(
            FaultSpec("queue.lease", "raise", times=2),
            FaultSpec("queue.exec", "raise", times=1),
            FaultSpec("checker.stage", "sleep", match="match",
                      seconds=0.3, times=1),
            FaultSpec("diskcache.read", "corrupt", times=1),
            FaultSpec("budget.estimate", "raise", times=1),
            FaultSpec("admission.cost", "raise", times=1),
        ):
            wall_started = time.perf_counter()
            outcomes = _open_loop(server.url, jobs, rate)
            wall = time.perf_counter() - wall_started
        stats = server.service.stats()
    finally:
        server.shutdown_gracefully()

    total_claims, rejected = _assert_delivery(
        outcomes, claims_per_doc, max_rejected=1
    )
    queue = stats["queue"]
    submitted = queue["enqueued"]
    # The acceptance contract of the chaos soak: at-least-once execution
    # converged to exactly-once delivery despite injected worker deaths.
    assert queue["acked"] == submitted, queue          # zero lost
    assert queue["duplicate_acks"] == 0, queue         # zero duplicated
    assert queue["deadlettered"] == 0, queue
    assert stats["workers"]["worker_deaths"] >= 2, stats["workers"]
    assert queue["expired_leases"] >= 1, queue
    # Resource-governance faults: the admission fault refused exactly one
    # document with a machine-readable 413 before it enqueued, and the
    # budget fault degraded (not crashed) at least one delivered claim.
    assert rejected == 1, [o for o in outcomes if "events" not in o]
    [refusal] = [o for o in outcomes if o.get("rejected") == 413]
    assert refusal["detail"].get("reason") == "cost_exceeded", refusal
    assert stats["admission"]["rejected_cost"] == 1, stats["admission"]
    degraded_claims = sum(
        1
        for outcome in outcomes
        if "events" in outcome
        for claim in _claims_of(outcome["events"])
        if claim.get("degraded")
    )
    assert degraded_claims >= 1, "budget fault should degrade one stream"

    results = {
        "databases": n_databases,
        "documents": len(jobs),
        "claims_per_doc": claims_per_doc,
        "submitted_jobs": submitted,
        "acked_jobs": queue["acked"],
        "duplicate_acks": queue["duplicate_acks"],
        "completion_ratio": round(queue["acked"] / max(submitted, 1), 4),
        "worker_deaths": stats["workers"]["worker_deaths"],
        "expired_leases": queue["expired_leases"],
        "retried": queue["retried"],
        "deadlettered": queue["deadlettered"],
        "admission_rejected": rejected,
        "degraded_claims": degraded_claims,
        "claims_per_sec": round(total_claims / max(wall, 1e-9), 2),
        "wall_seconds": round(wall, 4),
    }
    _merge_output("chaos", results)

    with capsys.disabled():
        print(
            "\n"
            + format_table(
                "Queue-backed service: chaos soak",
                ["Metric", "Value"],
                [
                    ["documents", str(len(jobs))],
                    ["worker deaths", str(results["worker_deaths"])],
                    ["retries", str(results["retried"])],
                    ["lost", str(submitted - queue["acked"])],
                    ["duplicated", str(queue["duplicate_acks"])],
                    ["413 refusals", str(rejected)],
                    ["degraded claims", str(degraded_claims)],
                    ["completion", f"{results['completion_ratio']:.4f}"],
                ],
            )
        )
        print(f"written: {OUTPUT}")
