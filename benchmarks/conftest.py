"""Shared fixtures for the benchmark suite.

Expensive artifacts (the corpus, the default full-corpus run, ablation
sweeps) are session-scoped and shared across every table/figure module.
Sweeps run on a fixed 20-case subset to keep the suite's wall-clock
reasonable; headline numbers use all 53 cases. Every module prints the
paper-style rows via ``capsys.disabled()`` so they land in the tee'd
bench output.
"""

from __future__ import annotations

import pytest

from repro.core.config import AggCheckerConfig
from repro.corpus import generate_corpus
from repro.harness import run_corpus, run_user_study

#: Cases used by parameter sweeps (full corpus for headline numbers).
SWEEP_CASES = 20


@pytest.fixture(scope="session")
def corpus():
    return generate_corpus()


@pytest.fixture(scope="session")
def run_full(corpus):
    """Default configuration over all 53 cases."""
    return run_corpus(corpus)


@pytest.fixture(scope="session")
def run_sweep(corpus):
    """Default configuration over the sweep subset."""
    return run_corpus(corpus, limit=SWEEP_CASES)


@pytest.fixture(scope="session")
def sweep_cache(corpus, run_sweep):
    """Memoized ablation runs keyed by config label."""
    cache: dict[str, object] = {
        "__default__": run_sweep,
    }

    def run_config(label: str, config: AggCheckerConfig):
        if label not in cache:
            cache[label] = run_corpus(corpus, config, limit=SWEEP_CASES)
        return cache[label]

    return run_config


@pytest.fixture(scope="session")
def study(run_full):
    """The simulated on-site user study over the six largest articles."""
    return run_user_study(run_full.results)
