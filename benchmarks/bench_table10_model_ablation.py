"""Table 10: top-k coverage versus probabilistic-model variant.

Paper: Sc only 10.7 / 31.6 / 41.1; + Ec 53.1 / 64.8 / 65.8;
+ Θ 58.4 / 68.4 / 68.9 (top-1 / top-5 / top-10).
"""

from __future__ import annotations

from repro.harness.ablations import model_ladder
from repro.harness.reporting import format_table


def test_table10_model_ablation(benchmark, sweep_cache, capsys):
    rows = []
    coverages = {}
    for label, config in model_ladder():
        run = sweep_cache(f"model:{label}", config)
        metrics = run.metrics
        coverages[label] = metrics.top_k_coverage(1)
        rows.append(
            [
                label,
                f"{metrics.top_k_coverage(1):.1f}%",
                f"{metrics.top_k_coverage(5):.1f}%",
                f"{metrics.top_k_coverage(10):.1f}%",
            ]
        )
    rows.append(["paper: Relevance scores Sc", "10.7%", "31.6%", "41.1%"])
    rows.append(["paper: + Evaluation results Ec", "53.1%", "64.8%", "65.8%"])
    rows.append(["paper: + Learning priors Θ", "58.4%", "68.4%", "68.9%"])

    # Timed unit: the pure-model distribution computation.
    from repro.model import Priors, compute_distribution
    from repro.fragments import extract_fragments

    run = sweep_cache("model:+ Learning priors Θ (current version)", None)
    distribution = run.results[0].evaluations[0].verdict.distribution
    catalog = extract_fragments(run.results[0].case.database)
    priors = Priors.uniform(catalog)
    benchmark(
        lambda: compute_distribution(
            distribution.space, priors, distribution.outcome
        )
    )

    table = format_table(
        "Table 10: top-k coverage vs probabilistic model (sweep subset)",
        ["Version", "Top-1", "Top-5", "Top-10"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    # Shape: evaluation results lift top-1 coverage dramatically; priors
    # keep it at that level or better (small subset jitter tolerated).
    ladder = list(coverages.values())
    assert ladder[0] < ladder[1]
    assert ladder[2] >= ladder[1] - 3.0
