"""Figure 7: claims verified per minute, by user and by article.

The paper reports users being about six times faster with the AggChecker.
"""

from __future__ import annotations

from repro.harness.reporting import format_series


def test_fig7_throughput(benchmark, study, capsys):
    by_user = study.throughput_by_user()
    by_article = study.throughput_by_article()
    speedup = benchmark(study.average_speedup)

    series = {
        "by user / aggchecker": [
            (user, round(tools.get("aggchecker", 0.0), 2))
            for user, tools in sorted(by_user.items())
        ],
        "by user / sql": [
            (user, round(tools.get("sql", 0.0), 2))
            for user, tools in sorted(by_user.items())
        ],
        "by article / aggchecker": [
            (case, round(tools.get("aggchecker", 0.0), 2))
            for case, tools in sorted(by_article.items())
        ],
        "by article / sql": [
            (case, round(tools.get("sql", 0.0), 2))
            for case, tools in sorted(by_article.items())
        ],
    }
    with capsys.disabled():
        print(
            "\n"
            + format_series(
                "Figure 7: claims verified per minute", series
            )
        )
        print(f"  average speedup: x{speedup:.1f} (paper: ~x6)")

    assert speedup > 3  # the paper's headline: users are much faster
