"""Corpus pipeline throughput: sequential vs sharded workers vs warm cache.

Runs the builtin evaluation corpus through three pipeline shapes and
writes ``BENCH_pipeline.json``:

- ``sequential``: the in-process runner (one ``CheckerPool``, no disk
  cache) — the baseline a single analyst pays today;
- ``parallel``: the same cases sharded over worker processes, all sharing
  one *cold* disk cube-cache directory;
- ``warm_cache``: the parallel run repeated against the now-warm cache,
  the shape of ablation sweeps and EM re-runs.

Every run must produce identical verdicts — the benchmark asserts that
before it reports a single number. Environment knobs for CI smoke runs:
``BENCH_PIPELINE_CASES`` (default 12) and ``BENCH_PIPELINE_WORKERS``
(default 4). The parallel-speedup assertion only applies on machines with
at least as many CPUs as workers; the warm-cache hit-rate assertion is
hardware-independent.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.core.config import AggCheckerConfig
from repro.corpus.generator import generate_corpus
from repro.harness import run_corpus
from repro.harness.reporting import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_pipeline.json"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _verdict_signature(run) -> list[list[str]]:
    return [
        [verdict.status.value for verdict in result.report.verdicts]
        for result in run.results
    ]


def _timed(corpus, config, limit, workers):
    started = time.perf_counter()
    run = run_corpus(corpus, config, limit=limit, workers=workers)
    return run, time.perf_counter() - started


def test_pipeline_throughput(capsys):
    cases = _env_int("BENCH_PIPELINE_CASES", 12)
    workers = _env_int("BENCH_PIPELINE_WORKERS", 4)
    cpu_count = os.cpu_count() or 1

    corpus = generate_corpus()
    cases = min(cases, len(corpus.cases))

    rows = []
    results = {}
    with tempfile.TemporaryDirectory(prefix="bench_pipeline_") as cache_dir:
        plans = [
            ("sequential", AggCheckerConfig(), 1),
            ("parallel", AggCheckerConfig(cache_dir=cache_dir), workers),
            ("warm_cache", AggCheckerConfig(cache_dir=cache_dir), workers),
        ]
        for name, config, n_workers in plans:
            run, seconds = _timed(corpus, config, cases, n_workers)
            results[name] = {
                "run": run,
                "seconds": seconds,
                "workers": n_workers,
            }

    baseline = results["sequential"]
    signature = _verdict_signature(baseline["run"])
    n_claims = baseline["run"].metrics.n_claims
    payload_results = {}
    for name, entry in results.items():
        run, seconds = entry["run"], entry["seconds"]
        assert _verdict_signature(run) == signature, (
            f"{name} changed verdicts vs sequential"
        )
        stats = run.engine_stats
        claims_per_sec = n_claims / max(seconds, 1e-9)
        speedup = baseline["seconds"] / max(seconds, 1e-9)
        payload_results[name] = {
            "workers": entry["workers"],
            "seconds": round(seconds, 3),
            "claims_per_sec": round(claims_per_sec, 2),
            "speedup_vs_sequential": round(speedup, 2),
            "cube_queries": stats.cube_queries,
            "memory_cache_hit_rate": round(stats.cache_hit_rate(), 4),
            "disk_cache_hit_rate": round(stats.disk_hit_rate(), 4),
        }
        rows.append(
            [
                name,
                entry["workers"],
                f"{seconds:.2f}s",
                f"{claims_per_sec:.1f}",
                f"x{speedup:.2f}",
                f"{stats.disk_hit_rate():.0%}",
            ]
        )

    payload = {
        "benchmark": "corpus pipeline: sequential vs parallel vs warm cache",
        "cases": cases,
        "claims": n_claims,
        "cpu_count": cpu_count,
        "verdicts_identical": True,
        "results": payload_results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    table = format_table(
        "Corpus pipeline throughput",
        ["Pipeline", "Workers", "Wall", "Claims/s", "Speedup", "Disk hits"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)
        print(f"written: {OUTPUT} (cpu_count={cpu_count})")

    # Warm cache must serve (nearly) every cube from disk, regardless of
    # hardware; tiny smoke runs with trivially few cubes are exempt.
    warm = payload_results["warm_cache"]
    cold = payload_results["parallel"]
    if cold["cube_queries"] >= 10:
        assert warm["disk_cache_hit_rate"] >= 0.9, warm
    # The parallel-speedup target needs real cores to mean anything.
    if cpu_count >= workers and workers >= 4 and cases >= 12:
        assert cold["speedup_vs_sequential"] >= 2.0, payload_results
