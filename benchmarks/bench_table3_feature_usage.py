"""Table 3: verification by used AggChecker feature.

Paper row: Top-1 44.5% (1 click) | Top-5 38.1% (2 clicks) |
Top-10 4.6% (3 clicks) | Custom 12.8%.
"""

from __future__ import annotations

from repro.core.interactive import ResolutionFeature
from repro.harness.reporting import format_table
from repro.harness.users import UserSimulator, default_users


def test_table3_feature_usage(benchmark, study, run_full, capsys):
    usage = study.feature_usage()

    # Timed unit: simulating one complete AggChecker session.
    simulator = UserSimulator(seed=5)
    user = default_users(1)[0]
    benchmark(
        lambda: simulator.aggchecker_session(run_full.results[0], user, 1200.0)
    )

    rows = [
        [
            f"{usage[ResolutionFeature.TOP_1]:.1f}%",
            f"{usage[ResolutionFeature.TOP_5]:.1f}%",
            f"{usage[ResolutionFeature.TOP_10]:.1f}%",
            f"{usage[ResolutionFeature.CUSTOM]:.1f}%",
        ],
        ["44.5%", "38.1%", "4.6%", "12.8%"],
    ]
    table = format_table(
        "Table 3: verification by used AggChecker features (measured / paper)",
        ["Top-1 (1 click)", "Top-5 (2 clicks)", "Top-10 (3 clicks)", "Custom"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    # The paper's qualitative finding: most claims resolve via top-5.
    assert usage[ResolutionFeature.TOP_1] + usage[ResolutionFeature.TOP_5] > 60
