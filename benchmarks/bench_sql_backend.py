"""SQL pushdown vs in-memory execution across storage adapters.

Sweeps the same synthetic claim-query workload over the ``row``,
``columnar``, and ``sqlite`` adapters and writes ``BENCH_sql.json``:

- per-size engine timings (one merged-cube evaluate() per fresh engine),
  with the sqlite leg running **out-of-core** against a SQLite file;
- the tentpole acceptance proof: at the largest size the file-backed
  sqlite engine verifies the whole batch under a materialization budget
  orders of magnitude below the table, with
  ``EngineStats.rows_materialized == 0``;
- cross-adapter value identity at every size (same values, same types),
  and full-corpus verdict identity sqlite-vs-columnar when NumPy (and
  hence the model layer) is available.

Row counts come from ``BENCH_SQL_SIZES`` (comma separated; default
``10000,100000,1000000``) so CI can smoke-run a small sweep.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
import tempfile
import time

import pytest
from pathlib import Path

from repro.budget import ResourceBudget
from repro.db import (
    Column,
    ColumnType,
    Database,
    EngineConfig,
    ExecutionMode,
    QueryEngine,
    Table,
    parse_query,
)
from repro.db.adapters import load_sqlite_database
from repro.db.columnar import numpy_available
from repro.harness.reporting import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_sql.json"

TEAMS = [f"team{i:02d}" for i in range(24)]
STATUSES = ["active", "suspended", "retired", "injured"]

QUERY_SQLS = (
    "SELECT Count(*) FROM events WHERE team = 'team03'",
    "SELECT Count(*) FROM events WHERE team = 'team03' AND status = 'active'",
    "SELECT Sum(score) FROM events WHERE status = 'suspended'",
    "SELECT Avg(score) FROM events WHERE team = 'team11'",
    "SELECT Min(score) FROM events WHERE status = 'retired'",
    "SELECT Max(score) FROM events WHERE team = 'team17'",
    "SELECT CountDistinct(team) FROM events",
    "SELECT Percentage(*) FROM events WHERE status = 'active'",
)

#: The out-of-core budget: three orders of magnitude under the default
#: largest sweep size.
MAX_ROWS_BUDGET = 1_000


def _sizes() -> list[int]:
    raw = os.environ.get("BENCH_SQL_SIZES", "10000,100000,1000000")
    return [int(part) for part in raw.split(",") if part.strip()]


def synthetic_rows(n_rows: int, seed: int = 7) -> list[tuple]:
    """NULLs and messy numeric strings mixed in, as in BENCH_engine."""
    rng = random.Random(seed)
    rows = []
    for _ in range(n_rows):
        team = rng.choice(TEAMS) if rng.random() > 0.05 else None
        status = rng.choice(STATUSES)
        roll = rng.random()
        if roll < 0.05:
            score = None
        elif roll < 0.08:
            score = "n/a"
        elif roll < 0.12:
            score = f"{rng.randint(1, 9)},{rng.randint(100, 999)}"
        else:
            score = rng.randint(0, 10_000)
        rows.append((team, status, score))
    return rows


COLUMNS = [
    Column("team"),
    Column("status"),
    Column("score", ColumnType.NUMERIC),
]


def write_sqlite_file(rows: list[tuple], path: str) -> str:
    connection = sqlite3.connect(path)
    try:
        connection.execute("CREATE TABLE events (team, status, score)")
        connection.executemany("INSERT INTO events VALUES (?, ?, ?)", rows)
        connection.commit()
    finally:
        connection.close()
    return path


def time_evaluate(database: Database, backend: str, repeats: int):
    """Best-of-N evaluate() on a fresh engine (no cross-run cache)."""
    best, values = float("inf"), None
    for _ in range(repeats):
        engine = QueryEngine(
            database, EngineConfig(mode=ExecutionMode.MERGED, backend=backend)
        )
        queries = [parse_query(sql, database) for sql in QUERY_SQLS]
        started = time.perf_counter()
        results = engine.evaluate(queries)
        best = min(best, time.perf_counter() - started)
        values = [results[query] for query in queries]
        engine.close()
    return best, values


def assert_identical(reference, actual, context: str) -> None:
    """Same values AND same Python types (the bit-identity contract)."""
    assert len(reference) == len(actual)
    for sql, expected, got in zip(QUERY_SQLS, reference, actual):
        assert type(expected) is type(got), f"{context} {sql}: {expected!r} vs {got!r}"
        if isinstance(expected, float):
            assert repr(expected) == repr(got), f"{context} {sql}"
        else:
            assert expected == got, f"{context} {sql}: {expected!r} != {got!r}"


def out_of_core_proof(path: str, n_rows: int, reference) -> dict:
    """Verify the whole batch over the file under a tiny budget."""
    database = load_sqlite_database(path)
    engine = QueryEngine(database, EngineConfig(backend="sqlite"))
    engine.budget = ResourceBudget(max_rows=MAX_ROWS_BUDGET)
    queries = [parse_query(sql, database) for sql in QUERY_SQLS]
    results = engine.evaluate(queries)
    assert_identical(
        reference, [results[query] for query in queries], "out-of-core"
    )
    stats = engine.stats
    assert stats.rows_materialized == 0, stats
    assert stats.pushdown_queries >= 1, stats
    assert stats.budget_rejections == 0, stats
    engine.close()
    return {
        "table_rows": n_rows,
        "max_rows_budget": MAX_ROWS_BUDGET,
        "rows_materialized": stats.rows_materialized,
        "pushdown_queries": stats.pushdown_queries,
        "pushdown_ok": 1.0 if stats.rows_materialized == 0 else 0.0,
    }


def verdict_identity() -> dict | None:
    """Full-corpus verdicts sqlite-vs-columnar (needs the model layer)."""
    if not numpy_available():
        return None
    from repro.core.config import AggCheckerConfig
    from repro.corpus import generate_corpus
    from repro.harness import run_corpus

    corpus = generate_corpus()
    reference = run_corpus(
        corpus, AggCheckerConfig(engine=EngineConfig(backend="columnar"))
    )
    pushdown = run_corpus(
        corpus, AggCheckerConfig(engine=EngineConfig(backend="sqlite"))
    )
    verdicts = 0
    for expected, actual in zip(reference.results, pushdown.results):
        left = [
            (v.claim.mention.text, v.status, v.hover_text)
            for v in expected.report.verdicts
        ]
        right = [
            (v.claim.mention.text, v.status, v.hover_text)
            for v in actual.report.verdicts
        ]
        assert left == right, expected.case.name
        verdicts += len(left)
    return {
        "cases": len(reference.results),
        "verdicts": verdicts,
        "identical": 1.0,
    }


def test_sql_backend_scaling(capsys):
    sizes = _sizes()
    results = []
    rows_out = []
    proof = None
    with tempfile.TemporaryDirectory(prefix="bench-sql-") as tmp:
        for n_rows in sizes:
            rows = synthetic_rows(n_rows)
            database = Database(
                "synthetic", [Table("events", COLUMNS, rows)]
            )
            path = write_sqlite_file(rows, os.path.join(tmp, f"{n_rows}.sqlite"))
            file_db = load_sqlite_database(path)
            repeats = 3 if n_rows <= 100_000 else 2
            row_seconds, row_values = time_evaluate(database, "row", repeats)
            col_seconds, col_values = time_evaluate(
                database, "columnar", repeats
            )
            sql_seconds, sql_values = time_evaluate(file_db, "sqlite", repeats)
            assert_identical(row_values, sql_values, f"sqlite@{n_rows}")
            # The columnar kernels promote through float64, so the
            # contract there is value equality, not type identity.
            for sql, expected, got in zip(QUERY_SQLS, row_values, col_values):
                assert got == pytest.approx(expected), f"columnar@{n_rows} {sql}"
            speedup = row_seconds / max(sql_seconds, 1e-9)
            results.append(
                {
                    "rows": n_rows,
                    "row_seconds": round(row_seconds, 6),
                    "columnar_seconds": round(col_seconds, 6),
                    "sqlite_seconds": round(sql_seconds, 6),
                    "sqlite_rows_per_sec": round(
                        n_rows / max(sql_seconds, 1e-9)
                    ),
                    "sqlite_speedup_vs_row": round(speedup, 2),
                }
            )
            rows_out.append(
                [
                    f"{n_rows:,}",
                    f"{row_seconds * 1e3:.1f}ms",
                    f"{col_seconds * 1e3:.1f}ms",
                    f"{sql_seconds * 1e3:.1f}ms",
                    f"x{speedup:.1f}",
                ]
            )
        # Acceptance proof at the largest size: out-of-core verification
        # under a budget far below the table, zero Python materialization.
        proof = out_of_core_proof(path, sizes[-1], row_values)
    identity = verdict_identity()
    payload = {
        "benchmark": "storage adapters: pushdown vs in-memory execution",
        "numpy": numpy_available(),
        "queries": list(QUERY_SQLS),
        "results": results,
        "out_of_core": proof,
        "verdict_identity": identity,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    table = format_table(
        "SQL backend scaling (row vs columnar vs sqlite pushdown)",
        ["Rows", "Row-wise", "Columnar", "SQLite", "SQLite vs row"],
        rows_out,
    )
    with capsys.disabled():
        print("\n" + table)
        if identity is not None:
            print(
                f"verdict identity: {identity['verdicts']} verdicts across "
                f"{identity['cases']} cases, all equal"
            )
        print(
            f"out-of-core: {proof['table_rows']:,} rows verified under "
            f"max_rows={proof['max_rows_budget']:,}, "
            f"rows_materialized={proof['rows_materialized']}"
        )
        print(f"written: {OUTPUT}")
