"""Table 8: user survey — preferences between SQL and the AggChecker.

Paper counts (8 users): Overall 0/0/0/3/5, Learning 0/0/0/2/6,
Correct Claims 0/0/0/1/7, Incorrect Claims 0/0/1/3/4 over the scale
SQL++ / SQL+ / SQL~AC / AC+ / AC++.
"""

from __future__ import annotations

from repro.harness.reporting import format_table

_BUCKETS = ("SQL++", "SQL+", "SQL~AC", "AC+", "AC++")
_PAPER = {
    "Overall": (0, 0, 0, 3, 5),
    "Learning": (0, 0, 0, 2, 6),
    "Correct Claims": (0, 0, 0, 1, 7),
    "Incorrect Claims": (0, 0, 1, 3, 4),
}


def test_table8_survey(benchmark, study, capsys):
    survey = benchmark(study.survey)

    rows = []
    for category, counts in survey.items():
        rows.append([category] + [counts[bucket] for bucket in _BUCKETS])
        rows.append(
            [f"paper: {category}"] + list(_PAPER.get(category, ("?",) * 5))
        )
    table = format_table(
        "Table 8: results of user survey (measured / paper)",
        ["Criterion", *_BUCKETS],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    # Shape: preferences concentrate on the AggChecker side.
    for counts in survey.values():
        ac_side = counts["AC+"] + counts["AC++"]
        sql_side = counts["SQL+"] + counts["SQL++"]
        assert ac_side > sql_side
