"""Table 5: automated checking — ablations and baselines.

Blocks: keyword-context ladder, probabilistic-model ladder, "# Hits"
time/quality ladder, then ClaimBuster-FM (Max/MV), ClaimBuster-KB+NaLIR,
and the full AggChecker. Paper's current version: R 70.8 / P 36.2 /
F1 47.9; baselines far behind (FM-Max 34.1/12.3/18.1, KB+NaLIR
2.4/10.0/3.9).
"""

from __future__ import annotations

from repro.baselines import (
    ClaimBusterFM,
    ClaimBusterKB,
    FmMode,
    build_fact_repository,
)
from repro.harness.ablations import (
    hits_ladder,
    keyword_context_ladder,
    model_ladder,
)
from repro.harness.reporting import format_table


def _metric_row(label, metrics, seconds=None):
    time_cell = f"{seconds:.0f}s" if seconds is not None else "-"
    return [
        label,
        f"{metrics.recall:.1%}",
        f"{metrics.precision:.1%}",
        f"{metrics.f1:.1%}",
        time_cell,
    ]


def _baseline_metrics(corpus, results, flagger_factory):
    tp = flagged = erroneous = 0
    for result in results:
        flagger = flagger_factory(result)
        for claim, truth in zip(result.case.claims, result.case.ground_truth):
            flag = flagger.flags(claim)
            flagged += flag
            tp += flag and not truth.is_correct
            erroneous += not truth.is_correct
    recall = tp / erroneous if erroneous else 0.0
    precision = tp / flagged if flagged else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return recall, precision, f1


def test_table5_baselines(benchmark, corpus, run_sweep, sweep_cache, capsys):
    rows = []

    rows.append(["-- Keyword Context --", "", "", "", ""])
    for label, config in keyword_context_ladder():
        run = sweep_cache(f"ctx:{label}", config)
        rows.append(_metric_row(label, run.metrics, run.total_seconds))

    rows.append(["-- Probabilistic Model --", "", "", "", ""])
    for label, config in model_ladder():
        run = sweep_cache(f"model:{label}", config)
        rows.append(_metric_row(label, run.metrics, run.total_seconds))

    rows.append(["-- Time Budget by Hits --", "", "", "", ""])
    for label, config in hits_ladder():
        run = sweep_cache(f"hits:{label}", config)
        rows.append(_metric_row(label, run.metrics, run.total_seconds))

    rows.append(["-- Baselines --", "", "", "", ""])
    for mode, label in ((FmMode.MAX, "ClaimBuster-FM (Max)"), (FmMode.MV, "ClaimBuster-FM (MV)")):
        recall, precision, f1 = _baseline_metrics(
            corpus,
            run_sweep.results,
            lambda result, mode=mode: ClaimBusterFM(
                build_fact_repository(
                    corpus, exclude_case_id=result.case.case_id
                ),
                mode,
            ),
        )
        rows.append([label, f"{recall:.1%}", f"{precision:.1%}", f"{f1:.1%}", "-"])
    recall, precision, f1 = _baseline_metrics(
        corpus,
        run_sweep.results,
        lambda result: ClaimBusterKB(result.case.database),
    )
    rows.append(
        ["ClaimBuster-KB + NaLIR", f"{recall:.1%}", f"{precision:.1%}", f"{f1:.1%}", "-"]
    )
    rows.append(
        _metric_row(
            "AggChecker Automatic", run_sweep.metrics, run_sweep.total_seconds
        )
    )
    rows.append(["paper: AggChecker Automatic", "70.8%", "36.2%", "47.9%", "128s"])
    rows.append(["paper: ClaimBuster-FM (Max)", "34.1%", "12.3%", "18.1%", "142s"])
    rows.append(["paper: ClaimBuster-KB + NaLIR", "2.4%", "10.0%", "3.9%", "18733s"])

    # Timed unit: one ClaimBuster-FM claim check.
    repository = build_fact_repository(corpus)
    fm = ClaimBusterFM(repository)
    claim = run_sweep.results[0].case.claims[0]
    benchmark(lambda: fm.flags(claim))

    table = format_table(
        "Table 5: AggChecker vs baselines (sweep subset)",
        ["Tool", "Recall", "Precision", "F1", "Time"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    # Shape assertions: the full system beats every baseline on F1.
    agg_f1 = run_sweep.metrics.f1
    assert agg_f1 > f1  # vs KB+NaLIR
