"""Figure 10: top-k coverage, overall and split by claim correctness.

Paper: top-1 58.4%, top-5 68.4%; coverage for correct claims is far above
coverage for incorrect claims (matching results give strong evidence).
"""

from __future__ import annotations

from repro.harness.reporting import format_series


def test_fig10_topk_coverage(benchmark, run_full, capsys):
    metrics = run_full.metrics
    ks = (1, 2, 3, 5, 10, 20)
    series = {
        "total": [(k, round(metrics.top_k_coverage(k), 1)) for k in ks],
        "correct claims": [
            (k, round(metrics.top_k_coverage_correct(k), 1)) for k in ks
        ],
        "incorrect claims": [
            (k, round(metrics.top_k_coverage_incorrect(k), 1)) for k in ks
        ],
        "paper total": [(1, 58.4), (5, 68.4), (10, 68.9), (20, 71.0)],
    }

    benchmark(lambda: metrics.top_k_coverage(5))

    with capsys.disabled():
        print(
            "\n"
            + format_series(
                "Figure 10: top-k coverage (53 cases)", series
            )
        )

    # Shape: monotone in k; correct claims covered far better than
    # incorrect ones; top-1 in the paper's neighbourhood.
    assert metrics.top_k_coverage(1) <= metrics.top_k_coverage(5)
    assert (
        metrics.top_k_coverage_correct(5)
        > metrics.top_k_coverage_incorrect(5) + 20
    )
    assert 45 <= metrics.top_k_coverage(1) <= 75
