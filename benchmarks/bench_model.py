"""Model-layer throughput: factorized cell-gather vs per-query evaluation.

Two measurements, written to ``BENCH_model.json``:

- ``candidate_scoring``: steady-state candidates-scored/sec on one
  document's claim spaces (the EM-iteration shape) — the per-query path
  (``QueryEngine.evaluate`` over materialized queries +
  ``EvaluationOutcome.from_results``) vs the factorized path
  (``QueryEngine.evaluate_space`` + ``EvaluationOutcome.from_value_ids``);
- ``end_to_end``: corpus claims/sec through the full pipeline
  (``run_corpus``), per path, cold and warm disk cube-cache.

Verdict equality between the two paths is asserted unconditionally; the
>= 3x warm-cache speedup gate applies when NumPy is available and the run
is large enough to be meaningful (``BENCH_MODEL_CASES`` >= 12, the
default). ``BENCH_MODEL_CASES`` trims the corpus for smoke runs.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.core.config import AggCheckerConfig
from repro.corpus.generator import generate_corpus
from repro.db.gather import numpy_available
from repro.harness import run_corpus
from repro.harness.reporting import format_table
from repro.nlp import numbers as nlp_numbers

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_model.json"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _verdict_signature(run) -> list[list[tuple]]:
    return [
        [
            (v.status.value, str(v.top_query), v.top_result)
            for v in result.report.verdicts
        ]
        for result in run.results
    ]


def _fresh_rounding_memo() -> None:
    """Clear the rounds_to memo so neither path inherits the other's warmth."""
    nlp_numbers._ROUNDS_MEMO.clear()


def _bench_candidate_scoring(corpus, repeats: int = 3) -> dict:
    """Steady-state scoring throughput on one document's spaces."""
    from repro.core.checker import AggChecker
    from repro.matching.matcher import keyword_match
    from repro.model.candidates import build_candidates
    from repro.model.probability import EvaluationOutcome
    from repro.db.engine import QueryEngine

    case = corpus.cases[0]
    checker = AggChecker(case.database, AggCheckerConfig(), case.data_dictionary)
    scores = keyword_match(
        case.claims,
        checker.index,
        checker.config.context,
        predicate_hits=checker.config.predicate_hits,
        column_hits=checker.config.column_hits,
    )
    spaces = [build_candidates(c, scores[c]) for c in case.claims]
    n_candidates = sum(len(space) for space in spaces)

    engine = QueryEngine(case.database)
    # Warm the cube cache so both paths measure answering, not execution.
    for space in spaces:
        engine.evaluate_space(space)

    _fresh_rounding_memo()
    started = time.perf_counter()
    for _ in range(repeats):
        for space in spaces:
            results = engine.evaluate_space(space)
            EvaluationOutcome.from_value_ids(space, results)
    space_seconds = (time.perf_counter() - started) / repeats

    per_query = [dict(engine.evaluate(space.queries)) for space in spaces]
    _fresh_rounding_memo()
    started = time.perf_counter()
    for _ in range(repeats):
        for space, known in zip(spaces, per_query):
            known = dict(engine.evaluate(space.queries))
            EvaluationOutcome.from_results(space, known)
    query_seconds = (time.perf_counter() - started) / repeats

    # The two paths must agree candidate for candidate.
    for space, known in zip(spaces, per_query):
        results = engine.evaluate_space(space)
        for position, query in enumerate(space.queries):
            assert results.value_at(position) == known[query], (position, query)

    return {
        "claims": len(spaces),
        "candidates": n_candidates,
        "per_query_candidates_per_sec": round(n_candidates / max(query_seconds, 1e-9)),
        "space_candidates_per_sec": round(n_candidates / max(space_seconds, 1e-9)),
        "speedup": round(query_seconds / max(space_seconds, 1e-9), 2),
    }


def test_model_throughput(capsys):
    cases = _env_int("BENCH_MODEL_CASES", 12)
    corpus = generate_corpus()
    cases = min(cases, len(corpus.cases))

    scoring = _bench_candidate_scoring(corpus)

    plans = [
        ("per_query", AggCheckerConfig().with_em(space_eval=False)),
        ("space", AggCheckerConfig()),
    ]
    results: dict[str, dict] = {}
    signatures = {}
    rows = []
    for name, base_config in plans:
        with tempfile.TemporaryDirectory(prefix=f"bench_model_{name}_") as cache_dir:
            config = replace(base_config, cache_dir=cache_dir)
            for phase in ("cold", "warm"):
                _fresh_rounding_memo()
                started = time.perf_counter()
                run = run_corpus(corpus, config, limit=cases)
                seconds = time.perf_counter() - started
                key = f"{name}_{phase}"
                signatures[key] = _verdict_signature(run)
                n_claims = run.metrics.n_claims
                results[key] = {
                    "seconds": round(seconds, 3),
                    "claims": n_claims,
                    "claims_per_sec": round(n_claims / max(seconds, 1e-9), 2),
                    "cube_queries": run.engine_stats.cube_queries,
                    "disk_cache_hit_rate": round(
                        run.engine_stats.disk_hit_rate(), 4
                    ),
                    "gathered_candidates": run.engine_stats.gathered_candidates,
                }
                rows.append(
                    [
                        key,
                        f"{seconds:.2f}s",
                        f"{results[key]['claims_per_sec']:.1f}",
                        run.engine_stats.cube_queries,
                        f"{run.engine_stats.disk_hit_rate():.0%}",
                    ]
                )

    # Both paths, both cache phases: identical verdicts, unconditionally.
    reference = signatures["per_query_cold"]
    for key, signature in signatures.items():
        assert signature == reference, f"{key} changed verdicts"

    warm_speedup = results["space_warm"]["claims_per_sec"] / max(
        results["per_query_warm"]["claims_per_sec"], 1e-9
    )
    payload = {
        "benchmark": "factorized space evaluation vs per-query path",
        "cases": cases,
        "numpy": numpy_available(),
        "verdicts_identical": True,
        "candidate_scoring": scoring,
        "end_to_end": results,
        "warm_cache_speedup": round(warm_speedup, 2),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    table = format_table(
        "Model evaluation throughput",
        ["Run", "Wall", "Claims/s", "Cubes", "Disk hits"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)
        print(
            f"candidate scoring: per-query "
            f"{scoring['per_query_candidates_per_sec']}/s vs space "
            f"{scoring['space_candidates_per_sec']}/s (x{scoring['speedup']})"
        )
        print(f"warm-cache end-to-end speedup: x{warm_speedup:.2f}")
        print(f"written: {OUTPUT}")

    # The acceptance gate: factorized evaluation must deliver >= 3x
    # warm-cache claims/sec. Vectorized kernels need NumPy; tiny smoke
    # runs are too noisy to gate.
    if numpy_available() and cases >= 12:
        assert warm_speedup >= 3.0, payload
