"""Figure 13: top-k coverage versus processing overheads.

Left panel: the "# Hits" retrieval budget; right panel: the number of
aggregation columns considered. Paper: more budget -> more coverage, with
diminishing returns.
"""

from __future__ import annotations

from repro.harness.ablations import column_budget_ladder, hits_ladder
from repro.harness.reporting import format_series


def test_fig13_time_budget(benchmark, sweep_cache, capsys):
    hits_series = {"top-1": [], "top-10": []}
    hits_top10 = []
    for label, config in hits_ladder():
        run = sweep_cache(f"hits:{label}", config)
        seconds = round(run.total_seconds, 1)
        hits_series["top-1"].append(
            (f"{label} ({seconds}s)", round(run.metrics.top_k_coverage(1), 1))
        )
        hits_series["top-10"].append(
            (f"{label} ({seconds}s)", round(run.metrics.top_k_coverage(10), 1))
        )
        hits_top10.append(run.metrics.top_k_coverage(10))

    column_series = {"top-1": [], "top-10": []}
    column_top10 = []
    for label, config in column_budget_ladder():
        run = sweep_cache(f"cols:{label}", config)
        seconds = round(run.total_seconds, 1)
        column_series["top-1"].append(
            (f"{label} ({seconds}s)", round(run.metrics.top_k_coverage(1), 1))
        )
        column_series["top-10"].append(
            (f"{label} ({seconds}s)", round(run.metrics.top_k_coverage(10), 1))
        )
        column_top10.append(run.metrics.top_k_coverage(10))

    run = sweep_cache("hits:# Hits = 20", hits_ladder()[2][1])
    benchmark(lambda: run.metrics.top_k_coverage(10))

    with capsys.disabled():
        print(
            "\n"
            + format_series(
                "Figure 13 (left): coverage vs # Hits (sweep subset)",
                hits_series,
            )
        )
        print(
            format_series(
                "Figure 13 (right): coverage vs # aggregation columns",
                column_series,
            )
        )

    # Shape: growing the budget improves coverage up to a plateau; the
    # largest budget may dip slightly below the peak (the paper's own
    # "# Hits = 30" row is marginally below "# Hits = 20").
    assert max(hits_top10) > hits_top10[0]
    assert hits_top10[-1] >= hits_top10[0] - 5.0
    assert max(column_top10) >= column_top10[0]
    assert column_top10[-1] >= column_top10[0] - 5.0
